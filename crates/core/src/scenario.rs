//! The unified scenario registry.
//!
//! A **scenario** is a declarative experiment: a network family, a
//! protocol, a size sweep, and trial parameters, expressed as a
//! serde-backed [`ScenarioSpec`] that round-trips through TOML and JSON.
//! The registry replaces per-experiment hard-coding: the CLI's `scenario`
//! subcommand runs a spec straight from a file, the `gossip-bench`
//! experiments build their sweeps on [`run_scenario`], and the family /
//! protocol name tables below are the single source of truth the CLI's
//! `--family` / `--protocol` flags resolve against.
//!
//! ```toml
//! name = "dichotomy-async"
//!
//! [family]
//! kind = "dynamic-star"
//! # backend = "auto" | "implicit" | "materialized" | "sampled"
//! # (structured static families default to the implicit closed-form
//! # representation; random families — `er`, `regular`, `circulant-lift`
//! # — accept "sampled" for the seeded lazy backend)
//!
//! [protocol]
//! kind = "async"
//!
//! [sweep]
//! sizes = [64, 128, 256]
//! trials = 20
//! seed = 42
//! ```
//!
//! Engines: by default a scenario runs on the event-stream engine
//! ([`gossip_sim::EventSimulation`]) whenever the protocol implements
//! [`IncrementalProtocol`], and falls back to the window-based reference
//! engine otherwise; `engine = "window"` or `engine = "event"` in
//! `[sweep]` forces a choice.

use gossip_dynamics::{
    AbsoluteDiligentNetwork, AlternatingRegular, CliquePendant, DiligentNetwork, DynamicNetwork,
    DynamicStar, EdgeMarkovian, MobileAgents, ResampledGnp, StaticNetwork,
};
use gossip_graph::{generators, GraphError, Topology};
use gossip_sim::{
    AnyProtocol, AsyncPull, AsyncPush, AsyncPushPull, CutRateAsync, Engine, FaultModel, Flooding,
    LossyAsync, Protocol, RunConfig, RunPlan, RunReport, SimError, SyncPull, SyncPush,
    SyncPushPull, TrialObserver, TrialRecord, TwoPush, WorkspacePool,
};
use gossip_stats::SimRng;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::journal::{self, Journal, JournalCell, JournalHeader, JournalWriter};

// ---------------------------------------------------------------------------
// Spec types
// ---------------------------------------------------------------------------

/// A complete declarative experiment: family + protocol + sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and file names).
    pub name: String,
    /// Optional free-text description.
    pub description: Option<String>,
    /// The network family to build at each sweep size.
    pub family: FamilySpec,
    /// The protocol to run.
    pub protocol: ProtocolSpec,
    /// Sizes, trials, seeds, cutoff, engine.
    pub sweep: SweepSpec,
    /// Optional fault injection (`[faults]`); absent or inactive specs
    /// run the fault-free process bit-identically.
    pub faults: Option<FaultSpec>,
    /// Optional live-runtime configuration (`[net]`), read by the
    /// `gossip net` driver (the message-passing runtime of the
    /// `gossip-net` crate). The analytic engines ignore it, so adding a
    /// `[net]` table never changes `scenario run` results.
    pub net: Option<NetSpec>,
}

/// Network-family selection plus the per-family parameters.
///
/// Unset parameters take the same defaults as the CLI flags; parameters a
/// family does not read are ignored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilySpec {
    /// Family name (see [`families`]).
    pub kind: String,
    /// Degree (`regular`, `circulant`).
    pub d: Option<usize>,
    /// Edge probability (`er`) / birth probability (`edge-markovian`).
    pub p: Option<f64>,
    /// Death probability (`edge-markovian`).
    pub q: Option<f64>,
    /// Diligence parameter (`diligent`, `absolute-diligent`).
    pub rho: Option<f64>,
    /// Grid rows (`torus`, `mobile`).
    pub rows: Option<usize>,
    /// Grid columns (`torus`, `mobile`).
    pub cols: Option<usize>,
    /// Agent count (`mobile`).
    pub agents: Option<usize>,
    /// Contact radius (`mobile`).
    pub radius: Option<usize>,
    /// Hypercube dimension (`hypercube`).
    pub dim: Option<usize>,
    /// Topology backend: `"auto"` (default — closed-form implicit
    /// representation where one exists), `"implicit"` (require it),
    /// `"materialized"` (force CSR adjacency; for equivalence checks and
    /// baselines), or `"sampled"` (seeded lazy random-graph backend — `er`
    /// becomes [`gossip_graph::Topology::gnp`], `regular` becomes
    /// [`gossip_graph::Topology::random_regular`]; no `Θ(n²)` generation,
    /// no CSR build). Families without the requested representation reject
    /// non-`auto` values at build time.
    pub backend: Option<String>,
    /// Seed for randomized family construction (default 1).
    pub build_seed: Option<u64>,
}

impl FamilySpec {
    /// A spec selecting `kind` with every parameter at its default.
    pub fn new(kind: impl Into<String>) -> Self {
        FamilySpec {
            kind: kind.into(),
            d: None,
            p: None,
            q: None,
            rho: None,
            rows: None,
            cols: None,
            agents: None,
            radius: None,
            dim: None,
            backend: None,
            build_seed: None,
        }
    }

    /// The semantic normal form of the family section: every unset
    /// parameter is written out as the default [`build_family`] would
    /// fill in, so `p = 0.1` and an absent `p` render identically.
    /// `rho`'s default depends on the family (`diligent` 0.25,
    /// `absolute-diligent` 0.125); for other kinds an unset `rho` is left
    /// unset (the field is never read, so the form is still canonical
    /// per kind). Part of [`ScenarioSpec::normalized`].
    pub fn normalized(&self) -> FamilySpec {
        let rho = self.rho.or(match self.kind.as_str() {
            "diligent" => Some(0.25),
            "absolute-diligent" => Some(0.125),
            _ => None,
        });
        FamilySpec {
            kind: self.kind.clone(),
            d: Some(self.d.unwrap_or(4)),
            p: Some(self.p.unwrap_or(0.1)),
            q: Some(self.q.unwrap_or(0.3)),
            rho,
            rows: Some(self.rows.unwrap_or(16)),
            cols: Some(self.cols.unwrap_or(16)),
            agents: Some(self.agents.unwrap_or(40)),
            radius: Some(self.radius.unwrap_or(1)),
            dim: Some(self.dim.unwrap_or(8)),
            backend: Some(self.backend.clone().unwrap_or_else(|| "auto".into())),
            build_seed: Some(self.build_seed.unwrap_or(1)),
        }
    }
}

/// Protocol selection plus protocol parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolSpec {
    /// Protocol name (see [`protocols`]).
    pub kind: String,
    /// Per-contact message-loss probability (`lossy`, default 0).
    pub loss: Option<f64>,
    /// Per-window node downtime probability (`lossy`, default 0).
    pub downtime: Option<f64>,
}

impl ProtocolSpec {
    /// A spec selecting `kind` with default parameters.
    pub fn new(kind: impl Into<String>) -> Self {
        ProtocolSpec {
            kind: kind.into(),
            loss: None,
            downtime: None,
        }
    }
}

/// Sweep and trial parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Network sizes to sweep (the `--n` of each run).
    pub sizes: Vec<usize>,
    /// Independent trials per size (default 20).
    pub trials: Option<usize>,
    /// Trial RNG seed (default 42).
    pub seed: Option<u64>,
    /// Time cutoff per run (default 1e5).
    pub max_time: Option<f64>,
    /// `"auto"` (default), `"event"`, or `"window"`.
    pub engine: Option<String>,
    /// Start node override (default: the family's suggested start).
    pub start: Option<u32>,
    /// Trial hot path: `true` (default) reuses a per-worker
    /// [`gossip_sim::SimWorkspace`] with batched record delivery;
    /// `false` forces the fresh-allocation reference path
    /// ([`RunPlan::workspace`]). Results are bit-identical either way —
    /// the switch exists for A/B diagnostics.
    pub workspace: Option<bool>,
    /// Event-engine inner loop: `true` (default) allows the vectorized
    /// loop ([`RunPlan::vectorized`]); `false` forces the scalar
    /// reference loop. Same distribution either way (KS-enforced), but
    /// the vectorized loop consumes each trial's RNG stream in a
    /// different order, so individual spread times differ under one seed.
    pub vectorized: Option<bool>,
    /// Global thread budget for the sweep (default: every available
    /// core). Per-cell mode hands the whole budget to each size's
    /// [`RunPlan`]; cell-parallel mode splits it across concurrent cells.
    pub threads: Option<usize>,
    /// Sweep-level parallelism: `true` schedules whole `(n, trials)`
    /// cells across the thread budget (workers steal the next unclaimed
    /// cell), instead of parallelizing only within one cell at a time.
    /// Summaries and observer streams are bit-identical to the
    /// sequential per-cell mode (test-enforced); pick cell-parallel for
    /// many small cells, per-cell for few large ones.
    pub cell_parallel: Option<bool>,
}

impl SweepSpec {
    /// A sweep over `sizes` with every other parameter at its default.
    pub fn over(sizes: Vec<usize>) -> Self {
        SweepSpec {
            sizes,
            trials: None,
            seed: None,
            max_time: None,
            engine: None,
            start: None,
            workspace: None,
            vectorized: None,
            threads: None,
            cell_parallel: None,
        }
    }

    /// Trials per size (default 20).
    pub fn trials_or_default(&self) -> usize {
        self.trials.unwrap_or(20)
    }

    /// Trial seed (default 42).
    pub fn seed_or_default(&self) -> u64 {
        self.seed.unwrap_or(42)
    }

    /// Cutoff (default 1e5).
    pub fn max_time_or_default(&self) -> f64 {
        self.max_time.unwrap_or(1e5)
    }
}

/// Fault-injection parameters — the `[faults]` section of a scenario.
///
/// Compiles into a [`gossip_sim::FaultModel`] via [`FaultSpec::to_model`];
/// every unset field takes the fault-free default, so an empty `[faults]`
/// table changes nothing. Active fault models need the event engine and a
/// fault-aware protocol (validation rejects other combinations up front).
///
/// ```toml
/// [faults]
/// drop = 0.1            # per-message drop probability (Doerr–Kostrygin)
/// crash_rate = 0.02     # Poisson node-crash rate per unit time
/// recovery_rate = 0.05  # Poisson recovery rate (0 = crashes permanent)
/// seed = 1              # dedicated fault stream seed
/// schedule = [[3, 0]]   # crash node 0 when the window clock reaches 3
/// target_high_degree = 1  # crash the top-degree up node every window
/// partition_rate = 0.05 # live only: rate of partitioned unit windows
/// delay = 0.1           # live only: per-envelope extra-latency probability
/// delay_epochs = 3      # live only: max extra epochs a delayed envelope waits
/// duplicate = 0.05      # live only: per-envelope duplication probability
/// ```
///
/// The last four fields model *delivery-layer chaos* — network
/// partitions, late messages, duplicated messages — which only exists
/// where messages physically travel: the live runtime (`gossip net
/// run`). The analytic engines reject them ([`ScenarioPlan::new`]); the
/// live runtime rejects `target_high_degree` in turn (it needs a global
/// degree ordering over still-up nodes, an analytic-engine view).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Per-message drop probability in `[0, 1]` (default 0).
    pub drop: Option<f64>,
    /// Poisson rate at which each up node crashes, per unit time
    /// (default 0).
    pub crash_rate: Option<f64>,
    /// Poisson rate at which each down node recovers, per unit time
    /// (default 0 — every crash is permanent).
    pub recovery_rate: Option<f64>,
    /// Seed of the dedicated fault stream (default 0). Fault draws never
    /// touch the trial RNG, so adding an inactive `[faults]` table leaves
    /// results bit-identical.
    pub seed: Option<u64>,
    /// Explicit crash schedule as `[window, node]` pairs; each node
    /// crashes when the window clock reaches its entry.
    pub schedule: Option<Vec<(u64, u32)>>,
    /// Adversarial targeting: crash the `k` highest-degree still-up nodes
    /// at the start of every window (default 0). Analytic engines only.
    pub target_high_degree: Option<usize>,
    /// Live only: Poisson rate (per unit time) at which a unit window is
    /// partitioned into two seeded halves that cannot exchange envelopes
    /// (default 0).
    pub partition_rate: Option<f64>,
    /// Live only: probability in `[0, 1]` that an envelope is delayed by
    /// extra epochs beyond the one-tick latency (default 0).
    pub delay: Option<f64>,
    /// Live only: maximum extra epochs a delayed envelope waits, drawn
    /// uniformly from `1..=delay_epochs` (default 1; must be ≥ 1).
    pub delay_epochs: Option<u64>,
    /// Live only: probability in `[0, 1]` that an envelope is delivered
    /// twice (default 0).
    pub duplicate: Option<f64>,
}

impl FaultSpec {
    /// A spec with every field unset (the fault-free regime).
    pub fn new() -> Self {
        FaultSpec {
            drop: None,
            crash_rate: None,
            recovery_rate: None,
            seed: None,
            schedule: None,
            target_high_degree: None,
            partition_rate: None,
            delay: None,
            delay_epochs: None,
            duplicate: None,
        }
    }

    /// Compiles the spec into the runtime [`FaultModel`], filling
    /// defaults. The delivery-chaos fields (`partition_rate`, `delay`,
    /// `delay_epochs`, `duplicate`) have no analytic counterpart and are
    /// not part of the model; the live runtime compiles them separately.
    pub fn to_model(&self) -> FaultModel {
        FaultModel {
            drop: self.drop.unwrap_or(0.0),
            crash_rate: self.crash_rate.unwrap_or(0.0),
            recovery_rate: self.recovery_rate.unwrap_or(0.0),
            seed: self.seed.unwrap_or(0),
            schedule: self.schedule.iter().flatten().copied().collect(),
            target_high_degree: self.target_high_degree.unwrap_or(0),
        }
    }

    /// Whether any delivery-chaos field (live-runtime-only faults) is
    /// active: partitions, delays, or duplication.
    pub fn net_chaos_active(&self) -> bool {
        self.partition_rate.unwrap_or(0.0) > 0.0
            || self.delay.unwrap_or(0.0) > 0.0
            || self.duplicate.unwrap_or(0.0) > 0.0
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::new()
    }
}

/// Live-runtime parameters — the `[net]` section of a scenario.
///
/// Configures the message-passing runtime (`gossip net run`), where
/// nodes are actors multiplexed onto node-group threads and every
/// interaction travels as a routed message. Every field is optional; an
/// empty `[net]` table selects the defaults.
///
/// ```toml
/// [net]
/// groups = 4          # node-group threads per trial (default: cores, max 8)
/// delivery = "local"  # "local" in-process channels | "udp" loopback datagrams
/// horizon = 50.0      # virtual-time cutoff (default: sweep.max_time)
/// tick = 0.001        # message latency = epoch length (default 1e-3)
/// exchange_timeout = 1.0  # udp: seconds before a stalled exchange retries
/// exchange_retries = 3    # udp: retransmission attempts before giving up
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Node-group threads per trial (default: one per available core,
    /// capped at 8).
    pub groups: Option<usize>,
    /// Transport between node groups: `"local"` (lock-free in-process
    /// channels, default) or `"udp"` (length-prefixed loopback
    /// datagrams).
    pub delivery: Option<String>,
    /// Virtual-time cutoff of a live trial (default: `sweep.max_time`).
    pub horizon: Option<f64>,
    /// Message latency, which is also the epoch length of the
    /// synchronized runtime (default 1e-3). Smaller ticks track the
    /// analytic zero-latency distributions more closely at the cost of
    /// more exchange rounds.
    pub tick: Option<f64>,
    /// UDP delivery: how many wall-clock seconds one epoch exchange
    /// waits for missing peer datagrams before retransmitting (default
    /// 1.0; the wait doubles per retry).
    pub exchange_timeout: Option<f64>,
    /// UDP delivery: retransmission attempts before the exchange fails
    /// with a structured stall error (default 3; `0` fails on the first
    /// timeout, restoring pre-retry behavior).
    pub exchange_retries: Option<u32>,
}

impl NetSpec {
    /// A spec with every field unset (all defaults).
    pub fn new() -> Self {
        NetSpec {
            groups: None,
            delivery: None,
            horizon: None,
            tick: None,
            exchange_timeout: None,
            exchange_retries: None,
        }
    }
}

impl Default for NetSpec {
    fn default() -> Self {
        Self::new()
    }
}

/// Families the live runtime can run: those whose topology is static, so
/// one `Topology` snapshot is the whole network. Kept in sync with
/// [`families`] (test-enforced against each entry's synopsis).
const LIVE_STATIC_FAMILIES: &[&str] = &[
    "complete",
    "star",
    "path",
    "cycle",
    "torus",
    "hypercube",
    "er",
    "regular",
    "circulant",
    "circulant-lift",
];

/// Protocol kinds with a live (message-passing) implementation.
const LIVE_PROTOCOLS: &[&str] = &["async", "naive", "push", "pull"];

/// Largest sweep size allowed with `net.delivery = "udp"` on sampled
/// topology backends: above this, realizing the sampled rows in every
/// peer process is the dominant cost and `local` delivery is the right
/// tool.
const UDP_SAMPLED_SIZE_LIMIT: usize = 65_536;

/// Parses a spec's engine string into the driver's [`Engine`] selector
/// (`None` ⇒ [`Engine::Auto`]).
///
/// # Errors
///
/// [`ScenarioError::Invalid`] on unrecognized names.
pub fn parse_engine(s: Option<&str>) -> Result<Engine, ScenarioError> {
    match s.unwrap_or("auto") {
        "auto" => Ok(Engine::Auto),
        "event" => Ok(Engine::Event),
        "window" => Ok(Engine::Window),
        other => Err(ScenarioError::Invalid(format!(
            "unknown engine `{other}` (auto, event, window)"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Scenario construction / execution errors.
#[derive(Debug)]
pub enum ScenarioError {
    /// The spec file could not be parsed.
    Parse(String),
    /// `family.kind` is not a registered family.
    UnknownFamily(String),
    /// `protocol.kind` is not a registered protocol.
    UnknownProtocol(String),
    /// A structurally invalid spec (empty sweep, bad engine, …).
    Invalid(String),
    /// A family constructor rejected its parameters.
    Graph(GraphError),
    /// A simulation run failed.
    Sim(SimError),
    /// A sweep journal could not be written, read, or reconciled with
    /// the spec (see [`crate::journal`]).
    Journal(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(m) => write!(f, "scenario parse error: {m}"),
            ScenarioError::UnknownFamily(k) => {
                write!(f, "unknown family `{k}` (see the scenario registry)")
            }
            ScenarioError::UnknownProtocol(k) => {
                write!(f, "unknown protocol `{k}` (see the scenario registry)")
            }
            ScenarioError::Invalid(m) => write!(f, "invalid scenario: {m}"),
            ScenarioError::Graph(e) => write!(f, "{e}"),
            ScenarioError::Sim(e) => write!(f, "{e}"),
            ScenarioError::Journal(m) => write!(f, "sweep journal error: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Graph(e) => Some(e),
            ScenarioError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ScenarioError {
    fn from(e: GraphError) -> Self {
        ScenarioError::Graph(e)
    }
}

impl From<SimError> for ScenarioError {
    fn from(e: SimError) -> Self {
        ScenarioError::Sim(e)
    }
}

// ---------------------------------------------------------------------------
// Registry tables
// ---------------------------------------------------------------------------

/// One registry row: a name, the spec parameters it reads, a synopsis.
#[derive(Debug, Clone, Copy)]
pub struct RegistryEntry {
    /// The `kind` string.
    pub name: &'static str,
    /// Parameter names the entry reads (spec fields / CLI flags).
    pub params: &'static [&'static str],
    /// One-line description.
    pub synopsis: &'static str,
}

/// Every registered network family.
pub fn families() -> Vec<RegistryEntry> {
    vec![
        RegistryEntry {
            name: "complete",
            params: &["backend"],
            synopsis: "static complete graph K_n (implicit by default)",
        },
        RegistryEntry {
            name: "star",
            params: &["backend"],
            synopsis: "static star K_{1,n-1} (node 0 center, implicit by default)",
        },
        RegistryEntry {
            name: "path",
            params: &[],
            synopsis: "static path P_n",
        },
        RegistryEntry {
            name: "cycle",
            params: &[],
            synopsis: "static cycle C_n",
        },
        RegistryEntry {
            name: "torus",
            params: &["rows", "cols"],
            synopsis: "static 2-D torus grid (n ignored)",
        },
        RegistryEntry {
            name: "hypercube",
            params: &["dim"],
            synopsis: "static 2^dim hypercube (n ignored)",
        },
        RegistryEntry {
            name: "er",
            params: &["p", "backend"],
            synopsis: "static Erdős–Rényi G(n,p) (backend=sampled: seeded lazy rows, no CSR)",
        },
        RegistryEntry {
            name: "regular",
            params: &["d", "backend"],
            synopsis: "static random connected d-regular graph (expander w.h.p.)",
        },
        RegistryEntry {
            name: "circulant",
            params: &["d", "backend"],
            synopsis: "static d-regular circulant (consecutive offsets, implicit by default)",
        },
        RegistryEntry {
            name: "circulant-lift",
            params: &["d", "backend"],
            synopsis: "seeded random relabeling of the d-regular circulant (sampled, O(1) queries)",
        },
        RegistryEntry {
            name: "resampled-gnp",
            params: &["p"],
            synopsis: "dynamic Erdős–Rényi: a fresh sampled G(n,p) every window",
        },
        RegistryEntry {
            name: "dynamic-star",
            params: &[],
            synopsis: "G2 of Fig. 1(b): star re-centered on an uninformed node each step",
        },
        RegistryEntry {
            name: "clique-pendant",
            params: &[],
            synopsis: "G1 of Fig. 1(a): clique+pendant, then two bridged cliques",
        },
        RegistryEntry {
            name: "diligent",
            params: &["rho"],
            synopsis: "Section 4 rho-diligent H_{k,Delta} adversary (Theorem 1.2)",
        },
        RegistryEntry {
            name: "absolute-diligent",
            params: &["rho"],
            synopsis: "Section 5.1 absolutely rho-diligent adversary (Theorem 1.5)",
        },
        RegistryEntry {
            name: "alternating",
            params: &[],
            synopsis: "Section 1.2 alternating {3-regular, K_n} network (E9)",
        },
        RegistryEntry {
            name: "edge-markovian",
            params: &["p", "q"],
            synopsis: "edge-Markovian evolving graph of related work [7]",
        },
        RegistryEntry {
            name: "mobile",
            params: &["agents", "rows", "cols", "radius"],
            synopsis: "random-walking agents on a torus, proximity contacts [20, 22]",
        },
    ]
}

/// Every registered protocol. `params` lists spec fields; protocols marked
/// incremental run on the event-stream engine by default.
pub fn protocols() -> Vec<RegistryEntry> {
    vec![
        RegistryEntry {
            name: "async",
            params: &[],
            synopsis: "asynchronous push-pull, exact cut-rate simulator (default)",
        },
        RegistryEntry {
            name: "naive",
            params: &[],
            synopsis: "asynchronous push-pull, tick-by-tick ground-truth simulator",
        },
        RegistryEntry {
            name: "push",
            params: &[],
            synopsis: "asynchronous push-only",
        },
        RegistryEntry {
            name: "pull",
            params: &[],
            synopsis: "asynchronous pull-only",
        },
        RegistryEntry {
            name: "sync",
            params: &[],
            synopsis: "synchronous push-pull rounds (Theorem 1.7 comparisons)",
        },
        RegistryEntry {
            name: "sync-push",
            params: &[],
            synopsis: "synchronous push-only rounds",
        },
        RegistryEntry {
            name: "sync-pull",
            params: &[],
            synopsis: "synchronous pull-only rounds",
        },
        RegistryEntry {
            name: "flooding",
            params: &[],
            synopsis: "informed nodes flood all neighbors each round",
        },
        RegistryEntry {
            name: "two-push",
            params: &[],
            synopsis: "rate-2 push (the Section 4 / Lemma 5.2 coupling process)",
        },
        RegistryEntry {
            name: "lossy",
            params: &["loss", "downtime"],
            synopsis: "async push-pull with i.i.d. message loss and per-window downtime",
        },
    ]
}

/// Whether `kind` names a protocol with an incremental implementation
/// (eligible for the event-stream engine). Answered by probing
/// [`build_any_protocol`] with default parameters, so this can never
/// drift from what the builder actually produces.
pub fn protocol_is_incremental(kind: &str) -> bool {
    build_any_protocol(&ProtocolSpec::new(kind)).is_ok_and(|p| p.supports_event())
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

/// Which topology representation a family spec requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BackendChoice {
    /// Closed-form implicit representation where one exists.
    Auto,
    /// Require the implicit representation (error where none exists).
    Implicit,
    /// Force CSR adjacency lists.
    Materialized,
    /// Require the seeded sampled representation (lazy random-graph
    /// backend; error where none exists).
    Sampled,
}

impl BackendChoice {
    fn parse(s: Option<&str>) -> Result<Self, ScenarioError> {
        match s.unwrap_or("auto") {
            "auto" => Ok(BackendChoice::Auto),
            "implicit" => Ok(BackendChoice::Implicit),
            "materialized" => Ok(BackendChoice::Materialized),
            "sampled" => Ok(BackendChoice::Sampled),
            other => Err(ScenarioError::Invalid(format!(
                "unknown backend `{other}` (auto, implicit, materialized, sampled)"
            ))),
        }
    }
}

/// Builds the family selected by `spec` at size `n`.
///
/// # Errors
///
/// [`ScenarioError::UnknownFamily`] for unregistered kinds;
/// [`ScenarioError::Graph`] when the constructor rejects the parameters;
/// [`ScenarioError::Invalid`] when `backend` requests a representation the
/// family does not have.
pub fn build_family(spec: &FamilySpec, n: usize) -> Result<Box<dyn DynamicNetwork>, ScenarioError> {
    let mut rng = SimRng::seed_from_u64(spec.build_seed.unwrap_or(1));
    let backend = BackendChoice::parse(spec.backend.as_deref())?;
    let no_backend = |repr: &str| -> ScenarioError {
        ScenarioError::Invalid(format!("family `{}` has no {repr} backend", spec.kind))
    };
    // Static structured families: implicit unless materialization is
    // forced; they have no sampled representation.
    let choose = |topo: Topology| -> Result<Box<dyn DynamicNetwork>, ScenarioError> {
        match backend {
            BackendChoice::Materialized => Ok(Box::new(StaticNetwork::new(topo.materialize()))),
            BackendChoice::Sampled => Err(no_backend("sampled")),
            _ => Ok(Box::new(StaticNetwork::from_topology(topo))),
        }
    };
    // Seeded sampled families: sampled unless materialization is forced;
    // they have no closed-form implicit representation.
    let choose_sampled = |topo: Topology| -> Result<Box<dyn DynamicNetwork>, ScenarioError> {
        match backend {
            BackendChoice::Materialized => Ok(Box::new(StaticNetwork::new(topo.materialize()))),
            BackendChoice::Implicit => Err(no_backend("implicit (use `sampled`)")),
            _ => Ok(Box::new(StaticNetwork::from_topology(topo))),
        }
    };
    // Families with only one representation reject explicit requests for
    // the other ones.
    let implicit_only = || -> Result<(), ScenarioError> {
        match backend {
            BackendChoice::Materialized => Err(no_backend("materialized")),
            BackendChoice::Sampled => Err(no_backend("sampled")),
            _ => Ok(()),
        }
    };
    let materialized_only = || -> Result<(), ScenarioError> {
        match backend {
            BackendChoice::Implicit => Err(no_backend("implicit")),
            BackendChoice::Sampled => Err(no_backend("sampled")),
            _ => Ok(()),
        }
    };
    let net: Box<dyn DynamicNetwork> = match spec.kind.as_str() {
        "complete" => choose(Topology::complete(n)?)?,
        "star" => choose(Topology::star(n, 0)?)?,
        "path" => {
            materialized_only()?;
            Box::new(StaticNetwork::new(generators::path(n)?))
        }
        "cycle" => {
            materialized_only()?;
            Box::new(StaticNetwork::new(generators::cycle(n)?))
        }
        "torus" => {
            materialized_only()?;
            let rows = spec.rows.unwrap_or(16);
            let cols = spec.cols.unwrap_or(16);
            Box::new(StaticNetwork::new(generators::torus(rows, cols)?))
        }
        "hypercube" => {
            materialized_only()?;
            let dim = spec.dim.unwrap_or(8);
            Box::new(StaticNetwork::new(generators::hypercube(dim)?))
        }
        "regular" => {
            let d = spec.d.unwrap_or(4);
            match backend {
                BackendChoice::Sampled => choose_sampled(
                    sampled_topology(spec, n)?.expect("regular + sampled is a sampled family"),
                )?,
                BackendChoice::Implicit => return Err(no_backend("implicit (use `sampled`)")),
                _ => Box::new(StaticNetwork::new(generators::random_connected_regular(
                    n, d, &mut rng,
                )?)),
            }
        }
        "er" => {
            let p = spec.p.unwrap_or(0.1);
            match backend {
                // The eager generator *is* the sampled backend seeded with
                // the rng's next u64, so the two representations below
                // describe the identical graph for a given build seed —
                // `backend = "sampled"` merely skips the CSR build.
                BackendChoice::Sampled => choose_sampled(
                    sampled_topology(spec, n)?.expect("er + sampled is a sampled family"),
                )?,
                BackendChoice::Implicit => return Err(no_backend("implicit (use `sampled`)")),
                _ => Box::new(StaticNetwork::new(generators::erdos_renyi(n, p, &mut rng)?)),
            }
        }
        "circulant" => {
            let d = spec.d.unwrap_or(4);
            choose(Topology::regular_circulant(n, d)?)?
        }
        "circulant-lift" => {
            let topo = match sampled_topology(spec, n)? {
                Some(topo) => topo,
                // Materialized / implicit requests: build the same lift
                // and let `choose_sampled` materialize it or reject.
                None => {
                    Topology::circulant_lift(n, spec.d.unwrap_or(4), family_topology_seed(spec))?
                }
            };
            choose_sampled(topo)?
        }
        "resampled-gnp" => {
            // Every window is a sampled topology; `auto` and `sampled`
            // are the same (and only) representation.
            match backend {
                BackendChoice::Implicit => return Err(no_backend("implicit")),
                BackendChoice::Materialized => return Err(no_backend("materialized")),
                _ => {}
            }
            let p = spec.p.unwrap_or(0.1);
            Box::new(ResampledGnp::new(n, p, rng.next_u64())?)
        }
        "dynamic-star" => {
            implicit_only()?;
            Box::new(DynamicStar::new(n.saturating_sub(1))?)
        }
        "clique-pendant" => {
            implicit_only()?;
            Box::new(CliquePendant::new(n)?)
        }
        "diligent" => {
            materialized_only()?;
            let rho = spec.rho.unwrap_or(0.25);
            Box::new(DiligentNetwork::new(n, rho)?)
        }
        "absolute-diligent" => {
            materialized_only()?;
            let rho = spec.rho.unwrap_or(0.125);
            Box::new(AbsoluteDiligentNetwork::new(n, rho)?)
        }
        "alternating" => {
            materialized_only()?;
            Box::new(AlternatingRegular::new(n, &mut rng)?)
        }
        "edge-markovian" => {
            materialized_only()?;
            let p = spec.p.unwrap_or(0.1);
            let q = spec.q.unwrap_or(0.3);
            let initial = generators::erdos_renyi(n, p, &mut rng)?;
            Box::new(EdgeMarkovian::new(initial, p, q)?)
        }
        "mobile" => {
            materialized_only()?;
            let agents = spec.agents.unwrap_or(40);
            let rows = spec.rows.unwrap_or(16);
            let cols = spec.cols.unwrap_or(16);
            let radius = spec.radius.unwrap_or(1);
            Box::new(MobileAgents::new(agents, rows, cols, radius, &mut rng)?)
        }
        other => return Err(ScenarioError::UnknownFamily(other.to_string())),
    };
    Ok(net)
}

/// The seed a family hands its seeded sampled topology: the first draw
/// of the build-seed stream, exactly as [`build_family`] consumes it.
/// Kept as the single source of truth so a [`TopologyCache`] entry and a
/// cold [`build_family`] call always describe the identical graph.
fn family_topology_seed(spec: &FamilySpec) -> u64 {
    SimRng::seed_from_u64(spec.build_seed.unwrap_or(1)).next_u64()
}

/// Whether `(kind, backend)` is served as a *shared* lazily realized
/// sampled [`Topology`] — the combinations where cloning one cached
/// topology shares its realized adjacency (`Arc`-backed) across trials
/// and runs, making [`TopologyCache`] reuse sound and worthwhile.
fn has_shared_sampled_topology(spec: &FamilySpec) -> Result<bool, ScenarioError> {
    let backend = BackendChoice::parse(spec.backend.as_deref())?;
    Ok(matches!(
        (spec.kind.as_str(), backend),
        ("er" | "regular", BackendChoice::Sampled)
            | (
                "circulant-lift",
                BackendChoice::Auto | BackendChoice::Sampled
            )
    ))
}

/// The seeded sampled topology for `(spec, n)` when — and only when —
/// [`build_family`] would serve this spec as a shared sampled
/// [`Topology`] (see [`has_shared_sampled_topology`]); `None` for every
/// other family/backend combination.
///
/// # Errors
///
/// [`ScenarioError::Invalid`] for an unknown backend name;
/// [`ScenarioError::Graph`] when the constructor rejects the parameters.
fn sampled_topology(spec: &FamilySpec, n: usize) -> Result<Option<Topology>, ScenarioError> {
    if !has_shared_sampled_topology(spec)? {
        return Ok(None);
    }
    let seed = family_topology_seed(spec);
    let topo = match spec.kind.as_str() {
        "er" => Topology::gnp(n, spec.p.unwrap_or(0.1), seed)?,
        "regular" => Topology::random_regular(n, spec.d.unwrap_or(4), seed)?,
        "circulant-lift" => Topology::circulant_lift(n, spec.d.unwrap_or(4), seed)?,
        _ => return Ok(None),
    };
    Ok(Some(topo))
}

/// A cross-run cache of seeded sampled topologies, keyed by the family's
/// semantic normal form ([`FamilySpec::normalized`]) and the sweep size.
///
/// Sampled topologies (`er` / `regular` with `backend = "sampled"`,
/// `circulant-lift`) realize adjacency lazily behind `Arc`-shared caches,
/// so **cloning** a cached [`Topology`] hands the next run the already
/// realized rows: a repeat G(n, p) sweep skips CSR realization entirely.
/// The graph is a pure function of `(family, n, build_seed)`, and the
/// cache key captures exactly those inputs, so a hit is bit-identical to
/// a cold build (test-enforced). Share one cache across runs via
/// [`SweepPlan::topologies`]; the `gossip serve` daemon holds one for
/// its whole lifetime.
#[derive(Debug, Default)]
pub struct TopologyCache {
    entries: Mutex<HashMap<(String, usize), Topology>>,
    hits: std::sync::atomic::AtomicUsize,
    misses: std::sync::atomic::AtomicUsize,
}

impl TopologyCache {
    /// An empty cache.
    pub fn new() -> Self {
        TopologyCache::default()
    }

    /// The shared sampled topology for `(spec, n)`, cloned from the
    /// cache (hit) or built and inserted (miss); `None` when the family
    /// is not served as a shared sampled topology.
    ///
    /// # Errors
    ///
    /// As [`sampled_topology`].
    pub fn get_or_build(
        &self,
        spec: &FamilySpec,
        n: usize,
    ) -> Result<Option<Topology>, ScenarioError> {
        use std::sync::atomic::Ordering;
        if !has_shared_sampled_topology(spec)? {
            return Ok(None);
        }
        // Key by the normal form so presentation-equivalent family
        // sections (`p` unset vs `p = 0.1`) share one entry.
        let key = (serde_json::to_string(&spec.normalized()), n);
        let mut entries = self.entries.lock().expect("topology cache poisoned");
        if let Some(topo) = entries.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(topo.clone()));
        }
        let topo = sampled_topology(spec, n)?.expect("pre-checked as shared sampled");
        entries.insert(key, topo.clone());
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(Some(topo))
    }

    /// Cache hits served so far (a hit shares realized adjacency).
    pub fn hits(&self) -> usize {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Topologies built and inserted so far.
    pub fn misses(&self) -> usize {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of distinct `(family, n)` entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("topology cache poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// As [`build_family`], but consults (and fills) a [`TopologyCache`]
/// first: families served as shared sampled topologies come back as
/// clones of the cached [`Topology`] — already realized adjacency and
/// all — and every other family falls through to a cold build.
///
/// # Errors
///
/// As [`build_family`].
pub fn build_family_cached(
    spec: &FamilySpec,
    n: usize,
    cache: Option<&TopologyCache>,
) -> Result<Box<dyn DynamicNetwork>, ScenarioError> {
    if let Some(cache) = cache {
        if let Some(topo) = cache.get_or_build(spec, n)? {
            return Ok(Box::new(StaticNetwork::from_topology(topo)));
        }
    }
    build_family(spec, n)
}

/// Builds the protocol selected by `spec` as an engine-agnostic
/// [`AnyProtocol`] — the single protocol builder behind every execution
/// path. Incrementally-capable protocols come back as
/// `AnyProtocol::Event` (they run on either engine; [`Engine::Auto`]
/// picks the event stream), window-only protocols as
/// `AnyProtocol::Window`.
///
/// # Errors
///
/// [`ScenarioError::UnknownProtocol`] for unregistered kinds;
/// [`ScenarioError::Sim`] when parameters are rejected.
pub fn build_any_protocol(spec: &ProtocolSpec) -> Result<AnyProtocol, ScenarioError> {
    let proto = match spec.kind.as_str() {
        "async" => AnyProtocol::event(CutRateAsync::new()),
        "naive" => AnyProtocol::event(AsyncPushPull::new()),
        "push" => AnyProtocol::event(AsyncPush::new()),
        "pull" => AnyProtocol::event(AsyncPull::new()),
        "sync" => AnyProtocol::window(SyncPushPull::new()),
        "sync-push" => AnyProtocol::window(SyncPush::new()),
        "sync-pull" => AnyProtocol::window(SyncPull::new()),
        "flooding" => AnyProtocol::window(Flooding::new()),
        "two-push" => AnyProtocol::event(TwoPush::new()),
        "lossy" => AnyProtocol::event(LossyAsync::with_downtime(
            spec.loss.unwrap_or(0.0),
            spec.downtime.unwrap_or(0.0),
        )?),
        other => return Err(ScenarioError::UnknownProtocol(other.to_string())),
    };
    Ok(proto)
}

/// Builds the protocol as a window-engine trait object (every protocol
/// supports the window engine) — for callers that drive a raw
/// [`gossip_sim::Simulation`] directly, e.g. trajectory tracing.
///
/// # Errors
///
/// As [`build_any_protocol`].
pub fn build_protocol(spec: &ProtocolSpec) -> Result<Box<dyn Protocol>, ScenarioError> {
    build_any_protocol(spec).map(AnyProtocol::into_window)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

impl ScenarioSpec {
    /// Parses a spec from TOML text.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Parse`] on malformed input.
    pub fn from_toml_str(text: &str) -> Result<Self, ScenarioError> {
        toml::from_str(text).map_err(|e| ScenarioError::Parse(e.to_string()))
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Parse`] on malformed input.
    pub fn from_json_str(text: &str) -> Result<Self, ScenarioError> {
        serde_json::from_str(text).map_err(|e| ScenarioError::Parse(e.to_string()))
    }

    /// Loads a spec from a file: `.json` parses as JSON, everything else
    /// as TOML.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Parse`] on I/O or syntax errors.
    pub fn from_path(path: &std::path::Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Parse(format!("{}: {e}", path.display())))?;
        if path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("json"))
        {
            Self::from_json_str(&text)
        } else {
            Self::from_toml_str(&text)
        }
    }

    /// Renders the spec as TOML.
    pub fn to_toml_string(&self) -> String {
        toml::to_string(self).expect("scenario specs always render")
    }

    /// Renders the spec as pretty JSON.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self)
    }

    /// The spec's **semantic normal form**: the spec that runs the exact
    /// same trials, with every presentation-only choice erased and every
    /// semantic default written out. Two specs describing the same
    /// experiment — whether they came from TOML or JSON, spelled defaults
    /// explicitly or left them implicit, or differ only in description /
    /// `[net]` tables / thread budgets — normalize to identical structs,
    /// which is what makes [`crate::journal::spec_hash`] a usable
    /// content address for results.
    ///
    /// Erased (presentation-only; bit-identical results regardless):
    /// `description`, the `[net]` table (ignored by the analytic
    /// engines), `sweep.workspace`, `sweep.threads`, and
    /// `sweep.cell_parallel` (all test-enforced bit-invisible), and an
    /// *inactive* `[faults]` table (fault-free by construction).
    ///
    /// Resolved (semantic, but with redundant spellings): unset
    /// `trials` / `seed` / `max_time` / `vectorized` and family /
    /// protocol / fault parameters become their documented defaults, and
    /// `engine = "auto"` becomes the engine the sweep actually resolves
    /// to for this protocol. `sweep.vectorized` **is** semantic — the
    /// vectorized loop consumes each trial's RNG stream in a different
    /// order — so it is kept (default `true` written out).
    pub fn normalized(&self) -> ScenarioSpec {
        let sweep = &self.sweep;
        // `auto` resolves to the engine the plan would pick; when the
        // protocol (or the engine string) is unknown the spelling is kept
        // as written — normalization must stay infallible, and such specs
        // fail validation before any result exists to address.
        let engine = match parse_engine(sweep.engine.as_deref()) {
            Ok(Engine::Auto) => match build_any_protocol(&self.protocol) {
                Ok(probe) if probe.supports_event() => Some(Engine::Event.name().into()),
                Ok(_) => Some(Engine::Window.name().into()),
                Err(_) => sweep.engine.clone(),
            },
            Ok(forced) => Some(forced.name().into()),
            Err(_) => sweep.engine.clone(),
        };
        let faults = self.faults.as_ref().and_then(|f| {
            // An inactive fault model runs the fault-free process
            // bit-identically (test-enforced), so it normalizes away —
            // including its seed, which is never drawn from. Delivery
            // chaos counts as active: a chaos-only spec is a different
            // (live) experiment from the fault-free one.
            if !f.to_model().is_active() && !f.net_chaos_active() {
                return None;
            }
            Some(FaultSpec {
                drop: Some(f.drop.unwrap_or(0.0)),
                crash_rate: Some(f.crash_rate.unwrap_or(0.0)),
                recovery_rate: Some(f.recovery_rate.unwrap_or(0.0)),
                seed: Some(f.seed.unwrap_or(0)),
                schedule: Some(f.schedule.clone().unwrap_or_default()),
                target_high_degree: Some(f.target_high_degree.unwrap_or(0)),
                partition_rate: Some(f.partition_rate.unwrap_or(0.0)),
                delay: Some(f.delay.unwrap_or(0.0)),
                delay_epochs: Some(f.delay_epochs.unwrap_or(1)),
                duplicate: Some(f.duplicate.unwrap_or(0.0)),
            })
        });
        ScenarioSpec {
            name: self.name.clone(),
            description: None,
            family: self.family.normalized(),
            protocol: ProtocolSpec {
                kind: self.protocol.kind.clone(),
                loss: Some(self.protocol.loss.unwrap_or(0.0)),
                downtime: Some(self.protocol.downtime.unwrap_or(0.0)),
            },
            sweep: SweepSpec {
                sizes: sweep.sizes.clone(),
                trials: Some(sweep.trials_or_default()),
                seed: Some(sweep.seed_or_default()),
                max_time: Some(sweep.max_time_or_default()),
                engine,
                start: sweep.start,
                workspace: None,
                vectorized: Some(sweep.vectorized.unwrap_or(true)),
                threads: None,
                cell_parallel: None,
            },
            faults,
            net: None,
        }
    }

    /// Structural validation: known names, non-empty sweep, valid engine.
    /// Does not construct networks (sizes may be expensive).
    ///
    /// # Errors
    ///
    /// A [`ScenarioError`] naming the first problem found.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.trim().is_empty() {
            return Err(ScenarioError::Invalid("scenario name is empty".into()));
        }
        if !families().iter().any(|f| f.name == self.family.kind) {
            return Err(ScenarioError::UnknownFamily(self.family.kind.clone()));
        }
        if !protocols().iter().any(|p| p.name == self.protocol.kind) {
            return Err(ScenarioError::UnknownProtocol(self.protocol.kind.clone()));
        }
        if self.sweep.sizes.is_empty() {
            return Err(ScenarioError::Invalid("sweep.sizes is empty".into()));
        }
        if self.sweep.sizes.contains(&0) {
            return Err(ScenarioError::Invalid(
                "sweep.sizes contains 0 (network sizes must be at least 1)".into(),
            ));
        }
        let mut seen = self.sweep.sizes.clone();
        seen.sort_unstable();
        if let Some(dup) = seen.windows(2).find(|w| w[0] == w[1]) {
            return Err(ScenarioError::Invalid(format!(
                "sweep.sizes contains duplicate size {} (each size runs once)",
                dup[0]
            )));
        }
        if self.sweep.trials_or_default() == 0 {
            return Err(ScenarioError::Invalid(
                "sweep.trials must be at least 1".into(),
            ));
        }
        if self.sweep.threads == Some(0) {
            return Err(ScenarioError::Invalid(
                "sweep.threads must be at least 1 (omit it to use every available core)".into(),
            ));
        }
        let backend = BackendChoice::parse(self.family.backend.as_deref())?;
        // Sampled-family parameter validation: catch bad p / d here, with
        // targeted messages, instead of at build time deep inside a sweep
        // (mirrors the sizes/trials checks above). A family is sampled
        // when it has no other representation (`resampled-gnp`,
        // `circulant-lift`) or when the spec asks for one.
        let sampled = backend == BackendChoice::Sampled;
        if self.family.kind == "resampled-gnp" || (self.family.kind == "er" && sampled) {
            let p = self.family.p.unwrap_or(0.1);
            if !(p > 0.0 && p <= 1.0) {
                return Err(ScenarioError::Invalid(format!(
                    "family `{}` needs edge probability p in (0, 1], got {p}",
                    self.family.kind
                )));
            }
        }
        if self.family.kind == "regular" && sampled {
            let d = self.family.d.unwrap_or(4);
            if d < 2 {
                return Err(ScenarioError::Invalid(format!(
                    "sampled random-regular needs degree d >= 2, got {d}"
                )));
            }
            for &n in &self.sweep.sizes {
                if d >= n {
                    return Err(ScenarioError::Invalid(format!(
                        "sampled random-regular degree d = {d} must be < n = {n}"
                    )));
                }
                if !(n * d).is_multiple_of(2) {
                    return Err(ScenarioError::Invalid(format!(
                        "n·d must be even for a d-regular graph (n = {n}, d = {d})"
                    )));
                }
            }
        }
        if self.family.kind == "circulant-lift" {
            let d = self.family.d.unwrap_or(4);
            for &n in &self.sweep.sizes {
                if d >= n {
                    return Err(ScenarioError::Invalid(format!(
                        "circulant-lift degree d = {d} must be < n = {n}"
                    )));
                }
            }
            if d == 0 || !d.is_multiple_of(2) {
                return Err(ScenarioError::Invalid(format!(
                    "circulant-lift needs an even positive degree, got d = {d}"
                )));
            }
        }
        let engine = parse_engine(self.sweep.engine.as_deref())?;
        if engine == Engine::Event && !protocol_is_incremental(&self.protocol.kind) {
            return Err(ScenarioError::Invalid(format!(
                "protocol `{}` cannot run on the event engine",
                self.protocol.kind
            )));
        }
        // Fault parameter validation: targeted messages up front, before
        // any sweep work (mirrors the sampled-family checks above).
        if let Some(faults) = &self.faults {
            let drop = faults.drop.unwrap_or(0.0);
            if !(0.0..=1.0).contains(&drop) {
                return Err(ScenarioError::Invalid(format!(
                    "faults.drop must be within [0, 1], got {drop}"
                )));
            }
            for (name, rate) in [
                ("crash_rate", faults.crash_rate),
                ("recovery_rate", faults.recovery_rate),
            ] {
                if let Some(r) = rate {
                    if !r.is_finite() || r < 0.0 {
                        return Err(ScenarioError::Invalid(format!(
                            "faults.{name} must be a finite non-negative rate, got {r}"
                        )));
                    }
                }
            }
            // Every scheduled node must exist at every sweep size, i.e.
            // at the smallest one (sizes are validated non-empty above).
            let min_n = *self.sweep.sizes.iter().min().expect("sizes non-empty");
            for &(window, node) in faults.schedule.iter().flatten() {
                if node as usize >= min_n {
                    return Err(ScenarioError::Invalid(format!(
                        "faults.schedule entry [{window}, {node}] references node {node}, \
                         but the smallest sweep size is {min_n} (nodes are 0-based)"
                    )));
                }
            }
            if let Some(rate) = faults.partition_rate {
                if !rate.is_finite() || rate < 0.0 {
                    return Err(ScenarioError::Invalid(format!(
                        "faults.partition_rate must be a finite non-negative rate, got {rate}"
                    )));
                }
            }
            for (name, p) in [("delay", faults.delay), ("duplicate", faults.duplicate)] {
                if let Some(p) = p {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(ScenarioError::Invalid(format!(
                            "faults.{name} must be within [0, 1], got {p}"
                        )));
                    }
                }
            }
            if faults.delay_epochs == Some(0) {
                return Err(ScenarioError::Invalid(
                    "faults.delay_epochs must be at least 1 (a delayed envelope waits \
                     between 1 and delay_epochs extra epochs)"
                        .into(),
                ));
            }
            let model = faults.to_model();
            if model.is_active() {
                if engine == Engine::Window {
                    return Err(ScenarioError::Invalid(
                        "active faults need the event engine (remove `engine = \"window\"` \
                         or deactivate the [faults] table)"
                            .into(),
                    ));
                }
                if !build_any_protocol(&self.protocol).is_ok_and(|p| p.supports_faults()) {
                    return Err(ScenarioError::Invalid(format!(
                        "protocol `{}` does not support fault injection \
                         (fault-aware protocols: async, naive, push, pull, two-push, lossy)",
                        self.protocol.kind
                    )));
                }
            }
        }
        // A [net] table declares intent to run live, so live-runtime
        // compatibility is validated up front (mirrors the [faults]
        // checks above).
        if self.net.is_some() {
            self.validate_net()?;
        }
        Ok(())
    }

    /// Live-runtime validation: can this spec run under `gossip net`?
    ///
    /// Called from [`ScenarioSpec::validate`] whenever a `[net]` table is
    /// present, and by the live driver on every spec (a spec without a
    /// `[net]` table runs live on all defaults). Assumes the structural
    /// checks of `validate` have passed.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] naming the first live-incompatibility:
    /// bad `[net]` parameters, a dynamic family, a protocol without a
    /// live implementation, sampled topologies too large to realize
    /// under UDP delivery, or fault features beyond per-message drops.
    pub fn validate_net(&self) -> Result<(), ScenarioError> {
        let net = self.net.clone().unwrap_or_default();
        if net.groups == Some(0) {
            return Err(ScenarioError::Invalid(
                "net.groups must be at least 1 (omit it to use one group per core)".into(),
            ));
        }
        let delivery = net.delivery.as_deref().unwrap_or("local");
        if !matches!(delivery, "local" | "udp") {
            return Err(ScenarioError::Invalid(format!(
                "unknown net.delivery `{delivery}` (local, udp)"
            )));
        }
        for (name, value) in [
            ("tick", net.tick),
            ("horizon", net.horizon),
            ("exchange_timeout", net.exchange_timeout),
        ] {
            if let Some(v) = value {
                if !(v.is_finite() && v > 0.0) {
                    return Err(ScenarioError::Invalid(format!(
                        "net.{name} must be a positive finite time, got {v}"
                    )));
                }
            }
        }
        if !LIVE_STATIC_FAMILIES.contains(&self.family.kind.as_str()) {
            return Err(ScenarioError::Invalid(format!(
                "family `{}` is dynamic; the live runtime runs static topologies only \
                 (static families: {})",
                self.family.kind,
                LIVE_STATIC_FAMILIES.join(", ")
            )));
        }
        if !LIVE_PROTOCOLS.contains(&self.protocol.kind.as_str()) {
            return Err(ScenarioError::Invalid(format!(
                "protocol `{}` has no live implementation \
                 (live protocols: {})",
                self.protocol.kind,
                LIVE_PROTOCOLS.join(", ")
            )));
        }
        if delivery == "udp" {
            let sampled = self.family.kind == "circulant-lift"
                || BackendChoice::parse(self.family.backend.as_deref())? == BackendChoice::Sampled;
            let max_n = self.sweep.sizes.iter().copied().max().unwrap_or(0);
            if sampled && max_n > UDP_SAMPLED_SIZE_LIMIT {
                return Err(ScenarioError::Invalid(format!(
                    "net.delivery = \"udp\" with the sampled `{}` backend at n = {max_n}: \
                     every UDP peer realizes the sampled topology locally, so sizes above \
                     {UDP_SAMPLED_SIZE_LIMIT} are rejected (use delivery = \"local\")",
                    self.family.kind
                )));
            }
        }
        if let Some(faults) = &self.faults {
            // The live runtime carries the full crash/recovery/schedule
            // model as per-node liveness state plus the delivery-chaos
            // fields; the one analytic-only feature left is adversarial
            // degree targeting, which needs a global still-up degree
            // ordering no node group can compute locally.
            if faults.to_model().target_high_degree > 0 {
                return Err(ScenarioError::Invalid(
                    "faults.target_high_degree is an analytic-engine feature (it ranks \
                     all still-up nodes by degree globally); the live runtime supports \
                     drop, crash_rate, recovery_rate, schedule, partition_rate, delay, \
                     and duplicate"
                        .into(),
                ));
            }
        }
        Ok(())
    }

    /// A documented template spec (what `gossip scenario init` prints).
    pub fn template() -> Self {
        ScenarioSpec {
            name: "example-sweep".into(),
            description: Some(
                "async push-pull on the dynamic star; edit family/protocol/sizes".into(),
            ),
            family: FamilySpec::new("dynamic-star"),
            protocol: ProtocolSpec::new("async"),
            sweep: SweepSpec {
                sizes: vec![64, 128, 256],
                trials: Some(20),
                seed: Some(42),
                max_time: Some(1e5),
                engine: Some("auto".into()),
                start: None,
                workspace: None,
                vectorized: None,
                threads: None,
                cell_parallel: None,
            },
            faults: None,
            net: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Per-size result row of a scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRow {
    /// Sweep size (`n`).
    pub n: usize,
    /// Trials run.
    pub trials: usize,
    /// Trials completed before the cutoff.
    pub completed: usize,
    /// Mean spread time over completed trials (0 when none completed).
    pub mean: f64,
    /// Standard deviation over completed trials.
    pub std_dev: f64,
    /// Median spread time (`None` when no trial completed).
    pub median: Option<f64>,
    /// 0.95 quantile — the empirical w.h.p. spread time.
    pub q95: Option<f64>,
    /// Largest completed spread time.
    pub max: Option<f64>,
}

/// The result of running a scenario: one row per sweep size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Family kind.
    pub family: String,
    /// Protocol display name.
    pub protocol: String,
    /// `"event"` or `"window"`.
    pub engine: String,
    /// Per-size results, in sweep order.
    pub rows: Vec<ScenarioRow>,
}

impl ScenarioReport {
    /// Extracts `(n, median)` pairs into a [`gossip_stats::series::Series`]
    /// with the given extra columns appended per row by `extra`.
    pub fn to_series(
        &self,
        columns: Vec<String>,
        mut extra: impl FnMut(&ScenarioRow) -> Vec<f64>,
    ) -> gossip_stats::series::Series {
        let mut series = gossip_stats::series::Series::new("n", columns);
        for row in &self.rows {
            series.push(row.n as f64, extra(row));
        }
        series
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario  : {}\nfamily    : {}\nprotocol  : {}\nengine    : {}",
            self.scenario, self.family, self.protocol, self.engine
        )?;
        writeln!(
            f,
            "{:>8} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "n", "done", "mean", "std", "median", "q95", "max"
        )?;
        for r in &self.rows {
            let opt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.4}"),
                None => "-".to_string(),
            };
            writeln!(
                f,
                "{:>8} {:>7} {:>10.4} {:>10.4} {:>10} {:>10} {:>10}",
                r.n,
                format!("{}/{}", r.completed, r.trials),
                r.mean,
                r.std_dev,
                opt(r.median),
                opt(r.q95),
                opt(r.max),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
thread_local! {
    /// Test-only crash injection: when set to `Some(i)`, the journaled
    /// execution path panics immediately before *executing* (never
    /// before replaying) cell `i`, emulating a process dying mid-sweep.
    static TEST_PANIC_BEFORE_CELL: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// The **planning half** of the scenario pipeline: a validated,
/// hashable, owned description of exactly what a sweep will execute.
///
/// Construction validates the spec, probes the protocol, resolves the
/// engine (including `auto`), compiles the fault model, and computes the
/// normalized content hash ([`crate::journal::spec_hash`]) — everything
/// that can fail or be precomputed, separated from execution so the plan
/// can be built once, inspected, content-addressed (the `gossip serve`
/// result store keys on [`ScenarioPlan::spec_hash`]), and executed many
/// times. [`ScenarioPlan::execution`] borrows the plan into a
/// [`SweepPlan`]; [`ScenarioPlan::into_execution`] consumes it.
#[derive(Debug, Clone)]
pub struct ScenarioPlan {
    spec: ScenarioSpec,
    engine: Engine,
    resolved: Engine,
    protocol_name: &'static str,
    trials: usize,
    seed: u64,
    config: RunConfig,
    faults: Option<FaultModel>,
    hash: u64,
}

impl ScenarioPlan {
    /// Validates `spec` and compiles the plan.
    ///
    /// # Errors
    ///
    /// Any [`ScenarioSpec::validate`] error, or a protocol construction
    /// error.
    pub fn new(spec: ScenarioSpec) -> Result<Self, ScenarioError> {
        spec.validate()?;
        // Delivery-layer chaos (partitions, delays, duplication) only
        // exists where envelopes physically travel; the analytic engines
        // have no message objects to perturb.
        if spec
            .faults
            .as_ref()
            .is_some_and(FaultSpec::net_chaos_active)
        {
            return Err(ScenarioError::Invalid(
                "faults.partition_rate / delay / duplicate perturb the delivery layer, \
                 which only the live runtime has — run this spec with `gossip net run`"
                    .into(),
            ));
        }
        let probe = build_any_protocol(&spec.protocol)?;
        let engine = parse_engine(spec.sweep.engine.as_deref())?;
        // The engine every cell resolves to is a pure function of the
        // spec, so even fully-replayed sweeps can report it without
        // running anything.
        let resolved = match engine {
            Engine::Auto => {
                if probe.supports_event() {
                    Engine::Event
                } else {
                    Engine::Window
                }
            }
            forced => forced,
        };
        Ok(ScenarioPlan {
            engine,
            resolved,
            protocol_name: probe.name(),
            trials: spec.sweep.trials_or_default(),
            seed: spec.sweep.seed_or_default(),
            config: RunConfig::with_max_time(spec.sweep.max_time_or_default()),
            faults: spec.faults.as_ref().map(FaultSpec::to_model),
            hash: journal::spec_hash(&spec),
            spec,
        })
    }

    /// The validated spec the plan was compiled from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The normalized content hash of the spec
    /// ([`crate::journal::spec_hash`]): the plan's identity as a content
    /// address — equal for every presentation of the same experiment.
    pub fn spec_hash(&self) -> u64 {
        self.hash
    }

    /// The engine selector as written in the spec (possibly `auto`).
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The engine every cell resolves to ([`Engine::Auto`] resolved
    /// against the protocol's capabilities).
    pub fn resolved_engine(&self) -> Engine {
        self.resolved
    }

    /// The protocol's display name.
    pub fn protocol_name(&self) -> &'static str {
        self.protocol_name
    }

    /// The sweep sizes, in execution order.
    pub fn sizes(&self) -> &[usize] {
        &self.spec.sweep.sizes
    }

    /// Trials per sweep size.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The trial RNG base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The [`RunPlan`] template for one sweep size — sizes share every
    /// parameter except `n`, which enters through the network builder at
    /// execution time.
    pub fn run_plan(&self) -> RunPlan<'static> {
        let mut plan = RunPlan::new(self.trials, self.seed)
            .config(self.config)
            .engine(self.engine)
            .start_opt(self.spec.sweep.start)
            .workspace(self.spec.sweep.workspace.unwrap_or(true))
            .vectorized(self.spec.sweep.vectorized.unwrap_or(true));
        if let Some(threads) = self.spec.sweep.threads {
            plan = plan.threads(threads);
        }
        if let Some(faults) = &self.faults {
            plan = plan.faults(faults.clone());
        }
        plan
    }

    /// Borrows the plan into its execution half.
    pub fn execution(&self) -> SweepPlan<'_> {
        SweepPlan::over(Cow::Borrowed(self))
    }

    /// Consumes the plan into a self-contained execution.
    pub fn into_execution(self) -> SweepPlan<'static> {
        SweepPlan::over(Cow::Owned(self))
    }
}

/// The **execution half** of a scenario: a [`ScenarioPlan`] plus the
/// per-run choices — journaling, resumption, and warm-state attachments
/// (a shared [`TopologyCache`] / [`WorkspacePool`]).
///
/// Construction ([`SweepPlan::new`], or [`ScenarioPlan::execution`] to
/// reuse an existing plan) validates the spec and probes the protocol
/// once, so bad parameters fail before any sweep work; execution then
/// reuses one [`RunPlan`] shape across all sizes — same trials, seed,
/// config, and engine per size, only `n` varies. A streaming
/// [`TrialObserver`] can ride along across the whole sweep
/// ([`SweepPlan::run_with`]), e.g. one [`gossip_sim::JsonlSink`]
/// receiving every trial of every size (records carry `n`, so the stream
/// stays self-describing).
#[derive(Debug, Clone)]
pub struct SweepPlan<'s> {
    plan: Cow<'s, ScenarioPlan>,
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
    topologies: Option<Arc<TopologyCache>>,
    pool: Option<Arc<WorkspacePool>>,
}

impl<'s> SweepPlan<'s> {
    /// Validates `spec` and prepares the sweep (compiling a fresh
    /// [`ScenarioPlan`] internally; use [`ScenarioPlan::execution`] to
    /// reuse one).
    ///
    /// # Errors
    ///
    /// Any [`ScenarioSpec::validate`] error, or a protocol construction
    /// error.
    pub fn new(spec: &ScenarioSpec) -> Result<Self, ScenarioError> {
        Ok(SweepPlan::over(Cow::Owned(ScenarioPlan::new(
            spec.clone(),
        )?)))
    }

    fn over(plan: Cow<'s, ScenarioPlan>) -> Self {
        SweepPlan {
            plan,
            journal: None,
            resume: None,
            topologies: None,
            pool: None,
        }
    }

    /// The compiled planning half.
    pub fn scenario_plan(&self) -> &ScenarioPlan {
        &self.plan
    }

    /// The engine selector the sweep will hand every [`RunPlan`].
    pub fn engine(&self) -> Engine {
        self.plan.engine
    }

    /// The sweep sizes, in execution order.
    pub fn sizes(&self) -> &[usize] {
        self.plan.sizes()
    }

    /// Journals every completed `(n, trials)` cell to a JSONL file at
    /// `path` (crash-safe: header first, one flushed line per cell), so
    /// an interrupted sweep can be resumed with
    /// [`SweepPlan::resume_from`]. Journaled sweeps run cells
    /// sequentially and cannot feed trajectory-recording observers.
    pub fn journal_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Replays the completed cells of a previous journal at `path`
    /// (observers receive the recorded trials exactly as a live run
    /// would deliver them) and executes only the remaining cells; the
    /// merged result is bit-identical to an uninterrupted run
    /// (test-enforced). The journal must have been written for this very
    /// experiment, checked via the normalized content hash — journals
    /// written under any presentation of the same spec resume cleanly.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// Attaches a shared [`TopologyCache`]: families served as shared
    /// sampled topologies are built through the cache, so repeat sweeps
    /// over the same `(family, n)` reuse already realized adjacency.
    /// Results are bit-identical with or without the cache
    /// (test-enforced).
    pub fn topologies(mut self, cache: Arc<TopologyCache>) -> Self {
        self.topologies = Some(cache);
        self
    }

    /// Attaches a shared [`WorkspacePool`]: every [`RunPlan`] the sweep
    /// executes checks its per-worker scratch arenas out of `pool`
    /// instead of allocating fresh ones, keeping buffers warm across
    /// runs in one process. Bit-identical either way.
    pub fn workspace_pool(mut self, pool: Arc<WorkspacePool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Builds the family at size `n` through the attached
    /// [`TopologyCache`], falling back to a cold [`build_family`].
    fn build_net(&self, n: usize) -> Result<Box<dyn DynamicNetwork>, ScenarioError> {
        build_family_cached(&self.plan.spec.family, n, self.topologies.as_deref())
    }

    /// The [`RunPlan`] for one sweep size: the planning half's template
    /// plus this execution's warm-state attachments.
    pub fn plan(&self) -> RunPlan<'static> {
        let mut plan = self.plan.run_plan();
        if let Some(pool) = &self.pool {
            plan = plan.workspace_pool(pool.clone());
        }
        plan
    }

    /// Runs the whole sweep.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Graph`] when a family constructor rejects a size;
    /// [`ScenarioError::Sim`] when a run fails.
    pub fn run(&self) -> Result<ScenarioReport, ScenarioError> {
        self.run_observed(&mut [])
    }

    /// Runs the whole sweep with streaming observers attached to every
    /// size's [`RunPlan`]; observers outlive the sweep, so sinks can be
    /// inspected (or files flushed) afterwards.
    ///
    /// # Errors
    ///
    /// As [`SweepPlan::run`], plus any observer failure
    /// ([`SimError::Observer`]).
    pub fn run_with(
        &self,
        mut observer: &mut dyn TrialObserver,
    ) -> Result<ScenarioReport, ScenarioError> {
        self.run_observed(std::slice::from_mut(&mut observer))
    }

    fn run_observed(
        &self,
        observers: &mut [&mut dyn TrialObserver],
    ) -> Result<ScenarioReport, ScenarioError> {
        let spec = self.plan.spec();
        if self.journal.is_some() || self.resume.is_some() {
            return self.run_journaled(observers);
        }
        if spec.sweep.cell_parallel.unwrap_or(false) && spec.sweep.sizes.len() > 1 {
            return self.run_cells_parallel(observers);
        }
        let mut rows = Vec::with_capacity(spec.sweep.sizes.len());
        let mut resolved = self.plan.engine;
        for &n in &spec.sweep.sizes {
            // Probe the family so constructor errors surface as errors,
            // not panics inside the plan's make_net closure.
            self.build_net(n)?;
            let mut plan = self.plan();
            for o in observers.iter_mut() {
                plan = plan.observer(&mut **o);
            }
            let report = plan.execute(
                || self.build_net(n).expect("probed above"),
                || build_any_protocol(&spec.protocol).expect("probed at construction"),
            )?;
            resolved = report.engine();
            rows.push(Self::row(n, &report));
        }
        Ok(ScenarioReport {
            scenario: spec.name.clone(),
            family: spec.family.kind.clone(),
            protocol: self.plan.protocol_name.to_string(),
            engine: resolved.name().to_string(),
            rows,
        })
    }

    /// The journaled / resuming execution path: cells run sequentially,
    /// every cleanly completed cell is appended to the journal (one
    /// flushed JSONL line per cell, so a crash loses at most the cell in
    /// flight), and cells found in a resume journal are *replayed* into
    /// the observers instead of re-executed. Replay delivers the
    /// recorded trials exactly as a live [`RunPlan`] would (trial order,
    /// [`TrialObserver::finish`] per cell), so the merged observer
    /// stream and report are bit-identical to an uninterrupted run —
    /// test-enforced, including resume after an injected mid-sweep
    /// crash.
    fn run_journaled(
        &self,
        observers: &mut [&mut dyn TrialObserver],
    ) -> Result<ScenarioReport, ScenarioError> {
        let spec = self.plan.spec();
        if observers.iter().any(|o| o.wants_trajectory()) {
            return Err(ScenarioError::Journal(
                "journaled sweeps cannot feed trajectory-recording observers \
                 (journal cells store per-trial summaries, not curves)"
                    .into(),
            ));
        }
        let spec_hash = self.plan.hash;
        // Load the whole resume journal *before* opening the new one:
        // resuming in place (the same path as both source and target)
        // is supported.
        let mut replayed: std::collections::BTreeMap<usize, JournalCell> = Default::default();
        if let Some(path) = &self.resume {
            let loaded = Journal::load(path)?;
            if loaded.header.spec_hash != spec_hash {
                return Err(ScenarioError::Journal(format!(
                    "{} was journaled for a different spec \
                     (journal hash {}, this spec hashes to {spec_hash})",
                    path.display(),
                    loaded.header.spec_hash,
                )));
            }
            for cell in loaded.cells {
                replayed.insert(cell.index, cell);
            }
        }
        let mut writer = match &self.journal {
            Some(path) => Some(JournalWriter::create(
                path,
                &JournalHeader {
                    scenario: spec.name.clone(),
                    spec_hash,
                    spec: spec.clone(),
                },
            )?),
            None => None,
        };
        // The engine every cell resolves to was precomputed by the
        // planning half, so fully-replayed sweeps report it without
        // running anything.
        let resolved = self.plan.resolved;
        let mut rows = Vec::with_capacity(spec.sweep.sizes.len());
        for (index, &n) in spec.sweep.sizes.iter().enumerate() {
            if let Some(cell) = replayed.get(&index) {
                if cell.n != n {
                    return Err(ScenarioError::Journal(format!(
                        "journal cell {index} recorded n = {}, the spec expects n = {n}",
                        cell.n
                    )));
                }
                for record in &cell.records {
                    for o in observers.iter_mut() {
                        o.on_trial(record).map_err(ScenarioError::Sim)?;
                    }
                }
                for o in observers.iter_mut() {
                    o.finish().map_err(ScenarioError::Sim)?;
                }
                // When re-journaling (resume + journal), replayed cells
                // carry over verbatim, keeping the new journal complete.
                if let Some(w) = writer.as_mut() {
                    w.append_cell(cell)?;
                }
                rows.push(cell.row.clone());
                continue;
            }
            #[cfg(test)]
            TEST_PANIC_BEFORE_CELL.with(|hook| {
                if hook.get() == Some(index) {
                    hook.set(None);
                    panic!("injected crash before cell {index}");
                }
            });
            // Probe the family, as on the plain sequential path.
            self.build_net(n)?;
            // Buffer the stripped records for the journal; attached
            // first, it sees exactly what the real observers see.
            struct Buffer(Vec<TrialRecord>);
            impl TrialObserver for Buffer {
                fn on_trial(&mut self, r: &TrialRecord) -> Result<(), SimError> {
                    self.0.push(r.clone());
                    Ok(())
                }
            }
            let mut buf = Buffer(Vec::new());
            let mut plan = self.plan().observer(&mut buf);
            for o in observers.iter_mut() {
                plan = plan.observer(&mut **o);
            }
            let report = plan.execute(
                || self.build_net(n).expect("probed above"),
                || build_any_protocol(&spec.protocol).expect("probed at construction"),
            )?;
            let row = Self::row(n, &report);
            if let Some(w) = writer.as_mut() {
                if report.trial_errors().is_empty() {
                    w.append_cell(&JournalCell {
                        index,
                        n,
                        row: row.clone(),
                        records: buf.0,
                    })?;
                }
                // A cell with isolated trial panics is *not* journaled:
                // a resume re-runs it in full instead of replaying a
                // partial cell.
            }
            rows.push(row);
        }
        Ok(ScenarioReport {
            scenario: spec.name.clone(),
            family: spec.family.kind.clone(),
            protocol: self.plan.protocol_name.to_string(),
            engine: resolved.name().to_string(),
            rows,
        })
    }

    /// Condenses one cell's [`RunReport`] into its sweep row.
    fn row(n: usize, report: &RunReport) -> ScenarioRow {
        ScenarioRow {
            n,
            trials: report.trials(),
            completed: report.completed(),
            mean: report.mean(),
            std_dev: report.std_dev(),
            median: report.try_median(),
            q95: report.try_whp_spread_time(),
            max: report.try_max(),
        }
    }

    /// Runs one `(n, trials)` cell on `threads` worker threads, buffering
    /// its trial records for ordered delivery by the sweep scheduler.
    ///
    /// The cell's [`RunPlan`] strips trajectories exactly as it would for
    /// directly attached observers: the buffer asks for them only when
    /// some real observer does (sweeps never set explicit recording —
    /// their config carries only the cutoff).
    fn run_cell(
        &self,
        n: usize,
        threads: usize,
        wants_trajectory: bool,
    ) -> Result<(Vec<TrialRecord>, RunReport), ScenarioError> {
        let spec = self.plan.spec();
        // Probe the family first, as on the sequential path.
        self.build_net(n)?;
        struct Buffer {
            records: Vec<TrialRecord>,
            wants: bool,
        }
        impl TrialObserver for Buffer {
            fn wants_trajectory(&self) -> bool {
                self.wants
            }
            fn on_trial(&mut self, r: &TrialRecord) -> Result<(), SimError> {
                self.records.push(r.clone());
                Ok(())
            }
        }
        let mut buf = Buffer {
            records: Vec::new(),
            wants: wants_trajectory,
        };
        let report = self.plan().threads(threads).observer(&mut buf).execute(
            || self.build_net(n).expect("probed above"),
            || build_any_protocol(&spec.protocol).expect("probed at construction"),
        )?;
        Ok((buf.records, report))
    }

    /// The sweep-level work-stealing scheduler: whole cells run
    /// concurrently across the global thread budget instead of one cell
    /// at a time.
    ///
    /// Workers claim the next unstarted cell from a shared counter (so a
    /// straggler cell never idles the other workers), run it with an
    /// equal slice of the thread budget, and ship the cell's buffered
    /// records back to the calling thread, which re-sequences cells and
    /// feeds observers **strictly in sweep order** — trial order within a
    /// cell, cell order across the sweep, [`TrialObserver::finish`] after
    /// each cell. Per-trial seeding is untouched (trial `i` of a cell
    /// consumes the same `derive(i)` stream in every mode), so summaries
    /// and observer streams are bit-identical to the sequential per-cell
    /// path (test-enforced by `cell_parallel_sweep_matches_sequential`).
    ///
    /// A failing cell cancels the sweep: running cells finish, unclaimed
    /// ones never start, and the error reported is the earliest failing
    /// cell in sweep order — exactly what sequential execution would have
    /// returned.
    fn run_cells_parallel(
        &self,
        observers: &mut [&mut dyn TrialObserver],
    ) -> Result<ScenarioReport, ScenarioError> {
        use std::collections::BTreeMap;
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

        let spec = self.plan.spec();
        let sizes = &spec.sweep.sizes;
        let cells = sizes.len();
        let avail = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let budget = spec.sweep.threads.unwrap_or(avail).max(1);
        let workers = budget.min(cells);
        // Split the budget evenly across concurrent cells; results are
        // thread-count invariant, so the split only shapes throughput.
        let per_cell = (budget / workers).max(1);
        if workers * per_cell > avail {
            static OVERSUBSCRIBED: std::sync::Once = std::sync::Once::new();
            OVERSUBSCRIBED.call_once(|| {
                eprintln!(
                    "warning: sweep.cell_parallel schedules {workers} cells x {per_cell} \
                     thread(s) but only {avail} hardware thread(s) are available; \
                     concurrent cells will time-share cores"
                );
            });
        }
        let wants_trajectory = observers.iter().any(|o| o.wants_trajectory());

        let next_cell = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        type CellResult = Result<(Vec<TrialRecord>, RunReport), ScenarioError>;
        let (tx, rx) = std::sync::mpsc::channel::<(usize, CellResult)>();
        let mut rows: Vec<ScenarioRow> = Vec::with_capacity(cells);
        let mut resolved = self.plan.engine;
        let mut first_err: Option<ScenarioError> = None;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next_cell = &next_cell;
                let abort = &abort;
                scope.spawn(move || loop {
                    // Check abort *before* claiming: every claimed cell
                    // sends exactly one result, so the reorder frontier
                    // below can never stall on a hole.
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let c = next_cell.fetch_add(1, Ordering::Relaxed);
                    if c >= cells {
                        break;
                    }
                    let result = self.run_cell(sizes[c], per_cell, wants_trajectory);
                    let failed = result.is_err();
                    if tx.send((c, result)).is_err() || failed {
                        break;
                    }
                });
            }
            drop(tx);

            // Re-sequence cells and deliver in sweep order. Claims are
            // monotone, so once cell c's result arrives, every earlier
            // cell's result arrives too, and the frontier always clears.
            let mut pending: BTreeMap<usize, CellResult> = BTreeMap::new();
            let mut next = 0usize;
            'drain: for (c, result) in &rx {
                if first_err.is_some() {
                    continue; // aborted: drain so workers never block
                }
                if result.is_err() {
                    abort.store(true, Ordering::Relaxed);
                }
                pending.insert(c, result);
                while let Some(result) = pending.remove(&next) {
                    let (records, report) = match result {
                        Ok(cell) => cell,
                        Err(e) => {
                            first_err = Some(e);
                            pending.clear();
                            continue 'drain;
                        }
                    };
                    // Mirror RunPlan delivery: full record only to
                    // observers that asked for the trajectory (a sweep
                    // never sets explicit recording), finish per cell.
                    let mut deliver = || -> Result<(), SimError> {
                        for record in &records {
                            for o in observers.iter_mut() {
                                if o.wants_trajectory() {
                                    o.on_trial(record)?;
                                } else {
                                    let stripped = TrialRecord {
                                        trajectory: None,
                                        ..record.clone()
                                    };
                                    o.on_trial(&stripped)?;
                                }
                            }
                        }
                        for o in observers.iter_mut() {
                            o.finish()?;
                        }
                        Ok(())
                    };
                    if let Err(e) = deliver() {
                        first_err = Some(ScenarioError::Sim(e));
                        abort.store(true, Ordering::Relaxed);
                        pending.clear();
                        continue 'drain;
                    }
                    resolved = report.engine();
                    rows.push(Self::row(sizes[next], &report));
                    next += 1;
                }
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }
        debug_assert_eq!(rows.len(), cells);
        Ok(ScenarioReport {
            scenario: spec.name.clone(),
            family: spec.family.kind.clone(),
            protocol: self.plan.protocol_name.to_string(),
            engine: resolved.name().to_string(),
            rows,
        })
    }
}

/// Runs a scenario end to end: for each sweep size, builds the family and
/// protocol and executes the trial batch through [`SweepPlan`] /
/// [`RunPlan`].
///
/// # Errors
///
/// Validation errors up front; [`ScenarioError::Sim`] when a run fails.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<ScenarioReport, ScenarioError> {
    SweepPlan::new(spec)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML_SPEC: &str = r#"
name = "toml-demo"
description = "complete-graph async sweep"

[family]
kind = "complete"

[protocol]
kind = "async"

[sweep]
sizes = [16, 32]
trials = 8
seed = 7
max_time = 1e4
"#;

    #[test]
    fn toml_round_trip_and_run() {
        let spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        assert_eq!(spec.name, "toml-demo");
        assert_eq!(spec.sweep.sizes, vec![16, 32]);
        let rendered = spec.to_toml_string();
        let back = ScenarioSpec::from_toml_str(&rendered).unwrap();
        assert_eq!(spec, back);

        let report = run_scenario(&spec).unwrap();
        assert_eq!(report.engine, "event");
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.completed == 8));
        assert!(report.rows[0].median.unwrap() > 0.0);
        let text = report.to_string();
        assert!(
            text.contains("toml-demo") && text.contains("median"),
            "{text}"
        );
    }

    #[test]
    fn json_round_trip() {
        let spec = ScenarioSpec::template();
        let json = spec.to_json_string();
        let back = ScenarioSpec::from_json_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn window_engine_forced() {
        let mut spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        spec.sweep.engine = Some("window".into());
        let report = run_scenario(&spec).unwrap();
        assert_eq!(report.engine, "window");
    }

    #[test]
    fn sync_protocol_auto_selects_window() {
        let mut spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        spec.protocol = ProtocolSpec::new("sync");
        let report = run_scenario(&spec).unwrap();
        assert_eq!(report.engine, "window");
    }

    #[test]
    fn event_engine_rejected_for_window_only_protocols() {
        let mut spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        spec.protocol = ProtocolSpec::new("sync");
        spec.sweep.engine = Some("event".into());
        assert!(matches!(spec.validate(), Err(ScenarioError::Invalid(_))));
    }

    #[test]
    fn validation_catches_unknown_names() {
        let mut spec = ScenarioSpec::template();
        spec.family.kind = "klein-bottle".into();
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::UnknownFamily(_))
        ));
        let mut spec = ScenarioSpec::template();
        spec.protocol.kind = "telepathy".into();
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::UnknownProtocol(_))
        ));
        let mut spec = ScenarioSpec::template();
        spec.sweep.sizes.clear();
        assert!(matches!(spec.validate(), Err(ScenarioError::Invalid(_))));
    }

    #[test]
    fn every_family_registry_entry_builds() {
        for entry in families() {
            let n = match entry.name {
                "diligent" | "absolute-diligent" => 160,
                _ => 24,
            };
            let mut spec = FamilySpec::new(entry.name);
            spec.rho = Some(0.125);
            spec.d = Some(4);
            spec.p = Some(0.3);
            spec.q = Some(0.4);
            spec.dim = Some(4);
            spec.rows = Some(5);
            spec.cols = Some(5);
            spec.agents = Some(10);
            spec.radius = Some(1);
            let net = build_family(&spec, n)
                .unwrap_or_else(|e| panic!("family {} failed: {e}", entry.name));
            assert!(net.n() > 0);
        }
    }

    #[test]
    fn every_protocol_registry_entry_builds() {
        for entry in protocols() {
            let mut spec = ProtocolSpec::new(entry.name);
            spec.loss = Some(0.1);
            spec.downtime = Some(0.05);
            let p = build_any_protocol(&spec)
                .unwrap_or_else(|e| panic!("protocol {} failed: {e}", entry.name));
            assert!(!p.name().is_empty());
            // The registry's incremental flag and the builder's variant
            // agree by construction.
            assert_eq!(p.supports_event(), protocol_is_incremental(entry.name));
            // Every protocol has a window form.
            assert!(!build_protocol(&spec).unwrap().name().is_empty());
        }
    }

    #[test]
    fn sweep_validation_rejects_bad_sizes() {
        let mut spec = ScenarioSpec::template();
        spec.sweep.sizes = vec![64, 0, 128];
        assert!(
            matches!(spec.validate(), Err(ScenarioError::Invalid(m)) if m.contains("contains 0"))
        );
        let mut spec = ScenarioSpec::template();
        spec.sweep.sizes = vec![64, 128, 64];
        assert!(
            matches!(spec.validate(), Err(ScenarioError::Invalid(m)) if m.contains("duplicate"))
        );
        let mut spec = ScenarioSpec::template();
        spec.sweep.trials = Some(0);
        assert!(matches!(spec.validate(), Err(ScenarioError::Invalid(m)) if m.contains("trials")));
        let mut spec = ScenarioSpec::template();
        spec.sweep.threads = Some(0);
        assert!(
            matches!(spec.validate(), Err(ScenarioError::Invalid(m)) if m.contains("sweep.threads"))
        );
    }

    #[test]
    fn cell_parallel_sweep_matches_sequential_bit_for_bit() {
        // The work-stealing cell scheduler must be invisible in the
        // results: identical rows AND an identical observer stream
        // (trial order within each cell, cell order across the sweep).
        use gossip_sim::TrialRecord;
        struct Stream(Vec<(usize, usize, u64)>);
        impl gossip_sim::TrialObserver for Stream {
            fn on_trial(&mut self, r: &TrialRecord) -> Result<(), SimError> {
                self.0
                    .push((r.n, r.trial, r.spread_time.map_or(0, f64::to_bits)));
                Ok(())
            }
        }
        let mut spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        spec.sweep.sizes = vec![16, 24, 32, 48];
        let mut seq_sink = Stream(Vec::new());
        let sequential = SweepPlan::new(&spec)
            .unwrap()
            .run_with(&mut seq_sink)
            .unwrap();

        let mut par = spec.clone();
        par.sweep.cell_parallel = Some(true);
        // Deliberately oversubscribe a small box: exercises the warning
        // path and the budget split without changing any result.
        par.sweep.threads = Some(8);
        let mut par_sink = Stream(Vec::new());
        let parallel = SweepPlan::new(&par)
            .unwrap()
            .run_with(&mut par_sink)
            .unwrap();

        assert_eq!(sequential, parallel);
        assert_eq!(seq_sink.0, par_sink.0);
        // And the plain (observer-less) parallel run agrees too.
        assert_eq!(run_scenario(&par).unwrap(), sequential);
    }

    #[test]
    fn cell_parallel_sweep_cancels_on_a_failing_cell() {
        // Cell 1 (n = 3) rejects the start override; the sweep must
        // surface that error even though cells 0 and 2 succeed.
        let mut spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        spec.sweep.sizes = vec![16, 3, 32];
        spec.sweep.start = Some(8);
        spec.sweep.cell_parallel = Some(true);
        spec.sweep.threads = Some(3);
        let err = run_scenario(&spec).unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::Sim(SimError::StartOutOfRange { start: 8, n: 3 })
        ));
    }

    #[test]
    fn scalar_sweep_knob_runs_the_reference_loop() {
        // vectorized = false stays a valid end-to-end configuration (the
        // A/B reference); distribution equivalence itself is enforced in
        // gossip-sim's vectorized_equivalence tests.
        let mut spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        spec.sweep.vectorized = Some(false);
        let report = run_scenario(&spec).unwrap();
        assert!(report.rows.iter().all(|r| r.completed == r.trials));
    }

    #[test]
    fn sweep_plan_streams_one_observer_across_sizes() {
        use gossip_sim::{TrialObserver as _, TrialRecord};
        struct CountPerN(std::collections::BTreeMap<usize, usize>);
        impl gossip_sim::TrialObserver for CountPerN {
            fn on_trial(&mut self, r: &TrialRecord) -> Result<(), SimError> {
                *self.0.entry(r.n).or_insert(0) += 1;
                Ok(())
            }
        }
        let _ = CountPerN(Default::default()).wants_trajectory();
        let spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        let plan = SweepPlan::new(&spec).unwrap();
        assert_eq!(plan.sizes(), &[16, 32]);
        assert_eq!(plan.engine(), Engine::Auto);
        let mut sink = CountPerN(Default::default());
        let report = plan.run_with(&mut sink).unwrap();
        assert_eq!(report.engine, "event");
        assert_eq!(sink.0.get(&16), Some(&8));
        assert_eq!(sink.0.get(&32), Some(&8));
        // The observed run reports identical rows to the plain run.
        let plain = plan.run().unwrap();
        assert_eq!(report, plain);
    }

    #[test]
    fn backend_knob_selects_representation() {
        // Implicit (default) and materialized complete backends both
        // build; the networks agree on every queryable property.
        let auto = build_family(&FamilySpec::new("complete"), 32).unwrap();
        assert_eq!(auto.n(), 32);
        let mut spec = FamilySpec::new("complete");
        spec.backend = Some("materialized".into());
        let mat = build_family(&spec, 32).unwrap();
        assert_eq!(mat.n(), 32);
        spec.backend = Some("implicit".into());
        assert!(build_family(&spec, 32).is_ok());
        // Families without the requested representation reject it.
        let mut spec = FamilySpec::new("dynamic-star");
        spec.backend = Some("materialized".into());
        assert!(matches!(
            build_family(&spec, 32),
            Err(ScenarioError::Invalid(_))
        ));
        let mut spec = FamilySpec::new("er");
        spec.backend = Some("implicit".into());
        assert!(matches!(
            build_family(&spec, 32),
            Err(ScenarioError::Invalid(_))
        ));
        // Unknown backend strings fail validation up front.
        let mut spec = ScenarioSpec::template();
        spec.family = FamilySpec::new("complete");
        spec.family.backend = Some("holographic".into());
        assert!(matches!(spec.validate(), Err(ScenarioError::Invalid(_))));
    }

    #[test]
    fn backend_representations_agree_on_medians() {
        let mut spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        spec.sweep.trials = Some(40);
        let implicit = run_scenario(&spec).unwrap();
        spec.family.backend = Some("materialized".into());
        let materialized = run_scenario(&spec).unwrap();
        for (a, b) in implicit.rows.iter().zip(&materialized.rows) {
            let (ma, mb) = (a.median.unwrap(), b.median.unwrap());
            assert!(
                (ma - mb).abs() / mb < 0.5,
                "medians diverged at n = {}: {ma} vs {mb}",
                a.n
            );
        }
    }

    #[test]
    fn sampled_backend_selects_representation() {
        // er / regular gain a sampled arm; circulant-lift defaults to it.
        for (kind, backend) in [
            ("er", Some("sampled")),
            ("regular", Some("sampled")),
            ("circulant-lift", None),
            ("circulant-lift", Some("sampled")),
            ("circulant-lift", Some("materialized")),
            ("resampled-gnp", None),
            ("resampled-gnp", Some("sampled")),
        ] {
            let mut spec = FamilySpec::new(kind);
            spec.backend = backend.map(str::to_string);
            let net = build_family(&spec, 24)
                .unwrap_or_else(|e| panic!("{kind} backend {backend:?} failed: {e}"));
            assert_eq!(net.n(), 24);
        }
        // Representations a family does not have are rejected.
        for (kind, backend) in [
            ("er", "implicit"),
            ("regular", "implicit"),
            ("circulant-lift", "implicit"),
            ("complete", "sampled"),
            ("dynamic-star", "sampled"),
            ("resampled-gnp", "materialized"),
        ] {
            let mut spec = FamilySpec::new(kind);
            spec.backend = Some(backend.into());
            assert!(
                matches!(build_family(&spec, 24), Err(ScenarioError::Invalid(_))),
                "{kind} should reject backend `{backend}`"
            );
        }
    }

    #[test]
    fn er_sampled_and_materialized_share_the_graph() {
        // The eager er generator routes through the sampled backend with
        // the same seed derivation, so the two representations of one
        // build seed describe the identical graph — summaries match to
        // the bit.
        let mut spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        spec.family = FamilySpec::new("er");
        spec.family.p = Some(0.2);
        spec.family.backend = Some("sampled".into());
        let sampled = run_scenario(&spec).unwrap();
        spec.family.backend = Some("materialized".into());
        let materialized = run_scenario(&spec).unwrap();
        assert_eq!(sampled.rows, materialized.rows);
    }

    #[test]
    fn sampled_spec_validation_targets_bad_parameters() {
        // p outside (0, 1] for sampled er / resampled-gnp.
        for (kind, backend) in [("er", Some("sampled")), ("resampled-gnp", None)] {
            for p in [0.0, -0.1, 1.5] {
                let mut spec = ScenarioSpec::template();
                spec.family = FamilySpec::new(kind);
                spec.family.p = Some(p);
                spec.family.backend = backend.map(str::to_string);
                assert!(
                    matches!(spec.validate(), Err(ScenarioError::Invalid(m)) if m.contains("(0, 1]")),
                    "{kind} should reject p = {p}"
                );
            }
        }
        // Eager er keeps accepting p = 0 (an empty graph is representable).
        let mut spec = ScenarioSpec::template();
        spec.family = FamilySpec::new("er");
        spec.family.p = Some(0.0);
        assert!(spec.validate().is_ok());
        // d >= n and odd n·d for the sampled regular family.
        let mut spec = ScenarioSpec::template();
        spec.family = FamilySpec::new("regular");
        spec.family.d = Some(300);
        spec.family.backend = Some("sampled".into());
        spec.sweep.sizes = vec![64, 128];
        assert!(
            matches!(spec.validate(), Err(ScenarioError::Invalid(m)) if m.contains("must be < n"))
        );
        spec.family.d = Some(3);
        spec.sweep.sizes = vec![64, 127];
        assert!(
            matches!(spec.validate(), Err(ScenarioError::Invalid(m)) if m.contains("must be even"))
        );
        // d < 2 fails at validation, not mid-sweep (mirrors
        // SampledRegular::new's 2 <= d < n constraint).
        spec.family.d = Some(1);
        spec.sweep.sizes = vec![64];
        assert!(matches!(spec.validate(), Err(ScenarioError::Invalid(m)) if m.contains("d >= 2")));
        spec.family.d = Some(3);
        spec.sweep.sizes = vec![64, 128];
        assert!(spec.validate().is_ok());
        // circulant-lift degree checks run regardless of backend.
        let mut spec = ScenarioSpec::template();
        spec.family = FamilySpec::new("circulant-lift");
        spec.family.d = Some(3);
        assert!(
            matches!(spec.validate(), Err(ScenarioError::Invalid(m)) if m.contains("even positive"))
        );
    }

    #[test]
    fn resampled_gnp_scenario_runs_end_to_end() {
        let mut spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        spec.family = FamilySpec::new("resampled-gnp");
        spec.family.p = Some(0.15);
        let report = run_scenario(&spec).unwrap();
        assert_eq!(report.engine, "event");
        assert!(report.rows.iter().all(|r| r.completed == r.trials));
    }

    #[test]
    fn scenario_plan_splits_planning_from_execution() {
        let spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        let plan = ScenarioPlan::new(spec.clone()).unwrap();
        assert_eq!(plan.spec_hash(), journal::spec_hash(&spec));
        assert_eq!(plan.resolved_engine(), Engine::Event);
        assert_eq!(plan.protocol_name(), "async push-pull (cut-rate)");
        assert_eq!(plan.sizes(), &[16, 32]);
        assert_eq!((plan.trials(), plan.seed()), (8, 7));
        // One plan, many executions — identical to the one-shot path.
        let one_shot = SweepPlan::new(&spec).unwrap().run().unwrap();
        let a = plan.execution().run().unwrap();
        let b = plan.into_execution().run().unwrap();
        let render = |r: &ScenarioReport| serde_json::to_string_pretty(r);
        assert_eq!(render(&a), render(&one_shot));
        assert_eq!(render(&b), render(&one_shot));
    }

    #[test]
    fn warm_state_attachments_are_bit_invisible() {
        let mut spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        spec.family = FamilySpec::new("er");
        spec.family.p = Some(0.3);
        spec.family.backend = Some("sampled".into());
        let mut cold = ByteSink(Vec::new());
        let cold_report = SweepPlan::new(&spec).unwrap().run_with(&mut cold).unwrap();

        let cache = Arc::new(TopologyCache::new());
        let pool = Arc::new(WorkspacePool::new());
        let plan = ScenarioPlan::new(spec.clone()).unwrap();
        for round in 0..2 {
            let mut warm = ByteSink(Vec::new());
            let report = plan
                .execution()
                .topologies(cache.clone())
                .workspace_pool(pool.clone())
                .run_with(&mut warm)
                .unwrap();
            assert_eq!(warm.0, cold.0, "warm round {round} diverged from cold run");
            assert_eq!(
                serde_json::to_string_pretty(&report),
                serde_json::to_string_pretty(&cold_report),
            );
        }
        // Every (family, n) realizes once; the second sweep is all hits.
        assert_eq!(cache.misses(), spec.sweep.sizes.len());
        assert!(cache.hits() >= spec.sweep.sizes.len());
        assert!(pool.idle() >= 1, "workspaces should return to the pool");
    }

    #[test]
    fn lossy_probability_errors_surface() {
        let mut spec = ProtocolSpec::new("lossy");
        spec.loss = Some(1.0);
        assert!(matches!(build_protocol(&spec), Err(ScenarioError::Sim(_))));
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "gossip-scenario-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    /// A JSONL-like byte stream of every record, for bit-identity checks.
    struct ByteSink(Vec<u8>);
    impl gossip_sim::TrialObserver for ByteSink {
        fn on_trial(&mut self, r: &TrialRecord) -> Result<(), SimError> {
            self.0
                .extend_from_slice(serde_json::to_string(r).as_bytes());
            self.0.push(b'\n');
            Ok(())
        }
    }

    fn faulty_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        spec.faults = Some(FaultSpec {
            drop: Some(0.2),
            crash_rate: Some(0.05),
            recovery_rate: Some(0.3),
            seed: Some(11),
            ..FaultSpec::new()
        });
        spec
    }

    #[test]
    fn fault_spec_round_trips_and_compiles() {
        let mut spec = faulty_spec();
        spec.faults.as_mut().unwrap().schedule = Some(vec![(3, 0), (5, 2)]);
        let toml = spec.to_toml_string();
        assert!(toml.contains("[faults]"), "{toml}");
        assert!(toml.contains("schedule = [[3, 0], [5, 2]]"), "{toml}");
        assert_eq!(ScenarioSpec::from_toml_str(&toml).unwrap(), spec);
        let json = spec.to_json_string();
        assert_eq!(ScenarioSpec::from_json_str(&json).unwrap(), spec);
        let model = spec.faults.as_ref().unwrap().to_model();
        assert!(model.is_active());
        assert_eq!(model.schedule, vec![(3, 0), (5, 2)]);
        // Old specs without [faults] keep parsing (field is optional).
        let plain = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        assert_eq!(plain.faults, None);
    }

    #[test]
    fn fault_validation_targets_bad_parameters() {
        let mut spec = faulty_spec();
        spec.faults.as_mut().unwrap().drop = Some(1.5);
        assert!(
            matches!(spec.validate(), Err(ScenarioError::Invalid(m)) if m.contains("faults.drop"))
        );
        let mut spec = faulty_spec();
        spec.faults.as_mut().unwrap().crash_rate = Some(-0.1);
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::Invalid(m)) if m.contains("faults.crash_rate")
        ));
        let mut spec = faulty_spec();
        spec.faults.as_mut().unwrap().recovery_rate = Some(f64::NAN);
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::Invalid(m)) if m.contains("faults.recovery_rate")
        ));
        // A scheduled node must exist at the smallest sweep size (16).
        let mut spec = faulty_spec();
        spec.faults.as_mut().unwrap().schedule = Some(vec![(0, 16)]);
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::Invalid(m)) if m.contains("smallest sweep size")
        ));
        // Active faults reject the window engine...
        let mut spec = faulty_spec();
        spec.sweep.engine = Some("window".into());
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::Invalid(m)) if m.contains("event engine")
        ));
        // ...and window-only protocols.
        let mut spec = faulty_spec();
        spec.protocol = ProtocolSpec::new("sync");
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::Invalid(m)) if m.contains("fault injection")
        ));
        // An inactive [faults] table is fine anywhere.
        let mut spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        spec.faults = Some(FaultSpec::new());
        spec.sweep.engine = Some("window".into());
        spec.validate().unwrap();
    }

    #[test]
    fn faulty_scenario_runs_end_to_end() {
        // Recoverable crashes + drops: slower, but every trial still ends.
        let report = run_scenario(&faulty_spec()).unwrap();
        assert_eq!(report.engine, "event");
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert_eq!(row.trials, 8);
            assert!(row.completed > 0, "some trials should still spread");
        }
        // And an inactive fault table is bit-identical to no table.
        let plain = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        let mut inactive = plain.clone();
        inactive.faults = Some(FaultSpec {
            seed: Some(99),
            ..FaultSpec::new()
        });
        assert_eq!(
            run_scenario(&plain).unwrap().rows,
            run_scenario(&inactive).unwrap().rows
        );
    }

    #[test]
    fn journaled_sweep_is_invisible_and_resume_is_bit_identical() {
        let spec = faulty_spec();
        let plan = SweepPlan::new(&spec).unwrap();

        // Reference: plain uninterrupted run.
        let mut ref_sink = ByteSink(Vec::new());
        let reference = plan.clone().run_with(&mut ref_sink).unwrap();

        // Journaling changes nothing observable.
        let journal = temp_path("journal-full");
        let mut jour_sink = ByteSink(Vec::new());
        let journaled = plan
            .clone()
            .journal_to(&journal)
            .run_with(&mut jour_sink)
            .unwrap();
        assert_eq!(journaled, reference);
        assert_eq!(jour_sink.0, ref_sink.0);

        // Truncate to the header + first cell, as a mid-sweep crash
        // would, then resume: merged stream and report bit-identical.
        let text = std::fs::read_to_string(&journal).unwrap();
        let cut: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        assert!(cut.len() < text.len(), "journal should hold 2 cells");
        std::fs::write(&journal, cut).unwrap();
        let mut res_sink = ByteSink(Vec::new());
        let resumed = plan
            .clone()
            .resume_from(&journal)
            .run_with(&mut res_sink)
            .unwrap();
        assert_eq!(resumed, reference);
        assert_eq!(res_sink.0, ref_sink.0);

        // Resuming while re-journaling in place rebuilds a complete
        // journal: a second resume replays every cell (no execution).
        let text = std::fs::read_to_string(&journal).unwrap();
        let cut: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        std::fs::write(&journal, cut).unwrap();
        let rebuilt = plan
            .clone()
            .resume_from(&journal)
            .journal_to(&journal)
            .run()
            .unwrap();
        assert_eq!(rebuilt, reference);
        let full = Journal::load(&journal).unwrap();
        assert_eq!(full.cells.len(), 2);
        let mut replay_sink = ByteSink(Vec::new());
        let replayed = plan
            .clone()
            .resume_from(&journal)
            .run_with(&mut replay_sink)
            .unwrap();
        assert_eq!(replayed, reference);
        assert_eq!(replay_sink.0, ref_sink.0);
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn resume_after_injected_crash_is_bit_identical() {
        let spec = faulty_spec();
        let plan = SweepPlan::new(&spec).unwrap();
        let mut ref_sink = ByteSink(Vec::new());
        let reference = plan.clone().run_with(&mut ref_sink).unwrap();

        // Crash the process (panic) right before cell 1 executes: the
        // journal on disk must hold the header and cell 0 only.
        let journal = temp_path("journal-crash");
        super::TEST_PANIC_BEFORE_CELL.with(|h| h.set(Some(1)));
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.clone().journal_to(&journal).run()
        }));
        assert!(died.is_err(), "the injected crash must fire");
        super::TEST_PANIC_BEFORE_CELL.with(|h| assert_eq!(h.get(), None));
        let partial = Journal::load(&journal).unwrap();
        assert_eq!(partial.cells.len(), 1);
        assert_eq!(partial.cells[0].n, 16);

        // Resume: cell 0 replays from disk, cell 1 runs live.
        let mut res_sink = ByteSink(Vec::new());
        let resumed = plan
            .clone()
            .resume_from(&journal)
            .run_with(&mut res_sink)
            .unwrap();
        assert_eq!(resumed, reference);
        assert_eq!(res_sink.0, ref_sink.0);
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn resume_rejects_a_different_spec() {
        let spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        let journal = temp_path("journal-mismatch");
        SweepPlan::new(&spec)
            .unwrap()
            .journal_to(&journal)
            .run()
            .unwrap();
        let mut other = spec.clone();
        other.sweep.seed = Some(8);
        let err = SweepPlan::new(&other)
            .unwrap()
            .resume_from(&journal)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::Journal(ref m) if m.contains("different spec")),
            "{err}"
        );
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn journaled_sweeps_reject_trajectory_observers() {
        struct Wants;
        impl gossip_sim::TrialObserver for Wants {
            fn wants_trajectory(&self) -> bool {
                true
            }
            fn on_trial(&mut self, _: &TrialRecord) -> Result<(), SimError> {
                Ok(())
            }
        }
        let spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        let journal = temp_path("journal-trajectory");
        let err = SweepPlan::new(&spec)
            .unwrap()
            .journal_to(&journal)
            .run_with(&mut Wants)
            .unwrap_err();
        assert!(matches!(err, ScenarioError::Journal(m) if m.contains("trajectory")));
    }

    #[test]
    fn engines_agree_on_medians() {
        // The same scenario through both engines: medians within noise.
        let mut spec = ScenarioSpec::from_toml_str(TOML_SPEC).unwrap();
        spec.sweep.trials = Some(40);
        spec.sweep.engine = Some("event".into());
        let event = run_scenario(&spec).unwrap();
        spec.sweep.engine = Some("window".into());
        let window = run_scenario(&spec).unwrap();
        for (e, w) in event.rows.iter().zip(&window.rows) {
            let (me, mw) = (e.median.unwrap(), w.median.unwrap());
            assert!(
                (me - mw).abs() / mw < 0.5,
                "medians diverged at n = {}: {me} vs {mw}",
                e.n
            );
        }
    }
}
