//! Per-step profile types and sources.
//!
//! Re-exports [`StepProfile`] (defined next to the dynamic networks, which
//! produce it) and provides helpers for turning graphs and networks into
//! profile streams for the [`crate::bounds`] calculators.

pub use gossip_dynamics::profile::{
    conservative_profile, exact_profile, ProfiledNetwork, StepProfile,
};

/// A constant profile stream (static networks).
///
/// # Example
///
/// ```
/// use gossip_core::profile::{constant, StepProfile};
///
/// let p = StepProfile { phi: 0.5, rho: 1.0, rho_abs: 0.25, connected: true };
/// let mut source = constant(p);
/// assert_eq!(source(0), p);
/// assert_eq!(source(99), p);
/// ```
pub fn constant(p: StepProfile) -> impl FnMut(u64) -> StepProfile {
    move |_| p
}

/// A profile stream cycling through a fixed schedule (periodic networks
/// such as the Section 1.2 alternating example).
///
/// # Panics
///
/// Panics when `schedule` is empty.
pub fn cycling(schedule: Vec<StepProfile>) -> impl FnMut(u64) -> StepProfile {
    assert!(
        !schedule.is_empty(),
        "cycling profile needs at least one entry"
    );
    move |t| schedule[(t % schedule.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycling_wraps() {
        let a = StepProfile {
            phi: 0.1,
            rho: 1.0,
            rho_abs: 0.5,
            connected: true,
        };
        let b = StepProfile {
            phi: 0.9,
            rho: 1.0,
            rho_abs: 0.5,
            connected: true,
        };
        let mut src = cycling(vec![a, b]);
        assert_eq!(src(0), a);
        assert_eq!(src(1), b);
        assert_eq!(src(2), a);
        assert_eq!(src(101), b);
    }

    #[test]
    #[should_panic]
    fn empty_schedule_panics() {
        let _ = cycling(vec![]);
    }
}
