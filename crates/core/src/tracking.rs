//! Tracked runs: measure the spread time and the paper's bound
//! accumulators on the *same* trajectory.
//!
//! Each window `[t, t+1)` the engine (a) asks the dynamic network for
//! `G(t)` (adaptive adversaries see the informed set), (b) obtains a
//! [`StepProfile`] for it, (c) advances the protocol. On completion the
//! outcome reports both the measured spread time and the steps at which
//! Theorem 1.1 / Theorem 1.3 would have declared completion — the
//! experiment binaries print them side by side.
//!
//! Profiling and protocol advancement both query
//! [`DynamicNetwork::topology`] for the same `t`; implementations are
//! required (and tested) to be idempotent for repeated calls with the same
//! step and informed set.

use crate::profile::{conservative_profile, exact_profile, ProfiledNetwork, StepProfile};
use gossip_dynamics::DynamicNetwork;
use gossip_graph::{NodeId, NodeSet};
use gossip_sim::{Protocol, SimError};
use gossip_stats::SimRng;
use serde::{Deserialize, Serialize};

/// How per-window profiles are obtained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfileMode {
    /// Exact enumeration — small graphs only (`n ≤ 24`).
    Exact,
    /// Spectral/absolute conservative lower bounds (any scale, sound for
    /// upper-bound stopping rules); the payload is the power-iteration
    /// count.
    Conservative(usize),
    /// Ask the network itself ([`ProfiledNetwork::current_profile`],
    /// closed forms such as Observation 4.1).
    FromNetwork,
    /// A caller-supplied constant profile, reused every window. The right
    /// choice for *static* networks: compute [`conservative_profile`] (or
    /// [`exact_profile`]) once and avoid re-profiling an unchanged graph
    /// thousands of times while the `Σ Φ·ρ` accumulator climbs to its
    /// `C log n` target.
    Fixed(StepProfile),
}

/// Result of a tracked run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackedOutcome {
    /// Measured completion time, `None` when the cutoff hit first.
    pub spread_time: Option<f64>,
    /// Windows traversed by the *process* (completion window index + 1, or
    /// the cutoff). Profiles may extend further: bound accumulation
    /// continues after completion until both rules fire or the cutoff
    /// hits.
    pub windows: u64,
    /// Network size.
    pub n: usize,
    /// Step at which `Σ Φ·ρ` reached the Theorem 1.1 target, if it did.
    pub theorem_1_1_steps: Option<u64>,
    /// Step at which `Σ ⌈Φ⌉·ρ̄` reached the Theorem 1.3 target (2n), if it
    /// did.
    pub theorem_1_3_steps: Option<u64>,
    /// `Σ Φ·ρ` accumulated by the end of the run.
    pub sum_phi_rho: f64,
    /// `Σ ⌈Φ⌉·ρ̄` accumulated by the end of the run.
    pub sum_abs: f64,
    /// Per-window profiles (one per traversed window).
    pub profiles: Vec<StepProfile>,
}

impl TrackedOutcome {
    /// Corollary 1.6: the smaller of the two firing steps.
    pub fn corollary_1_6_steps(&self) -> Option<u64> {
        match (self.theorem_1_1_steps, self.theorem_1_3_steps) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Measured-to-bound ratio for Theorem 1.1 (`None` when either side is
    /// missing). Values `≤ 1` mean the bound held.
    pub fn theorem_1_1_ratio(&self) -> Option<f64> {
        Some(self.spread_time? / self.theorem_1_1_steps? as f64)
    }
}

/// Runs `protocol` over `net` from `start`, profiling each window with
/// `mode`, using the Theorem 1.1 constant for failure exponent `c`.
///
/// # Errors
///
/// [`SimError`] variants for invalid start/size/cutoff.
///
/// # Panics
///
/// `ProfileMode::Exact` panics on graphs above the enumeration limit (the
/// caller chooses the mode, so this is a usage bug, not a runtime
/// condition).
pub fn run_tracked<N, P>(
    net: &mut N,
    protocol: &mut P,
    start: NodeId,
    c: f64,
    max_time: f64,
    mode: ProfileMode,
    rng: &mut SimRng,
) -> Result<TrackedOutcome, SimError>
where
    N: ProfiledNetwork,
    P: Protocol,
{
    run_tracked_with(
        net,
        protocol,
        start,
        c,
        max_time,
        rng,
        move |net, informed, t, rng| {
            match mode {
                ProfileMode::Exact => {
                    let g = net.topology(t, informed, rng).graph_cow();
                    exact_profile(&g).expect("graph small enough for exact profiling")
                }
                ProfileMode::Conservative(iters) => {
                    let g = net.topology(t, informed, rng).graph_cow();
                    conservative_profile(&g, iters)
                }
                ProfileMode::FromNetwork => {
                    // Ensure the network has exposed (and so knows) G(t).
                    let _ = net.topology(t, informed, rng);
                    net.current_profile()
                }
                ProfileMode::Fixed(p) => p,
            }
        },
    )
}

/// As [`run_tracked`] for networks without closed-form profiles; only
/// [`ProfileMode::Exact`] and [`ProfileMode::Conservative`] are valid.
///
/// # Errors
///
/// [`SimError`] variants for invalid start/size/cutoff.
///
/// # Panics
///
/// Panics when called with [`ProfileMode::FromNetwork`].
pub fn run_tracked_generic<N, P>(
    net: &mut N,
    protocol: &mut P,
    start: NodeId,
    c: f64,
    max_time: f64,
    mode: ProfileMode,
    rng: &mut SimRng,
) -> Result<TrackedOutcome, SimError>
where
    N: DynamicNetwork,
    P: Protocol,
{
    run_tracked_with(
        net,
        protocol,
        start,
        c,
        max_time,
        rng,
        move |net, informed, t, rng| {
            if let ProfileMode::Fixed(p) = mode {
                // No need to expose the topology just to profile it: the
                // caller asserts the profile is time-invariant.
                return p;
            }
            let g = net.topology(t, informed, rng).graph_cow();
            match mode {
                ProfileMode::Exact => {
                    exact_profile(&g).expect("graph small enough for exact profiling")
                }
                ProfileMode::Conservative(iters) => conservative_profile(&g, iters),
                ProfileMode::FromNetwork => {
                    panic!("FromNetwork profiling requires a ProfiledNetwork; use run_tracked")
                }
                ProfileMode::Fixed(_) => unreachable!("handled above"),
            }
        },
    )
}

fn run_tracked_with<N, P>(
    net: &mut N,
    protocol: &mut P,
    start: NodeId,
    c: f64,
    max_time: f64,
    rng: &mut SimRng,
    mut profiler: impl FnMut(&mut N, &NodeSet, u64, &mut SimRng) -> StepProfile,
) -> Result<TrackedOutcome, SimError>
where
    N: DynamicNetwork,
    P: Protocol,
{
    let n = net.n();
    if n == 0 {
        return Err(SimError::EmptyNetwork);
    }
    if start as usize >= n {
        return Err(SimError::StartOutOfRange { start, n });
    }
    // Negated form deliberately rejects NaN cutoffs too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(max_time > 0.0) {
        return Err(SimError::InvalidTimeLimit(max_time));
    }

    net.reset();
    protocol.begin(n);
    let mut informed = NodeSet::new(n);
    informed.insert(start);

    let target_11 = gossip_stats::tail::theorem_1_1_constant(c) * (n as f64).ln();
    let target_13 = 2.0 * n as f64;
    let mut sum_11 = 0.0;
    let mut sum_13 = 0.0;
    let mut fired_11 = None;
    let mut fired_13 = None;
    let mut profiles = Vec::new();

    // Phase 1: simulate while accumulating the bounds. Phase 2 (after the
    // protocol completes): keep accumulating profiles only, because the
    // stopping times T(G,c) and T_abs are properties of the network
    // trajectory and typically fire *after* the measured completion — that
    // is exactly the slack the experiments report.
    let mut spread_time: Option<f64> = None;
    let mut windows: u64 = 0;
    let mut t: u64 = 0;
    loop {
        let p = profiler(net, &informed, t, rng);
        profiles.push(p);
        sum_11 += p.theorem_1_1_increment();
        sum_13 += p.theorem_1_3_increment();
        if fired_11.is_none() && sum_11 >= target_11 {
            fired_11 = Some(t + 1);
        }
        if fired_13.is_none() && sum_13 >= target_13 {
            fired_13 = Some(t + 1);
        }
        if spread_time.is_none() {
            let g = net.topology(t, &informed, rng);
            if let Some(tau) = protocol.advance_window(g, t, &mut informed, rng) {
                spread_time = Some(tau);
                windows = t + 1;
            }
        }
        t += 1;
        let bounds_done = fired_11.is_some() && fired_13.is_some();
        if spread_time.is_some() && bounds_done {
            break;
        }
        if t as f64 >= max_time {
            if spread_time.is_none() {
                windows = t;
            }
            break;
        }
    }

    Ok(TrackedOutcome {
        spread_time,
        windows,
        n,
        theorem_1_1_steps: fired_11,
        theorem_1_3_steps: fired_13,
        sum_phi_rho: sum_11,
        sum_abs: sum_13,
        profiles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_dynamics::{DynamicStar, StaticNetwork};
    use gossip_graph::generators;
    use gossip_sim::CutRateAsync;

    #[test]
    fn dynamic_star_measured_well_below_bound() {
        // Theorem 1.7(ii): Ta(G2) = Θ(log n) while the Theorem 1.1 bound is
        // C·log n with C ≈ 227 — the bound must hold with huge slack.
        let mut net = DynamicStar::new(200).unwrap();
        let mut proto = CutRateAsync::new();
        let mut rng = SimRng::seed_from_u64(5);
        let start = net.suggested_start();
        let out = run_tracked(
            &mut net,
            &mut proto,
            start,
            1.0,
            1e6,
            ProfileMode::FromNetwork,
            &mut rng,
        )
        .unwrap();
        let spread = out.spread_time.unwrap();
        let bound = out.theorem_1_1_steps.unwrap() as f64;
        assert!(spread <= bound, "spread {spread} exceeded bound {bound}");
        assert!(
            spread < 30.0,
            "dynamic star should finish in Θ(log n), got {spread}"
        );
    }

    #[test]
    fn exact_profiles_on_small_static_graph() {
        let mut net = StaticNetwork::new(generators::star(12).unwrap());
        let mut proto = CutRateAsync::new();
        let mut rng = SimRng::seed_from_u64(6);
        let out = run_tracked_generic(
            &mut net,
            &mut proto,
            0,
            1.0,
            1e6,
            ProfileMode::Exact,
            &mut rng,
        )
        .unwrap();
        assert!(out.spread_time.is_some());
        // Star: every window profile is (1, 1, 1, connected).
        for p in &out.profiles {
            assert_eq!((p.phi, p.rho, p.rho_abs), (1.0, 1.0, 1.0));
        }
        assert!(out.sum_phi_rho > 0.0);
        assert!(out.sum_abs > 0.0);
        // Profiling continues past completion until the bounds fire.
        assert!(out.profiles.len() >= out.windows as usize);
        assert!(out.theorem_1_1_steps.is_some());
        assert!(out.theorem_1_3_steps.is_some());
        assert!(out.spread_time.unwrap() <= out.theorem_1_1_steps.unwrap() as f64);
    }

    #[test]
    fn conservative_profiles_at_scale() {
        let mut rng = SimRng::seed_from_u64(8);
        let g = generators::random_connected_regular(128, 4, &mut rng).unwrap();
        let mut net = StaticNetwork::new(g);
        let mut proto = CutRateAsync::new();
        // Short horizon: conservative (spectral) profiling per window is
        // costly, and this test only checks that profiles are sound.
        let out = run_tracked_generic(
            &mut net,
            &mut proto,
            0,
            1.0,
            60.0,
            ProfileMode::Conservative(2000),
            &mut rng,
        )
        .unwrap();
        assert!(out.spread_time.is_some());
        assert!(out.profiles.iter().all(|p| p.connected && p.phi > 0.0));
    }

    #[test]
    fn fixed_profile_matches_conservative_rerun() {
        // A static graph profiled once and replayed as Fixed must produce
        // the same bound-firing step as per-window conservative profiling
        // (same profile every window), while touching the graph only for
        // protocol advancement. A star keeps the window count small: the
        // spectral Φ bound is Θ(1), so both accumulators fire after
        // O(log n) windows and the per-window rerun stays cheap.
        let g = generators::star(16).unwrap();
        let profile = crate::profile::conservative_profile(&g, 300);
        let mut net = StaticNetwork::new(g.clone());

        let mut proto = CutRateAsync::new();
        let mut rng_a = SimRng::seed_from_u64(12);
        let fixed = run_tracked_generic(
            &mut net,
            &mut proto,
            0,
            1.0,
            1e5,
            ProfileMode::Fixed(profile),
            &mut rng_a,
        )
        .unwrap();

        let mut net_b = StaticNetwork::new(g);
        let mut proto_b = CutRateAsync::new();
        let mut rng_b = SimRng::seed_from_u64(12);
        let per_window = run_tracked_generic(
            &mut net_b,
            &mut proto_b,
            0,
            1.0,
            1e5,
            ProfileMode::Conservative(300),
            &mut rng_b,
        )
        .unwrap();

        assert_eq!(fixed.theorem_1_1_steps, per_window.theorem_1_1_steps);
        assert_eq!(fixed.theorem_1_3_steps, per_window.theorem_1_3_steps);
        assert_eq!(fixed.spread_time, per_window.spread_time);
    }

    #[test]
    fn corollary_combines() {
        let out = TrackedOutcome {
            spread_time: Some(5.0),
            windows: 6,
            n: 16,
            theorem_1_1_steps: Some(40),
            theorem_1_3_steps: Some(32),
            sum_phi_rho: 1.0,
            sum_abs: 32.0,
            profiles: vec![],
        };
        assert_eq!(out.corollary_1_6_steps(), Some(32));
        assert!((out.theorem_1_1_ratio().unwrap() - 0.125).abs() < 1e-12);
        let out2 = TrackedOutcome {
            theorem_1_1_steps: None,
            ..out
        };
        assert_eq!(out2.corollary_1_6_steps(), Some(32));
    }

    #[test]
    fn start_validation() {
        let mut net = StaticNetwork::new(generators::path(4).unwrap());
        let mut proto = CutRateAsync::new();
        let mut rng = SimRng::seed_from_u64(7);
        let err = run_tracked_generic(
            &mut net,
            &mut proto,
            9,
            1.0,
            10.0,
            ProfileMode::Exact,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::StartOutOfRange { .. }));
    }
}
