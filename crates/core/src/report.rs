//! Shared text rendering for the experiment binaries.
//!
//! Every `exp_*` binary prints the same header/claim/series/verdict layout
//! so `EXPERIMENTS.md` and regression diffs stay uniform.

use crate::experiment::ExperimentSpec;
use gossip_stats::series::Series;

/// Renders the standard experiment header.
pub fn header(spec: &ExperimentSpec) -> String {
    format!(
        "==================================================================\n\
         {} — {}\n\
         claim    : {}\n\
         workload : {}\n\
         bench    : cargo run -p gossip-bench --release --bin {}\n\
         ------------------------------------------------------------------",
        spec.id, spec.paper_item, spec.claim, spec.workload, spec.bench_bin
    )
}

/// Renders a results table with a caption.
pub fn table(caption: &str, series: &Series) -> String {
    format!("{caption}\n{series}")
}

/// Renders a one-line verdict: did the measured shape match the claim?
pub fn verdict(ok: bool, detail: &str) -> String {
    if ok {
        format!("VERDICT: REPRODUCED — {detail}")
    } else {
        format!("VERDICT: MISMATCH — {detail}")
    }
}

/// Formats a measured-vs-predicted pair with their ratio.
pub fn comparison(name: &str, measured: f64, predicted: f64) -> String {
    let ratio = if predicted != 0.0 {
        measured / predicted
    } else {
        f64::NAN
    };
    format!(
        "{name}: measured = {measured:.4}, predicted scale = {predicted:.4}, ratio = {ratio:.4}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment;

    #[test]
    fn header_contains_id_and_bin() {
        let spec = experiment::find("E7").unwrap();
        let h = header(&spec);
        assert!(h.contains("E7"));
        assert!(h.contains("exp_e7"));
        assert!(h.contains("Theorem 1.7(ii)"));
    }

    #[test]
    fn verdict_text() {
        assert!(verdict(true, "slope 1.02").starts_with("VERDICT: REPRODUCED"));
        assert!(verdict(false, "slope 3.0").starts_with("VERDICT: MISMATCH"));
    }

    #[test]
    fn comparison_ratio() {
        let s = comparison("T", 10.0, 5.0);
        assert!(s.contains("ratio = 2.0000"));
    }

    #[test]
    fn table_includes_caption_and_columns() {
        let mut s = Series::new("n", vec!["t".into()]);
        s.push(2.0, vec![4.0]);
        let out = table("spread time", &s);
        assert!(out.contains("spread time"));
        assert!(out.contains('t'));
    }
}
