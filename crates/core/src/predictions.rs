//! The paper's closed-form growth laws, used by the experiment binaries as
//! the "paper claim" column next to measured values.
//!
//! Constants inside `Θ(·)`/`Ω(·)` are not specified by the paper; these
//! functions return the *scaling term* (the expression inside the
//! asymptotic notation), and experiments compare shapes — log-log slopes,
//! ratios across sweeps — rather than absolute values.

/// Theorem 1.1 stopping target: `C·log n` with `C = (10c + 20)/c₀`.
///
/// # Panics
///
/// Panics when `n < 2` or `c < 1`.
pub fn theorem_1_1_target(n: usize, c: f64) -> f64 {
    assert!(n >= 2);
    gossip_stats::tail::theorem_1_1_constant(c) * (n as f64).ln()
}

/// Theorem 1.2 lower bound scale for `G(n, ρ)`: `n/(4·k·⌈1/ρ⌉)` — the
/// proof's Inequality (11), of order `nρ/k`.
///
/// # Panics
///
/// Panics when `ρ ∉ (0, 1]` or `k == 0`.
pub fn theorem_1_2_lower(n: usize, rho: f64, k: usize) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0,1]");
    assert!(k > 0, "k must be positive");
    n as f64 / (4.0 * k as f64 * (1.0 / rho).ceil())
}

/// Theorem 1.2 upper bound scale from Theorem 1.1 on `G(n, ρ)`:
/// `(k/ρ + nρ)·log n` (Section 4: `O(log n/(ρΦ))` with
/// `Φ = Θ(1/(k + nρ²))`).
///
/// # Panics
///
/// Panics when `ρ ∉ (0, 1]` or `k == 0` or `n < 2`.
pub fn theorem_1_2_upper(n: usize, rho: f64, k: usize) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0 && k > 0 && n >= 2);
    (k as f64 / rho + n as f64 * rho) * (n as f64).ln()
}

/// Theorem 1.5 lower bound scale for the absolutely-`ρ`-diligent family:
/// `n/ρ` (each of `Θ(n)` boundary crossings waits `(Δ+1)/2` expected
/// time).
///
/// # Panics
///
/// Panics when `ρ ∉ (0, 1]`.
pub fn theorem_1_5_lower(n: usize, rho: f64) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0,1]");
    n as f64 / rho
}

/// Remark 1.4: every connected dynamic network spreads within `O(n²)`;
/// the explicit Theorem 1.3 form is `2n·(n−1)` steps when
/// `ρ̄ = 1/(n−1)` at every step.
///
/// # Panics
///
/// Panics when `n < 2`.
pub fn remark_1_4_worst_case(n: usize) -> f64 {
    assert!(n >= 2);
    2.0 * n as f64 * (n as f64 - 1.0)
}

/// Theorem 1.7(iii): the dynamic star exceeds time `2k` with probability
/// at most `e^{−k/2} + e^{−k}` (up to `o(1)`).
pub fn dynamic_star_tail(k: f64) -> f64 {
    gossip_stats::tail::dynamic_star_tail_bound(k)
}

/// The \[17\] bound's scale on the Section 1.2 alternating network:
/// `M(G)·log n = ((n−1)/d)·log n` steps of `Φ = Θ(1)` each, i.e.
/// `Θ(n log n)`.
///
/// # Panics
///
/// Panics when `n < 2` or `d == 0`.
pub fn giakkoupis_alternating_scale(n: usize, d: usize) -> f64 {
    assert!(n >= 2 && d > 0);
    ((n - 1) as f64 / d as f64) * (n as f64).ln()
}

/// Observation 4.1 conductance of `H_{k,Δ}`: `Δ²/(kΔ² + n)`.
///
/// # Panics
///
/// Panics when `Δ == 0` or `k == 0`.
pub fn observation_4_1_phi(n: usize, k: usize, delta: usize) -> f64 {
    assert!(delta > 0 && k > 0);
    let d2 = (delta * delta) as f64;
    d2 / (k as f64 * d2 + n as f64)
}

/// Observation 4.1 diligence of `H_{k,Δ}`: `1/Δ`.
///
/// # Panics
///
/// Panics when `Δ == 0`.
pub fn observation_4_1_rho(delta: usize) -> f64 {
    assert!(delta > 0);
    1.0 / delta as f64
}

/// Lemma 4.2: probability that the rumor crosses the `k`-hop string within
/// one time unit is at most `2^k·Δ/k!` (by Markov on
/// `E[I(1,k)] ≤ 2^k Δ/k!`).
///
/// # Panics
///
/// Panics when `Δ == 0`.
pub fn lemma_4_2_crossing_bound(k: usize, delta: usize) -> f64 {
    assert!(delta > 0);
    let log_bound = k as f64 * core::f64::consts::LN_2 + (delta as f64).ln()
        - (1..=k).map(|j| (j as f64).ln()).sum::<f64>();
    log_bound.exp().min(1.0)
}

/// Static-network baseline from the paper's introduction: any connected
/// static network finishes in `O(n log n)` asynchronous time \[1\]; scale
/// `n·log n`.
///
/// # Panics
///
/// Panics when `n < 2`.
pub fn static_worst_case(n: usize) -> f64 {
    assert!(n >= 2);
    n as f64 * (n as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_1_2_bounds_ordered() {
        // Upper must dominate lower across the paper's regime.
        for n in [256usize, 1024, 4096] {
            for rho in [0.05, 0.1, 0.5, 1.0] {
                if rho >= 1.0 / (n as f64).sqrt() {
                    let k = 3;
                    assert!(
                        theorem_1_2_upper(n, rho, k) >= theorem_1_2_lower(n, rho, k),
                        "n={n}, rho={rho}"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem_1_2_lower_matches_nrho_over_k() {
        // With 1/ρ integral the closed form is exactly nρ/(4k).
        let v = theorem_1_2_lower(1000, 0.1, 5);
        assert!((v - 1000.0 * 0.1 / 20.0).abs() < 1e-9);
    }

    #[test]
    fn gap_is_subpolylog_squared() {
        // Theorem 1.2's headline: upper/lower = o(log² n) in the main
        // regime (nρ² >= k). "Little-o" means the ratio normalized by
        // log²n tends to zero — check it decreases along a geometric n
        // sweep with k = ln n / ln ln n and nρ² fixed at 100.
        let normalized = |exp: u32| {
            let n = 1usize << exp;
            let rho = (100.0 / n as f64).sqrt();
            let k = ((n as f64).ln() / (n as f64).ln().ln()).round() as usize;
            let ratio = theorem_1_2_upper(n, rho, k) / theorem_1_2_lower(n, rho, k);
            ratio / (n as f64).ln().powi(2)
        };
        let seq: Vec<f64> = [16u32, 24, 32, 44].iter().map(|&e| normalized(e)).collect();
        for w in seq.windows(2) {
            assert!(w[1] < w[0], "normalized gap not decreasing: {seq:?}");
        }
    }

    #[test]
    fn worst_case_quadratic() {
        assert!((remark_1_4_worst_case(10) - 180.0).abs() < 1e-9);
        // Quadratic growth: 2x n -> ~4x bound.
        let r = remark_1_4_worst_case(2000) / remark_1_4_worst_case(1000);
        assert!((r - 4.0).abs() < 0.01);
    }

    #[test]
    fn star_tail_decreasing() {
        assert!(dynamic_star_tail(2.0) > dynamic_star_tail(4.0));
        assert!(dynamic_star_tail(20.0) < 1e-4);
    }

    #[test]
    fn giakkoupis_scale_linear_in_n() {
        let r = giakkoupis_alternating_scale(2048, 3) / giakkoupis_alternating_scale(1024, 3);
        assert!(r > 1.9 && r < 2.3, "ratio {r}");
    }

    #[test]
    fn lemma_4_2_factorial_decay() {
        let b3 = lemma_4_2_crossing_bound(3, 5);
        let b8 = lemma_4_2_crossing_bound(8, 5);
        assert!(b8 < b3 / 10.0);
        // Large k: underflow-safe and clamped to [0,1].
        let b = lemma_4_2_crossing_bound(100, 1000);
        assert!((0.0..=1.0).contains(&b));
        assert!(b < 1e-30);
    }

    #[test]
    fn observation_4_1_limits() {
        // kΔ² >> n: Φ -> 1/k. n >> kΔ²: Φ -> Δ²/n.
        assert!((observation_4_1_phi(10, 4, 1000) - 1.0 / 4.0).abs() < 1e-3);
        assert!((observation_4_1_phi(1_000_000, 2, 3) - 9.0 / 1_000_018.0).abs() < 1e-9);
    }
}
