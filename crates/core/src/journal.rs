//! Crash-safe sweep journals.
//!
//! A journal is a JSONL file a [`crate::scenario::SweepPlan`] appends to
//! as it runs: first a [`JournalHeader`] line binding the file to one
//! exact spec (by content hash), then one [`JournalCell`] line per
//! cleanly completed `(n, trials)` cell — its [`ScenarioRow`] plus every
//! [`TrialRecord`] — flushed as soon as the cell finishes. If the
//! process dies mid-sweep, at most the cell in flight is lost:
//! [`Journal::load`] tolerates a torn final line, and a resumed sweep
//! ([`crate::scenario::SweepPlan::resume_from`]) replays the loaded
//! cells and re-executes only the remainder, bit-identical to an
//! uninterrupted run.
//!
//! The spec hash is FNV-1a over the *normalized* spec's canonical JSON
//! rendering ([`ScenarioSpec::normalized`]): any semantic change —
//! sizes, seeds, fault parameters, engine — invalidates old journals
//! instead of silently splicing incompatible results, while
//! presentation-only differences (description, `[net]` settings, thread
//! counts, defaults spelled out vs omitted, TOML vs JSON source) hash
//! identically, so journals and the `gossip serve` result store are
//! shared across every rendering of the same experiment.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use gossip_sim::TrialRecord;
use serde::{de_field, DeError, Deserialize, Serialize, Value};

use crate::scenario::{ScenarioError, ScenarioRow, ScenarioSpec};

/// FNV-1a 64-bit hash of the spec's canonical (pretty JSON) rendering,
/// taken over its normalized form ([`ScenarioSpec::normalized`]).
///
/// Stable across processes and platforms; used to bind a journal file to
/// the experiment that produced it. Two specs hash equal exactly when
/// they describe the same experiment: presentation-only fields
/// (description, `[net]`, `sweep.threads` / `workspace` /
/// `cell_parallel`) and defaults written out explicitly do not change
/// the hash, and a spec loaded from TOML hashes identically to the same
/// spec loaded from JSON. The `gossip serve` result store keys on this
/// hash, so equivalent requests share one cache entry.
pub fn spec_hash(spec: &ScenarioSpec) -> u64 {
    let json = spec.normalized().to_json_string();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in json.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The journal's first line: scenario identity plus the full embedded
/// spec, so `--resume <journal>` can reconstruct the sweep without the
/// original spec file.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalHeader {
    /// Scenario name (from the spec; convenience for humans reading the
    /// file).
    pub scenario: String,
    /// [`spec_hash`] of the embedded spec, stored as a decimal string in
    /// the file (the full 64-bit range does not fit a JSON number).
    pub spec_hash: u64,
    /// The complete spec the journal was written for.
    pub spec: ScenarioSpec,
}

impl Serialize for JournalHeader {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("kind".into(), Value::Str("header".into())),
            ("scenario".into(), self.scenario.to_value()),
            ("spec_hash".into(), Value::Str(self.spec_hash.to_string())),
            ("spec".into(), self.spec.to_value()),
        ])
    }
}

impl Deserialize for JournalHeader {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let map = value
            .as_map()
            .ok_or_else(|| DeError::expected("map", value))?;
        let kind: String = de_field(map, "kind")?;
        if kind != "header" {
            return Err(DeError::message(format!(
                "expected a journal header line, found kind `{kind}`"
            )));
        }
        let hash: String = de_field(map, "spec_hash")?;
        let spec_hash = hash
            .parse::<u64>()
            .map_err(|_| DeError::message(format!("malformed spec_hash `{hash}`")))?;
        Ok(JournalHeader {
            scenario: de_field(map, "scenario")?,
            spec_hash,
            spec: de_field(map, "spec")?,
        })
    }
}

/// One cleanly completed sweep cell: its position, condensed row, and
/// every trial record (trajectories stripped, exactly as delivered to
/// non-trajectory observers).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalCell {
    /// Cell position in the sweep (index into `sweep.sizes`).
    pub index: usize,
    /// The cell's network size.
    pub n: usize,
    /// The condensed per-size report row.
    pub row: ScenarioRow,
    /// Every trial record of the cell, in trial order.
    pub records: Vec<TrialRecord>,
}

impl Serialize for JournalCell {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("kind".into(), Value::Str("cell".into())),
            ("index".into(), self.index.to_value()),
            ("n".into(), self.n.to_value()),
            ("row".into(), self.row.to_value()),
            ("records".into(), self.records.to_value()),
        ])
    }
}

impl Deserialize for JournalCell {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let map = value
            .as_map()
            .ok_or_else(|| DeError::expected("map", value))?;
        let kind: String = de_field(map, "kind")?;
        if kind != "cell" {
            return Err(DeError::message(format!(
                "expected a journal cell line, found kind `{kind}`"
            )));
        }
        Ok(JournalCell {
            index: de_field(map, "index")?,
            n: de_field(map, "n")?,
            row: de_field(map, "row")?,
            records: de_field(map, "records")?,
        })
    }
}

/// An open journal being written: header first, then one flushed line
/// per completed cell, so the on-disk prefix is valid after any crash.
#[derive(Debug)]
pub struct JournalWriter {
    out: BufWriter<File>,
}

impl JournalWriter {
    /// Creates (truncates) the journal at `path` and writes the header.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Journal`] on I/O failure.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, ScenarioError> {
        let file = File::create(path)
            .map_err(|e| ScenarioError::Journal(format!("{}: {e}", path.display())))?;
        let mut out = BufWriter::new(file);
        write_line(&mut out, &serde_json::to_string(header))?;
        Ok(JournalWriter { out })
    }

    /// Appends one completed cell and flushes it to disk.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Journal`] on I/O failure.
    pub fn append_cell(&mut self, cell: &JournalCell) -> Result<(), ScenarioError> {
        write_line(&mut self.out, &serde_json::to_string(cell))
    }
}

fn write_line(out: &mut BufWriter<File>, line: &str) -> Result<(), ScenarioError> {
    writeln!(out, "{line}")
        .and_then(|()| out.flush())
        .map_err(|e| ScenarioError::Journal(format!("journal write failed: {e}")))
}

/// A loaded journal: the header plus every intact cell line.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// The spec-binding header.
    pub header: JournalHeader,
    /// Every cell that was fully written, in file order.
    pub cells: Vec<JournalCell>,
}

impl Journal {
    /// Loads a journal, tolerating a torn tail: the header must parse,
    /// and cells are read until the first line that does not (a process
    /// killed mid-append leaves exactly such a partial last line, which
    /// a resume then simply re-runs).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Journal`] when the file is unreadable, empty, or
    /// its first line is not a valid header.
    pub fn load(path: &Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Journal(format!("{}: {e}", path.display())))?;
        let mut lines = text.lines();
        let first = lines
            .next()
            .filter(|l| !l.trim().is_empty())
            .ok_or_else(|| ScenarioError::Journal(format!("{}: empty journal", path.display())))?;
        let header: JournalHeader = serde_json::from_str(first)
            .map_err(|e| ScenarioError::Journal(format!("{}: bad header: {e}", path.display())))?;
        let mut cells = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<JournalCell>(line) {
                Ok(cell) => cells.push(cell),
                Err(_) => break, // torn tail: everything after is suspect
            }
        }
        Ok(Journal { header, cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gossip-journal-test-{}-{name}", std::process::id()));
        p
    }

    fn record(n: usize, trial: usize) -> TrialRecord {
        TrialRecord {
            trial,
            seed: 40 + trial as u64,
            n,
            spread_time: Some(1.5 + trial as f64),
            windows: 3,
            events: 17,
            informed: n,
            outcome: gossip_sim::TrialOutcome::Spread,
            trajectory: None,
        }
    }

    fn row(n: usize) -> ScenarioRow {
        ScenarioRow {
            n,
            trials: 2,
            completed: 2,
            mean: 2.0,
            std_dev: 0.5,
            median: Some(2.0),
            q95: Some(2.4),
            max: Some(2.5),
        }
    }

    #[test]
    fn spec_hash_is_stable_and_content_sensitive() {
        let spec = ScenarioSpec::template();
        assert_eq!(spec_hash(&spec), spec_hash(&spec.clone()));
        let mut other = spec.clone();
        other.sweep.seed = Some(43);
        assert_ne!(spec_hash(&spec), spec_hash(&other));
        let mut other = spec.clone();
        other.sweep.sizes.push(999);
        assert_ne!(spec_hash(&spec), spec_hash(&other));
        let mut other = spec.clone();
        other.sweep.vectorized = Some(false); // changes RNG draw order
        assert_ne!(spec_hash(&spec), spec_hash(&other));
    }

    #[test]
    fn spec_hash_ignores_presentation_only_fields() {
        let spec = ScenarioSpec::template();
        let base = spec_hash(&spec);

        let mut p = spec.clone();
        p.description = Some("re-described, same experiment".into());
        assert_eq!(spec_hash(&p), base, "description is presentation-only");

        let mut p = spec.clone();
        p.sweep.threads = Some(8);
        assert_eq!(spec_hash(&p), base, "thread count is bit-invisible");

        let mut p = spec.clone();
        p.sweep.workspace = Some(false);
        assert_eq!(spec_hash(&p), base, "workspace reuse is bit-invisible");

        let mut p = spec.clone();
        p.sweep.cell_parallel = Some(true);
        assert_eq!(spec_hash(&p), base, "cell scheduling is bit-invisible");

        // Spelling defaults out explicitly is the same experiment.
        let mut p = spec.clone();
        p.sweep.trials = Some(p.sweep.trials_or_default());
        p.sweep.seed = Some(p.sweep.seed_or_default());
        p.sweep.max_time = Some(p.sweep.max_time_or_default());
        assert_eq!(
            spec_hash(&p),
            base,
            "explicit defaults hash like omitted ones"
        );
    }

    #[test]
    fn spec_hash_is_format_independent() {
        let spec = ScenarioSpec::template();
        let from_toml = ScenarioSpec::from_toml_str(&spec.to_toml_string()).unwrap();
        let from_json = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(
            spec_hash(&from_toml),
            spec_hash(&from_json),
            "the same spec loaded from TOML and JSON must share one content address"
        );
        assert_eq!(spec_hash(&from_toml), spec_hash(&spec));
    }

    #[test]
    fn journal_round_trips_and_tolerates_torn_tail() {
        let spec = ScenarioSpec::template();
        let header = JournalHeader {
            scenario: spec.name.clone(),
            spec_hash: spec_hash(&spec),
            spec: spec.clone(),
        };
        let path = temp_path("round-trip");
        let mut w = JournalWriter::create(&path, &header).unwrap();
        let cells = vec![
            JournalCell {
                index: 0,
                n: 64,
                row: row(64),
                records: vec![record(64, 0), record(64, 1)],
            },
            JournalCell {
                index: 1,
                n: 128,
                row: row(128),
                records: vec![record(128, 0)],
            },
        ];
        for c in &cells {
            w.append_cell(c).unwrap();
        }
        drop(w);
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.header, header);
        assert_eq!(loaded.cells, cells);
        // The embedded spec survives the trip byte-for-byte in hash terms.
        assert_eq!(spec_hash(&loaded.header.spec), header.spec_hash);

        // Tear the last line mid-record, as a dying process would.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 25;
        std::fs::write(&path, &text[..cut]).unwrap();
        let torn = Journal::load(&path).unwrap();
        assert_eq!(torn.header, header);
        assert_eq!(torn.cells, cells[..1], "only the intact cell survives");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_missing_or_bad_headers() {
        let path = temp_path("bad-header");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            Journal::load(&path),
            Err(ScenarioError::Journal(m)) if m.contains("empty")
        ));
        std::fs::write(&path, "{\"kind\":\"cell\"}\n").unwrap();
        assert!(matches!(
            Journal::load(&path),
            Err(ScenarioError::Journal(m)) if m.contains("bad header")
        ));
        std::fs::remove_file(&path).ok();
    }
}
