//! # gossip-core
//!
//! The primary contribution of *Tight Analysis of Asynchronous Rumor
//! Spreading in Dynamic Networks* (Pourmiri & Mans, PODC 2020) as an
//! executable library:
//!
//! * [`bounds`] — the spread-time stopping rules:
//!   Theorem 1.1 (`T(G,c) = min{t : Σ Φ(G(p))·ρ(p) ≥ C log n}` with
//!   `C = (10c+20)/c₀`, `c₀ = 1/2 − 1/e`), Theorem 1.3
//!   (`T_abs = min{t : Σ ⌈Φ⌉·ρ̄ ≥ 2n}`), their combination Corollary 1.6,
//!   and the Giakkoupis–Sauerwald–Stauffer \[17\] baseline the paper improves
//!   on;
//! * [`tracking`] — runs a simulator and the bound accumulators on the
//!   *same* trajectory, so every experiment can print "measured vs
//!   predicted" per run;
//! * [`predictions`] — the paper's closed-form growth laws (Theorem 1.2
//!   `Ω(nρ/k)`, Theorem 1.5 `Ω(n/ρ)`, Remark 1.4 `O(n²)`,
//!   Theorem 1.7(iii) tails, Observation 4.1 profiles);
//! * [`experiment`] — the machine-readable experiment index mapping each
//!   theorem/figure to the bench binary that regenerates it;
//! * [`report`] — shared text rendering for experiment binaries;
//! * [`profile`] — re-export of the per-step profile types.
//!
//! # Example
//!
//! ```
//! use gossip_core::bounds;
//! use gossip_core::profile::StepProfile;
//!
//! // A dynamic star: Φ = ρ = 1 at every step, so Theorem 1.1 stops after
//! // C·log n steps.
//! let star = StepProfile { phi: 1.0, rho: 1.0, rho_abs: 1.0, connected: true };
//! let result = bounds::theorem_1_1(|_| star, 1024, 1.0, 1_000_000).unwrap();
//! let expected = gossip_stats::tail::theorem_1_1_constant(1.0) * (1024f64).ln();
//! assert_eq!(result.steps, expected.ceil() as u64);
//! ```

//!
//! See the workspace `README.md` (repo root) for the crate map and the
//! window / event-stream engine duality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod experiment;
pub mod journal;
pub mod predictions;
pub mod profile;
pub mod report;
pub mod scenario;
pub mod tracking;
