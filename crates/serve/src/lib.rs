//! # gossip-serve — simulation as a service
//!
//! A long-lived daemon for the dynamic-rumor workspace: clients submit
//! [`ScenarioSpec`]s as line-delimited JSON over TCP and receive the
//! sweep's trial stream back, served from a **content-addressed result
//! store** whenever possible. Every result in this workspace is a pure
//! function of `(spec, seed)` — an invariant the simulation crates
//! test-enforce bit-for-bit — which makes sweeps perfectly cacheable:
//! a repeat submission replays the stored journal and executes **zero
//! trials**, byte-identical to a fresh offline `gossip scenario run`
//! (test-enforced).
//!
//! ## Wire protocol
//!
//! One request per connection:
//!
//! 1. the client sends a single line: the [`ScenarioSpec`] as JSON
//!    (compact or pretty-on-one-line — any rendering of the same
//!    experiment hits the same cache entry, because the store keys on
//!    the *normalized* [`spec_hash`]);
//! 2. the server answers with a **header line**
//!    `{"kind":"header","scenario":…,"spec_hash":"…","cache":…}` whose
//!    `cache` field is one of `"hit"`, `"resume"`, `"miss"`, or
//!    `"join"`;
//! 3. then the **body**: one line per [`gossip_sim::TrialRecord`] in
//!    trial order — byte-identical to what
//!    [`gossip_sim::JsonlSink`] writes offline — terminated by a
//!    `{"kind":"report",…}` footer carrying the full
//!    [`ScenarioReport`] (or a `{"kind":"error",…}` line on failure).
//!
//! The body is identical across every `cache` state; only the header
//! differs. The server closes the connection after the footer.
//!
//! Connections are defended by a [`ServeConfig`]: the request line is
//! read under a timeout and a byte cap, and a silent, trickling, or
//! overlong request gets an in-band `{"kind":"error",…}` line instead
//! of pinning a thread. A [`ShutdownHandle`] stops the daemon
//! gracefully — no new connections, in-flight sweeps run to completion
//! and their journals flush, then [`Server::run`] returns (the CLI
//! wires this to SIGTERM, so a redeploy mid-sweep leaves a resumable
//! journal, never a torn one).
//!
//! ## Store layout and cache semantics
//!
//! The store directory holds one crash-safe journal
//! (`<spec_hash>.journal`, see [`gossip_core::journal`]) per
//! experiment, written through the existing [`gossip_core::scenario::SweepPlan`] journaling
//! path:
//!
//! * **hit** — the journal covers every sweep cell: the response is
//!   replayed entirely from disk, zero trials executed;
//! * **resume** — a partial journal (e.g. the daemon died mid-sweep)
//!   is resumed in place via [`gossip_core::scenario::SweepPlan::resume_from`]; only the
//!   missing cells run;
//! * **miss** — no entry, a foreign entry (hash mismatch), or a
//!   corrupted entry that fails to load: the sweep runs in full and
//!   the store entry is rewritten — torn garbage is never served;
//! * **join** — an identical request is already executing: the new
//!   client attaches to the in-flight execution's record stream
//!   instead of triggering a second run. Concurrent identical
//!   requests therefore perform exactly one execution (test-enforced).
//!
//! ## Warm-state model
//!
//! The daemon keeps two caches alive across requests, both
//! bit-invisible to results (test-enforced in `gossip-core`):
//!
//! * a [`TopologyCache`] of realized sampled topologies keyed by
//!   `(family, n)` — the family spec embeds the build seed — so repeat
//!   G(n,p) sweeps skip CSR realization entirely;
//! * a [`WorkspacePool`] of per-worker scratch arenas
//!   ([`gossip_sim::SimWorkspace`]), so trial buffers stay grown
//!   across requests instead of re-allocating from cold.
//!
//! [`spec_hash`]: gossip_core::journal::spec_hash

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use gossip_core::journal::Journal;
use gossip_core::scenario::{
    ScenarioError, ScenarioPlan, ScenarioReport, ScenarioSpec, TopologyCache,
};
use gossip_sim::{SimError, TrialObserver, TrialRecord, WorkspacePool};
use serde::{Serialize, Value};

/// Connection-handling limits protecting the daemon from misbehaving
/// clients.
///
/// Requests are one line of JSON, so a well-behaved client transmits
/// its whole request within milliseconds. A client that connects and
/// then stays silent, trickles bytes, or streams an unbounded "line"
/// would otherwise pin a connection thread (and its request buffer)
/// forever; these limits convert both failure modes into prompt,
/// in-band `{"kind":"error",…}` responses.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// How long a connection may take to deliver its request line
    /// before the daemon gives up on it (`None` waits forever).
    pub read_timeout: Option<Duration>,
    /// Maximum accepted request-line length in bytes; longer lines are
    /// rejected without buffering the excess.
    pub max_request_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            read_timeout: Some(Duration::from_secs(10)),
            max_request_bytes: 64 * 1024,
        }
    }
}

/// How a request was served, reported in the response header's `cache`
/// field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Replayed entirely from a complete store entry; zero trials ran.
    Hit,
    /// A partial store entry was resumed; only missing cells ran.
    Resume,
    /// No usable store entry; the sweep ran in full.
    Miss,
    /// Attached to an identical request already in flight.
    Join,
}

impl CacheStatus {
    /// The wire spelling used in the header line.
    pub fn name(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Resume => "resume",
            CacheStatus::Miss => "miss",
            CacheStatus::Join => "join",
        }
    }
}

/// The content-addressed result store: one journal file per experiment,
/// named by the normalized [`gossip_core::journal::spec_hash`] of its
/// spec.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

/// What [`ResultStore::classify`] found for a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreState {
    /// A complete, hash-matching entry covering every sweep cell.
    Complete,
    /// A hash-matching entry missing some cells (crash mid-sweep).
    Partial,
    /// No entry, a hash mismatch, or an entry that fails to load.
    Absent,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The journal path content-addressing `hash`.
    pub fn entry_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash}.journal"))
    }

    /// Classifies the store entry for `plan`: complete (replayable with
    /// zero trials), partial (resumable), or absent. A corrupted or
    /// torn entry — unreadable, bad header, or a spec-hash mismatch —
    /// classifies as absent, so the daemon falls back to re-execution
    /// instead of serving garbage.
    pub fn classify(&self, plan: &ScenarioPlan) -> StoreState {
        let path = self.entry_path(plan.spec_hash());
        let journal = match Journal::load(&path) {
            Ok(j) => j,
            Err(_) => return StoreState::Absent,
        };
        if journal.header.spec_hash != plan.spec_hash() {
            return StoreState::Absent;
        }
        let by_index: HashMap<usize, usize> =
            journal.cells.iter().map(|c| (c.index, c.n)).collect();
        let complete = plan
            .sizes()
            .iter()
            .enumerate()
            .all(|(i, &n)| by_index.get(&i) == Some(&n));
        if complete {
            StoreState::Complete
        } else {
            StoreState::Partial
        }
    }
}

/// Append-only response body shared between the executing leader and
/// every joined follower.
#[derive(Debug, Default)]
struct Progress {
    bytes: Vec<u8>,
    done: bool,
}

#[derive(Debug, Default)]
struct InFlight {
    progress: Mutex<Progress>,
    cond: Condvar,
}

impl InFlight {
    fn append(&self, chunk: &[u8]) {
        let mut p = self.progress.lock().expect("in-flight buffer poisoned");
        p.bytes.extend_from_slice(chunk);
        self.cond.notify_all();
    }

    fn finish(&self) {
        let mut p = self.progress.lock().expect("in-flight buffer poisoned");
        p.done = true;
        self.cond.notify_all();
    }

    /// Streams the body to `out` as it grows, returning once the body
    /// is complete and fully written.
    fn stream_to(&self, out: &mut impl Write) -> io::Result<()> {
        let mut sent = 0usize;
        loop {
            let (chunk, done) = {
                let mut p = self.progress.lock().expect("in-flight buffer poisoned");
                while p.bytes.len() == sent && !p.done {
                    p = self.cond.wait(p).expect("in-flight buffer poisoned");
                }
                (p.bytes[sent..].to_vec(), p.done)
            };
            sent += chunk.len();
            out.write_all(&chunk)?;
            if done {
                out.flush()?;
                return Ok(());
            }
        }
    }
}

/// A [`TrialObserver`] serializing records into an [`InFlight`] body,
/// one line per record — the exact bytes [`gossip_sim::JsonlSink`]
/// writes offline.
struct FanoutSink {
    inflight: Arc<InFlight>,
}

impl TrialObserver for FanoutSink {
    fn on_trial(&mut self, record: &TrialRecord) -> Result<(), SimError> {
        let mut line = serde_json::to_string(record);
        line.push('\n');
        self.inflight.append(line.as_bytes());
        Ok(())
    }
}

fn kind_line(kind: &str, fields: Vec<(String, Value)>) -> String {
    let mut map = vec![("kind".to_string(), Value::Str(kind.to_string()))];
    map.extend(fields);
    let mut line = serde_json::to_string(&Value::Map(map));
    line.push('\n');
    line
}

/// The response header line for a request served with `status`.
pub fn header_line(scenario: &str, hash: u64, status: CacheStatus) -> String {
    kind_line(
        "header",
        vec![
            ("scenario".to_string(), Value::Str(scenario.to_string())),
            ("spec_hash".to_string(), Value::Str(hash.to_string())),
            ("cache".to_string(), Value::Str(status.name().to_string())),
        ],
    )
}

fn footer_line(report: &ScenarioReport) -> String {
    kind_line("report", vec![("report".to_string(), report.to_value())])
}

fn error_line(message: &str) -> String {
    kind_line(
        "error",
        vec![("message".to_string(), Value::Str(message.to_string()))],
    )
}

/// Shared daemon state: the result store, the warm-state caches, the
/// in-flight dedup table, and an execution counter.
#[derive(Debug)]
pub struct ServeState {
    store: ResultStore,
    topologies: Arc<TopologyCache>,
    pool: Arc<WorkspacePool>,
    inflight: Mutex<HashMap<u64, Arc<InFlight>>>,
    executions: AtomicUsize,
}

impl ServeState {
    fn new(store: ResultStore) -> Self {
        ServeState {
            store,
            topologies: Arc::new(TopologyCache::new()),
            pool: Arc::new(WorkspacePool::new()),
            inflight: Mutex::new(HashMap::new()),
            executions: AtomicUsize::new(0),
        }
    }

    /// How many sweep executions (cache misses or resumes) the daemon
    /// has performed; cache hits and joins do not count.
    pub fn executions(&self) -> usize {
        self.executions.load(Ordering::SeqCst)
    }

    /// The warm topology cache shared across requests.
    pub fn topologies(&self) -> &TopologyCache {
        &self.topologies
    }

    /// The warm workspace pool shared across requests.
    pub fn workspace_pool(&self) -> &WorkspacePool {
        &self.pool
    }

    /// The result store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Serves one parsed request, writing the full response (header,
    /// body, footer) to `out`.
    ///
    /// # Errors
    ///
    /// Only I/O errors writing to `out`; execution failures are
    /// reported in-band as an `{"kind":"error",…}` body line.
    pub fn serve(self: &Arc<Self>, plan: ScenarioPlan, out: &mut impl Write) -> io::Result<()> {
        let hash = plan.spec_hash();
        let scenario = plan.spec().name.clone();
        let path = self.store.entry_path(hash);

        // One lock decides hit/join/lead, so identical concurrent
        // requests dedupe onto exactly one execution.
        let role = {
            let mut inflight = self.inflight.lock().expect("in-flight table poisoned");
            if let Some(entry) = inflight.get(&hash) {
                Role::Join(entry.clone())
            } else {
                match self.store.classify(&plan) {
                    StoreState::Complete => Role::Hit,
                    state => {
                        let entry = Arc::new(InFlight::default());
                        inflight.insert(hash, entry.clone());
                        let status = match state {
                            StoreState::Partial => CacheStatus::Resume,
                            _ => CacheStatus::Miss,
                        };
                        Role::Lead(entry, status)
                    }
                }
            }
        };

        match role {
            Role::Hit => {
                out.write_all(header_line(&scenario, hash, CacheStatus::Hit).as_bytes())?;
                // Replay every journaled cell straight onto the socket:
                // zero trials execute, and the journal-replay invariant
                // makes the body bit-identical to a live run.
                let replay = Arc::new(InFlight::default());
                let mut sink = FanoutSink {
                    inflight: replay.clone(),
                };
                match plan.execution().resume_from(&path).run_with(&mut sink) {
                    Ok(report) => replay.append(footer_line(&report).as_bytes()),
                    Err(e) => replay.append(error_line(&e.to_string()).as_bytes()),
                }
                replay.finish();
                replay.stream_to(out)
            }
            Role::Join(entry) => {
                out.write_all(header_line(&scenario, hash, CacheStatus::Join).as_bytes())?;
                entry.stream_to(out)
            }
            Role::Lead(entry, status) => {
                out.write_all(header_line(&scenario, hash, status).as_bytes())?;
                self.executions.fetch_add(1, Ordering::SeqCst);
                let exec_entry = entry.clone();
                let state = self.clone();
                let resume = status == CacheStatus::Resume;
                let worker = std::thread::spawn(move || {
                    let mut sink = FanoutSink {
                        inflight: exec_entry.clone(),
                    };
                    let mut sweep = plan
                        .execution()
                        .journal_to(&path)
                        .topologies(state.topologies.clone())
                        .workspace_pool(state.pool.clone());
                    if resume {
                        // In-place resume: replay the intact cells,
                        // execute the rest, re-journal the union.
                        sweep = sweep.resume_from(&path);
                    }
                    match sweep.run_with(&mut sink) {
                        Ok(report) => exec_entry.append(footer_line(&report).as_bytes()),
                        Err(e) => exec_entry.append(error_line(&e.to_string()).as_bytes()),
                    }
                    // Unregister before marking done so late arrivals
                    // re-classify against the now-complete store entry.
                    state
                        .inflight
                        .lock()
                        .expect("in-flight table poisoned")
                        .remove(&hash);
                    exec_entry.finish();
                });
                let streamed = entry.stream_to(out);
                let _ = worker.join();
                streamed
            }
        }
    }
}

enum Role {
    Hit,
    Join(Arc<InFlight>),
    Lead(Arc<InFlight>, CacheStatus),
}

/// Shutdown coordination between the accept loop, the connection
/// threads, and whoever holds a [`ShutdownHandle`].
#[derive(Debug, Default)]
struct Lifecycle {
    stop: AtomicBool,
    active: Mutex<usize>,
    idle: Condvar,
}

impl Lifecycle {
    fn connection_started(&self) {
        *self.active.lock().expect("lifecycle poisoned") += 1;
    }

    fn connection_finished(&self) {
        let mut active = self.active.lock().expect("lifecycle poisoned");
        *active -= 1;
        self.idle.notify_all();
    }

    /// Blocks until every in-flight connection thread has finished —
    /// which, because sweeps journal as they run, also means every
    /// result journal is flushed.
    fn drain(&self) {
        let mut active = self.active.lock().expect("lifecycle poisoned");
        while *active > 0 {
            active = self.idle.wait(active).expect("lifecycle poisoned");
        }
    }
}

/// Asks a running [`Server`] to shut down gracefully: the accept loop
/// stops taking new connections, in-flight requests run to completion
/// (journals flushed, responses finished), then [`Server::run`]
/// returns.
///
/// Cloneable and sendable — the CLI hands one to its signal watcher.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    lifecycle: Arc<Lifecycle>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Triggers the shutdown. Idempotent; returns immediately (the
    /// accept loop observes the flag on its next wakeup — a self-
    /// connection guarantees that wakeup even on an idle listener).
    pub fn shutdown(&self) {
        self.lifecycle.stop.store(true, Ordering::SeqCst);
        // Unblock a listener parked in accept(); the resulting
        // connection is discarded by the stop check.
        drop(TcpStream::connect(self.addr));
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.lifecycle.stop.load(Ordering::SeqCst)
    }
}

/// The TCP daemon: accepts connections and serves one request per
/// connection on its own thread, under the read limits of a
/// [`ServeConfig`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    config: ServeConfig,
    lifecycle: Arc<Lifecycle>,
}

impl Server {
    /// Binds `addr` and opens (creating if needed) the result store at
    /// `store_dir`, with the default [`ServeConfig`].
    ///
    /// # Errors
    ///
    /// Bind or store-creation failures.
    pub fn bind(addr: impl ToSocketAddrs, store_dir: impl Into<PathBuf>) -> io::Result<Self> {
        Server::bind_with(addr, store_dir, ServeConfig::default())
    }

    /// As [`Server::bind`], with explicit connection limits.
    ///
    /// # Errors
    ///
    /// Bind or store-creation failures.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        store_dir: impl Into<PathBuf>,
        config: ServeConfig,
    ) -> io::Result<Self> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(ServeState::new(ResultStore::open(store_dir)?)),
            config,
            lifecycle: Arc::new(Lifecycle::default()),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared daemon state (store, caches, counters).
    pub fn state(&self) -> Arc<ServeState> {
        self.state.clone()
    }

    /// A handle that can later stop this server gracefully — take it
    /// before calling [`Server::run`] (the CLI wires it to SIGTERM).
    ///
    /// # Errors
    ///
    /// Propagates the socket address query failure.
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            lifecycle: self.lifecycle.clone(),
            addr: self.local_addr()?,
        })
    }

    /// Accepts and serves connections until a [`ShutdownHandle`] fires
    /// (or forever without one). Per-connection failures are contained;
    /// the accept loop keeps running.
    ///
    /// On shutdown the loop stops accepting, then blocks until every
    /// in-flight request has finished — sweeps run to completion and
    /// their journals are flushed before this returns, so a restart
    /// replays or resumes them instead of re-running from scratch.
    ///
    /// # Errors
    ///
    /// Only fatal accept-loop failures.
    pub fn run(self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if self.lifecycle.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let state = self.state.clone();
            let config = self.config.clone();
            let lifecycle = self.lifecycle.clone();
            lifecycle.connection_started();
            std::thread::spawn(move || {
                let _ = handle_connection(&state, stream, &config);
                lifecycle.connection_finished();
            });
        }
        self.lifecycle.drain();
        Ok(())
    }

    /// Spawns the accept loop on a background thread and returns a
    /// handle exposing the bound address, shared state, and graceful
    /// shutdown — the embedded-daemon form used by tests and benches.
    ///
    /// # Errors
    ///
    /// Propagates the socket address query failure.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = self.state.clone();
        let shutdown = self.shutdown_handle()?;
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            state,
            shutdown,
            thread,
        })
    }
}

/// A handle to a daemon spawned in-process via [`Server::spawn`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    shutdown: ShutdownHandle,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared daemon state (store, caches, counters).
    pub fn state(&self) -> &ServeState {
        &self.state
    }

    /// The graceful-shutdown handle for this daemon.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Requests a graceful shutdown and blocks until the accept loop
    /// has drained every in-flight request and returned.
    ///
    /// # Errors
    ///
    /// The accept loop's exit status.
    pub fn shutdown(self) -> io::Result<()> {
        self.shutdown.shutdown();
        self.thread
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("serve accept loop panicked")))
    }
}

/// Reads the request line under `config`'s limits. The inner `Err` is a
/// client-facing message (timeout, oversize, empty, non-UTF-8) to be
/// reported in band; the outer `Err` is a transport failure.
fn read_request_line(
    stream: &TcpStream,
    config: &ServeConfig,
) -> io::Result<Result<String, String>> {
    stream.set_read_timeout(config.read_timeout)?;
    let limit = config.max_request_bytes as u64;
    let mut reader = BufReader::new(stream.try_clone()?).take(limit + 1);
    let mut buf = Vec::new();
    match reader.read_until(b'\n', &mut buf) {
        Ok(_) if buf.len() as u64 > limit => {
            // Discard the rest of the overlong line (bounded) before
            // answering: closing a socket with unread bytes queued
            // resets the connection and can destroy the error response
            // before the client reads it.
            drain_line(&mut reader.into_inner());
            Ok(Err(format!(
                "request line exceeds {} bytes",
                config.max_request_bytes
            )))
        }
        Ok(0) => Ok(Err("empty request".to_string())),
        Ok(_) => match String::from_utf8(buf) {
            Ok(line) => Ok(Ok(line)),
            Err(_) => Ok(Err("request line is not UTF-8".to_string())),
        },
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Ok(Err(match config.read_timeout {
                Some(t) => format!("request timed out after {:.1}s", t.as_secs_f64()),
                None => "request timed out".to_string(),
            }))
        }
        Err(e) => Err(e),
    }
}

/// Consumes buffered input up to the end of the current line, a hard
/// 1 MiB cap, EOF, or a read error (the armed read timeout bounds each
/// read) — enough to keep an in-band rejection deliverable without
/// buffering an adversarial request.
fn drain_line(reader: &mut BufReader<TcpStream>) {
    const DRAIN_CAP: usize = 1 << 20;
    let mut drained = 0usize;
    loop {
        let available = match reader.fill_buf() {
            Ok([]) | Err(_) => return,
            Ok(b) => b,
        };
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            reader.consume(pos + 1);
            return;
        }
        let n = available.len();
        reader.consume(n);
        drained += n;
        if drained > DRAIN_CAP {
            return;
        }
    }
}

fn handle_connection(
    state: &Arc<ServeState>,
    stream: TcpStream,
    config: &ServeConfig,
) -> io::Result<()> {
    let line = read_request_line(&stream, config)?;
    let mut out = BufWriter::new(stream);
    let line = match line {
        Ok(line) => line,
        Err(message) => {
            out.write_all(error_line(&message).as_bytes())?;
            return out.flush();
        }
    };
    let spec = match ScenarioSpec::from_json_str(&line) {
        Ok(spec) => spec,
        Err(e) => {
            out.write_all(error_line(&format!("bad request: {e}")).as_bytes())?;
            return out.flush();
        }
    };
    let plan = match ScenarioPlan::new(spec) {
        Ok(plan) => plan,
        Err(e) => {
            out.write_all(error_line(&format!("invalid spec: {e}")).as_bytes())?;
            return out.flush();
        }
    };
    state.serve(plan, &mut out)
}

/// Submits `spec` to a daemon at `addr` and returns the raw response
/// bytes (header line, record lines, footer line).
///
/// # Errors
///
/// Connection or I/O failures; in-band daemon errors are returned as
/// part of the response body.
pub fn submit(addr: impl ToSocketAddrs, spec: &ScenarioSpec) -> io::Result<Vec<u8>> {
    let mut line = serde_json::to_string(spec);
    line.push('\n');
    submit_raw(addr, &line)
}

/// Submits a pre-rendered single-line JSON spec (must end with `\n`)
/// and returns the raw response bytes.
///
/// # Errors
///
/// Connection or I/O failures.
pub fn submit_raw(addr: impl ToSocketAddrs, request_line: &str) -> io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request_line.as_bytes())?;
    stream.flush()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    Ok(response)
}

/// Splits a response into its header line (with trailing newline) and
/// the body (record lines + footer) — the body is byte-identical across
/// cache states and across clients of one in-flight execution.
pub fn split_response(response: &[u8]) -> (&[u8], &[u8]) {
    match response.iter().position(|&b| b == b'\n') {
        Some(i) => response.split_at(i + 1),
        None => (response, &[]),
    }
}

/// Parses a [`ScenarioError`] free helper: builds a plan straight from
/// a spec, the entry point an embedding caller uses before
/// [`ServeState::serve`].
///
/// # Errors
///
/// Any spec validation or protocol construction error.
pub fn plan_for(spec: ScenarioSpec) -> Result<ScenarioPlan, ScenarioError> {
    ScenarioPlan::new(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_core::scenario::SweepPlan;
    use gossip_sim::JsonlSink;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gossip-serve-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn small_spec(name: &str) -> ScenarioSpec {
        let toml = format!(
            r#"
name = "{name}"

[family]
kind = "er"
p = 0.3
backend = "sampled"

[protocol]
kind = "async"

[sweep]
sizes = [24, 48]
trials = 6
seed = 11
max_time = 1e4
"#
        );
        ScenarioSpec::from_toml_str(&toml).unwrap()
    }

    /// The offline reference body: JsonlSink bytes + footer, exactly
    /// what the daemon must produce in every cache state.
    fn offline_body(spec: &ScenarioSpec) -> Vec<u8> {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "gossip-serve-offline-{}-{}.jsonl",
            std::process::id(),
            spec.name
        ));
        let mut sink = JsonlSink::create(&path).unwrap();
        let report = SweepPlan::new(spec).unwrap().run_with(&mut sink).unwrap();
        drop(sink);
        let mut body = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        body.extend_from_slice(footer_line(&report).as_bytes());
        body
    }

    #[test]
    fn repeat_submission_hits_the_store_with_zero_executions() {
        let spec = small_spec("serve-repeat");
        let handle = Server::bind("127.0.0.1:0", temp_dir("repeat"))
            .unwrap()
            .spawn()
            .unwrap();

        let first = submit(handle.addr(), &spec).unwrap();
        assert_eq!(handle.state().executions(), 1);
        let (h1, b1) = split_response(&first);
        assert!(
            std::str::from_utf8(h1)
                .unwrap()
                .contains("\"cache\":\"miss\""),
            "first response should be a miss: {}",
            String::from_utf8_lossy(h1)
        );

        let second = submit(handle.addr(), &spec).unwrap();
        assert_eq!(
            handle.state().executions(),
            1,
            "a repeat submission must execute zero trials"
        );
        let (h2, b2) = split_response(&second);
        assert!(
            std::str::from_utf8(h2)
                .unwrap()
                .contains("\"cache\":\"hit\""),
            "second response should be a store hit: {}",
            String::from_utf8_lossy(h2)
        );
        assert_eq!(b1, b2, "hit body must be byte-identical to the live body");
        assert_eq!(
            b1,
            offline_body(&spec),
            "served body must match offline run"
        );
    }

    #[test]
    fn equivalent_specs_share_one_store_entry() {
        let spec = small_spec("serve-equivalent");
        let handle = Server::bind("127.0.0.1:0", temp_dir("equivalent"))
            .unwrap()
            .spawn()
            .unwrap();
        let first = submit(handle.addr(), &spec).unwrap();

        // Same experiment, different presentation: must hit.
        let mut respelled = spec.clone();
        respelled.description = Some("same experiment, new description".into());
        respelled.sweep.threads = Some(2);
        let second = submit(handle.addr(), &respelled).unwrap();
        assert_eq!(handle.state().executions(), 1);
        let (h2, b2) = split_response(&second);
        assert!(std::str::from_utf8(h2)
            .unwrap()
            .contains("\"cache\":\"hit\""));
        assert_eq!(split_response(&first).1, b2);
    }

    #[test]
    fn concurrent_identical_requests_execute_once() {
        let spec = small_spec("serve-dedup");
        let handle = Server::bind("127.0.0.1:0", temp_dir("dedup"))
            .unwrap()
            .spawn()
            .unwrap();
        let addr = handle.addr();
        let clients = 6;
        let responses: Vec<Vec<u8>> = std::thread::scope(|scope| {
            let spec = &spec;
            let handles: Vec<_> = (0..clients)
                .map(|_| scope.spawn(move || submit(addr, spec).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            handle.state().executions(),
            1,
            "identical concurrent requests must dedupe onto one execution"
        );
        let reference = split_response(&responses[0]).1.to_vec();
        assert_eq!(reference, offline_body(&spec));
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(
                split_response(r).1,
                &reference[..],
                "client {i} received a divergent stream"
            );
        }
    }

    #[test]
    fn corrupted_store_entry_falls_back_to_reexecution() {
        let spec = small_spec("serve-corrupt");
        let store = temp_dir("corrupt");
        let handle = Server::bind("127.0.0.1:0", store.clone())
            .unwrap()
            .spawn()
            .unwrap();
        let first = submit(handle.addr(), &spec).unwrap();
        assert_eq!(handle.state().executions(), 1);

        // Corrupt the entry's header in place: the stored hash no
        // longer matches, so the daemon must re-execute, not replay.
        let plan = ScenarioPlan::new(spec.clone()).unwrap();
        let entry = handle.state().store().entry_path(plan.spec_hash());
        let text = std::fs::read_to_string(&entry).unwrap();
        std::fs::write(&entry, text.replacen("\"spec_hash\"", "\"spec_hsah\"", 1)).unwrap();
        assert_eq!(handle.state().store().classify(&plan), StoreState::Absent);

        let second = submit(handle.addr(), &spec).unwrap();
        assert_eq!(
            handle.state().executions(),
            2,
            "a corrupted entry must trigger re-execution"
        );
        assert_eq!(split_response(&first).1, split_response(&second).1);

        // The rewrite repaired the store: next submission is a hit.
        let third = submit(handle.addr(), &spec).unwrap();
        assert_eq!(handle.state().executions(), 2);
        assert!(std::str::from_utf8(split_response(&third).0)
            .unwrap()
            .contains("\"cache\":\"hit\""));
    }

    #[test]
    fn torn_store_entry_resumes_instead_of_restarting() {
        let spec = small_spec("serve-torn");
        let store = temp_dir("torn");
        let handle = Server::bind("127.0.0.1:0", store).unwrap().spawn().unwrap();
        let first = submit(handle.addr(), &spec).unwrap();

        // Tear the last cell off, as a crash mid-append would.
        let plan = ScenarioPlan::new(spec.clone()).unwrap();
        let entry = handle.state().store().entry_path(plan.spec_hash());
        let text = std::fs::read_to_string(&entry).unwrap();
        let kept: Vec<&str> = text.lines().collect();
        std::fs::write(&entry, format!("{}\n", kept[..kept.len() - 1].join("\n"))).unwrap();
        assert_eq!(handle.state().store().classify(&plan), StoreState::Partial);

        let second = submit(handle.addr(), &spec).unwrap();
        let (h2, b2) = split_response(&second);
        assert!(std::str::from_utf8(h2)
            .unwrap()
            .contains("\"cache\":\"resume\""));
        assert_eq!(handle.state().executions(), 2);
        assert_eq!(
            split_response(&first).1,
            b2,
            "resumed body must be bit-identical to the original"
        );
    }

    #[test]
    fn oversized_request_lines_are_rejected_in_band() {
        let server = Server::bind_with(
            "127.0.0.1:0",
            temp_dir("oversize"),
            ServeConfig {
                max_request_bytes: 2048,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let handle = server.spawn().unwrap();
        let huge = format!("{}\n", "x".repeat(16 * 1024));
        let response = submit_raw(handle.addr(), &huge).unwrap();
        let text = String::from_utf8(response).unwrap();
        assert!(
            text.contains("\"error\"") && text.contains("exceeds 2048 bytes"),
            "{text}"
        );
        // The daemon survives the abuse: a well-formed request still
        // works on the next connection.
        let ok = submit(handle.addr(), &small_spec("serve-after-oversize")).unwrap();
        assert!(String::from_utf8_lossy(&ok).contains("\"kind\":\"report\""));
    }

    #[test]
    fn silent_clients_time_out_in_band() {
        let server = Server::bind_with(
            "127.0.0.1:0",
            temp_dir("silent"),
            ServeConfig {
                read_timeout: Some(Duration::from_millis(100)),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let handle = server.spawn().unwrap();
        // Connect and send nothing: the server must answer (with an
        // in-band error) rather than hold the thread forever.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        let text = String::from_utf8(response).unwrap();
        assert!(
            text.contains("\"error\"") && text.contains("timed out"),
            "{text}"
        );
    }

    #[test]
    fn graceful_shutdown_finishes_in_flight_requests() {
        let spec = small_spec("serve-graceful");
        let store = temp_dir("graceful");
        let handle = Server::bind("127.0.0.1:0", store.clone())
            .unwrap()
            .spawn()
            .unwrap();
        let addr = handle.addr();
        let shutdown = handle.shutdown_handle();

        // Launch a request, then immediately request shutdown while it
        // is (plausibly) still executing. The response must still be
        // complete and the journal fully flushed.
        let client = std::thread::spawn(move || submit(addr, &spec).unwrap());
        // Wait until the request has been accepted and its execution
        // started, so the shutdown provably races a live sweep.
        while handle.state().executions() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        shutdown.shutdown();
        let response = client.join().unwrap();
        handle.shutdown().unwrap();

        let text = String::from_utf8_lossy(&response);
        assert!(
            text.contains("\"kind\":\"report\""),
            "in-flight request must finish through shutdown: {text}"
        );
        // Post-shutdown the daemon is gone: new connections are refused
        // or reset, never silently accepted.
        assert!(
            TcpStream::connect(addr).is_err()
                || submit(addr, &small_spec("serve-graceful")).is_err(),
            "daemon accepted work after graceful shutdown"
        );
        // The flushed journal makes the next daemon generation replay
        // the sweep as a pure cache hit.
        let spec = small_spec("serve-graceful");
        let restarted = Server::bind("127.0.0.1:0", store).unwrap().spawn().unwrap();
        let replay = submit(restarted.addr(), &spec).unwrap();
        assert!(
            String::from_utf8_lossy(split_response(&replay).0).contains("\"cache\":\"hit\""),
            "restart must serve the drained journal from cache"
        );
        assert_eq!(restarted.state().executions(), 0);
    }

    #[test]
    fn malformed_requests_get_in_band_errors() {
        let handle = Server::bind("127.0.0.1:0", temp_dir("bad"))
            .unwrap()
            .spawn()
            .unwrap();
        let response = submit_raw(handle.addr(), "{not json}\n").unwrap();
        let text = String::from_utf8(response).unwrap();
        assert!(
            text.contains("\"error\"") && text.contains("bad request"),
            "{text}"
        );
        // A parseable spec that fails validation also errors in band.
        let mut spec = small_spec("serve-invalid");
        spec.sweep.sizes.clear();
        let response = submit(handle.addr(), &spec).unwrap();
        let text = String::from_utf8(response).unwrap();
        assert!(
            text.contains("\"error\"") && text.contains("invalid spec"),
            "{text}"
        );
    }
}
