//! Property-based tests for the graph substrate.
//!
//! The headline property is the paper's Inequality (3): for every connected
//! graph `G` and every nonempty proper subset `S`,
//! `λ(S) ≥ Φ(G) · ρ(G) · min(|S|, |S̄|)` where `λ` is the push–pull cut rate
//! of Equation (1). Theorem 1.1 is built entirely on this inequality, so it
//! is checked here on thousands of random graphs and cuts.

use gossip_graph::{
    conductance, connectivity, cut, diligence, generators, Graph, GraphBuilder, NodeSet,
};
use gossip_stats::SimRng;
use proptest::prelude::*;

/// Builds an Erdős–Rényi graph from a derived seed, retrying towards
/// connectivity (falls back to whatever the last attempt produced).
fn er_graph(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut g = generators::erdos_renyi(n, p, &mut rng).unwrap();
    for _ in 0..20 {
        if connectivity::is_connected(&g) {
            break;
        }
        g = generators::erdos_renyi(n, p, &mut rng).unwrap();
    }
    g
}

fn subset_from_mask(n: usize, mask: u64) -> NodeSet {
    let mut s = NodeSet::new(n);
    for v in 0..n {
        if mask >> v & 1 == 1 {
            s.insert(v as u32);
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Degree sum equals twice the edge count for arbitrary edge lists.
    #[test]
    fn handshake_lemma(n in 2usize..20, edges in prop::collection::vec((0u32..20, 0u32..20), 0..60)) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            if u != v {
                b.add_edge(u, v).unwrap();
            }
        }
        let g = b.build();
        let degree_sum: usize = (0..n).map(|v| g.degree(v as u32)).sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
        prop_assert_eq!(degree_sum, g.volume());
    }

    /// Every neighbor relation is symmetric and loop-free.
    #[test]
    fn adjacency_symmetric(seed in 0u64..1000, n in 4usize..12, p in 0.1f64..0.9) {
        let g = er_graph(n, p, seed);
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                prop_assert_ne!(u, v);
                prop_assert!(g.neighbors(v).contains(&u));
            }
        }
    }

    /// Connected graphs have Φ ∈ (0, 1] and ρ ∈ [1/(n−1), 1];
    /// disconnected graphs have Φ = 0 and ρ = 0.
    #[test]
    fn measure_ranges(seed in 0u64..1000, n in 4usize..10, p in 0.15f64..0.95) {
        let mut rng = SimRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, &mut rng).unwrap();
        if g.is_empty_graph() {
            return Ok(());
        }
        let phi = conductance::exact_conductance(&g).unwrap();
        let rho = diligence::exact_diligence(&g).unwrap();
        if connectivity::is_connected(&g) {
            prop_assert!(phi > 0.0 && phi <= 1.0 + 1e-12, "phi = {phi}");
            prop_assert!(rho >= diligence::diligence_floor(n) - 1e-12, "rho = {rho}");
            prop_assert!(rho <= 1.0 + 1e-12, "rho = {rho}");
        } else {
            prop_assert_eq!(phi, 0.0);
            prop_assert_eq!(rho, 0.0);
        }
    }

    /// Absolute diligence is a lower bound regime: ρ̄ ≥ 1/max_degree and
    /// ρ̄ ≥ 1/(n−1) for nonempty graphs.
    #[test]
    fn absolute_diligence_bounds(seed in 0u64..1000, n in 3usize..16, p in 0.1f64..0.9) {
        let mut rng = SimRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, &mut rng).unwrap();
        let rho_abs = diligence::absolute_diligence(&g);
        if g.is_empty_graph() {
            prop_assert_eq!(rho_abs, 0.0);
        } else {
            prop_assert!(rho_abs >= 1.0 / g.max_degree() as f64 - 1e-12);
            prop_assert!(rho_abs >= 1.0 / (n - 1) as f64 - 1e-12);
            prop_assert!(rho_abs <= 1.0 + 1e-12);
        }
    }

    /// Paper Inequality (3): λ(S) ≥ Φ(G)·ρ(G)·min(|S|, |S̄|) for every cut of
    /// every connected graph — the engine of Theorem 1.1.
    #[test]
    fn inequality_3_holds(seed in 0u64..500, n in 4usize..9, p in 0.3f64..0.9, mask in 1u64..255) {
        let g = er_graph(n, p, seed);
        prop_assume!(connectivity::is_connected(&g));
        let mask = mask & ((1 << n) - 1);
        prop_assume!(mask != 0 && mask != (1 << n) - 1);
        let s = subset_from_mask(n, mask);
        let lambda = cut::pushpull_cut_rate(&g, &s);
        let phi = conductance::exact_conductance(&g).unwrap();
        let rho = diligence::exact_diligence(&g).unwrap();
        let min_side = s.len().min(n - s.len()) as f64;
        prop_assert!(
            lambda + 1e-9 >= phi * rho * min_side,
            "λ = {lambda} < Φρ·min = {}", phi * rho * min_side
        );
    }

    /// The push–pull rate dominates the max-rate (absolute) bound, which
    /// dominates the cut edge count divided by max degree.
    #[test]
    fn rate_orderings(seed in 0u64..500, n in 4usize..10, p in 0.2f64..0.9, mask in 1u64..511) {
        let mut rng = SimRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, &mut rng).unwrap();
        let mask = mask & ((1 << n) - 1);
        prop_assume!(mask != 0 && mask != (1 << n) - 1);
        let s = subset_from_mask(n, mask);
        let push_pull = cut::pushpull_cut_rate(&g, &s);
        let absolute = cut::absolute_cut_rate(&g, &s);
        let cut_count = cut::cut_edge_count(&g, &s) as f64;
        prop_assert!(push_pull + 1e-12 >= absolute);
        prop_assert!(absolute + 1e-12 >= cut_count * 0.5 * (1.0 / n as f64));
        if g.max_degree() > 0 {
            prop_assert!(absolute + 1e-12 >= cut_count / g.max_degree() as f64);
        }
    }

    /// Cut measures are symmetric under complementation.
    #[test]
    fn cut_complement_symmetry(seed in 0u64..500, n in 3usize..10, p in 0.2f64..0.9, mask in 1u64..511) {
        let mut rng = SimRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, &mut rng).unwrap();
        let mask = mask & ((1 << n) - 1);
        prop_assume!(mask != 0 && mask != (1 << n) - 1);
        let s = subset_from_mask(n, mask);
        let comp = subset_from_mask(n, !mask & ((1 << n) - 1));
        prop_assert_eq!(cut::cut_edge_count(&g, &s), cut::cut_edge_count(&g, &comp));
        let r1 = cut::pushpull_cut_rate(&g, &s);
        let r2 = cut::pushpull_cut_rate(&g, &comp);
        prop_assert!((r1 - r2).abs() < 1e-9);
    }

    /// NodeSet insert/remove/iterate behaves like a reference BTreeSet.
    #[test]
    fn nodeset_matches_reference(ops in prop::collection::vec((0u32..64, prop::bool::ANY), 0..200)) {
        let mut ns = NodeSet::new(64);
        let mut reference = std::collections::BTreeSet::new();
        for (v, insert) in ops {
            if insert {
                prop_assert_eq!(ns.insert(v), reference.insert(v));
            } else {
                prop_assert_eq!(ns.remove(v), reference.remove(&v));
            }
        }
        prop_assert_eq!(ns.len(), reference.len());
        let collected: Vec<u32> = ns.iter().collect();
        let expected: Vec<u32> = reference.into_iter().collect();
        prop_assert_eq!(collected, expected);
    }

    /// Random regular graphs from any seed are simple and regular.
    #[test]
    fn random_regular_always_valid(seed in 0u64..300, n in 6usize..24, d in 2usize..5) {
        prop_assume!((n * d) % 2 == 0 && d < n);
        let mut rng = SimRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, &mut rng).unwrap();
        prop_assert!(g.is_regular());
        prop_assert_eq!(g.degree(0), d);
        prop_assert_eq!(g.m(), n * d / 2);
    }

    /// The same, deep into the swap-repair regime (whole-pairing rejection
    /// is hopeless above d ≈ 6) and across the complement switch at
    /// d > n/2; simplicity is re-checked from the adjacency lists.
    #[test]
    fn random_regular_high_degree_simple(seed in 0u64..150, n in 16usize..48, d in 6usize..14) {
        prop_assume!((n * d) % 2 == 0 && d < n);
        let mut rng = SimRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, &mut rng).unwrap();
        prop_assert!(g.is_regular());
        prop_assert_eq!(g.m(), n * d / 2);
        for u in 0..n as u32 {
            let nbrs = g.neighbors(u);
            let mut sorted: Vec<u32> = nbrs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), nbrs.len(), "duplicate edge at {}", u);
            prop_assert!(!nbrs.contains(&u), "self-loop at {}", u);
        }
    }

    /// Paper Section 1.1: every connected graph satisfies
    /// `1/(n-1) <= rho(G) <= 1`, and the same floor holds for the absolute
    /// diligence.
    #[test]
    fn diligence_bounds_of_connected_graphs(seed in 0u64..400, n in 3usize..12, p in 0.2f64..0.95) {
        let g = er_graph(n, p, seed);
        prop_assume!(connectivity::is_connected(&g));
        let rho = diligence::exact_diligence(&g).unwrap();
        let floor = 1.0 / (n as f64 - 1.0);
        prop_assert!(rho >= floor - 1e-12, "rho {} below 1/(n-1) = {}", rho, floor);
        prop_assert!(rho <= 1.0 + 1e-12, "rho {} above 1", rho);
        let rho_abs = diligence::absolute_diligence(&g);
        prop_assert!(rho_abs >= floor - 1e-12);
        prop_assert!(rho_abs <= 1.0 + 1e-12);
    }

    /// Sweep conductance never beats the exact minimum.
    #[test]
    fn sweep_never_below_exact(seed in 0u64..300, n in 4usize..9, p in 0.3f64..0.9) {
        let g = er_graph(n, p, seed);
        prop_assume!(!g.is_empty_graph());
        prop_assume!(connectivity::is_connected(&g));
        let exact = conductance::exact_conductance(&g).unwrap();
        let ordering: Vec<u32> = (0..n as u32).collect();
        let sweep = conductance::sweep_conductance(&g, &ordering).unwrap();
        prop_assert!(sweep + 1e-12 >= exact);
    }
}
