use crate::NodeId;
use serde::{Deserialize, Serialize};

/// A fixed-universe bitset over node ids `0..n`.
///
/// Represents informed sets and cut sides with O(1) membership tests,
/// O(1) amortized insertion, and word-at-a-time iteration. The simulators
/// query membership on every contact, so this type is deliberately minimal.
///
/// # Example
///
/// ```
/// use gossip_graph::NodeSet;
///
/// let mut s = NodeSet::new(10);
/// s.insert(3);
/// s.insert(7);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        NodeSet {
            words: vec![0; n.div_ceil(64)],
            universe: n,
            len: 0,
        }
    }

    /// Creates a set containing every node of the universe `0..n`.
    pub fn full(n: usize) -> Self {
        let mut s = NodeSet::new(n);
        for v in 0..n {
            s.insert(v as NodeId);
        }
        s
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the set contains every node of its universe.
    pub fn is_full(&self) -> bool {
        self.len == self.universe
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    pub fn contains(&self, v: NodeId) -> bool {
        let v = v as usize;
        assert!(
            v < self.universe,
            "node {v} outside universe {}",
            self.universe
        );
        self.words[v / 64] >> (v % 64) & 1 == 1
    }

    /// Inserts `v`; returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    pub fn insert(&mut self, v: NodeId) -> bool {
        let vu = v as usize;
        assert!(
            vu < self.universe,
            "node {vu} outside universe {}",
            self.universe
        );
        let mask = 1u64 << (vu % 64);
        let word = &mut self.words[vu / 64];
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `v`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    pub fn remove(&mut self, v: NodeId) -> bool {
        let vu = v as usize;
        assert!(
            vu < self.universe,
            "node {vu} outside universe {}",
            self.universe
        );
        let mask = 1u64 << (vu % 64);
        let word = &mut self.words[vu / 64];
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Iterates members in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates the complement (non-members) in increasing order.
    ///
    /// Word-at-a-time: each 64-node block costs one inverted load (plus one
    /// trailing-zeros per produced member), so scanning the uninformed side
    /// of a mostly-informed set touches `n / 64` words, not `n` bits.
    pub fn iter_complement(&self) -> ComplementIter<'_> {
        ComplementIter {
            set: self,
            word_idx: 0,
            current: self.complement_word(0),
        }
    }

    /// The raw bit words backing the set, least-significant-bit first:
    /// node `v` is a member iff `words()[v / 64] >> (v % 64) & 1 == 1`.
    ///
    /// This is the hook for word-level membership probes in hot loops
    /// (e.g. scanning an adjacency row for uninformed endpoints without a
    /// bounds-asserting [`NodeSet::contains`] call per neighbor). Bits at
    /// positions `>= universe()` in the last word are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The complement of word `idx`, with past-the-universe bits masked off.
    fn complement_word(&self, idx: usize) -> u64 {
        let Some(&w) = self.words.get(idx) else {
            return 0;
        };
        let mut inv = !w;
        if (idx + 1) * 64 > self.universe {
            let valid = self.universe - idx * 64;
            inv &= if valid == 64 { !0 } else { (1u64 << valid) - 1 };
        }
        inv
    }

    /// Collects members into a vector.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Builds a set whose universe is one past the largest element (or 0).
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let items: Vec<NodeId> = iter.into_iter().collect();
        let universe = items.iter().map(|&v| v as usize + 1).max().unwrap_or(0);
        let mut s = NodeSet::new(universe);
        for v in items {
            s.insert(v);
        }
        s
    }
}

/// Iterator over members of a [`NodeSet`], produced by [`NodeSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.word_idx * 64 + bit) as NodeId);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

/// Iterator over non-members of a [`NodeSet`], produced by
/// [`NodeSet::iter_complement`].
#[derive(Debug, Clone)]
pub struct ComplementIter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for ComplementIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.word_idx * 64 + bit) as NodeId);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.complement_word(self.word_idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_membership() {
        let mut s = NodeSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(0));
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(1));
    }

    #[test]
    fn remove_and_clear() {
        let mut s = NodeSet::new(10);
        s.insert(5);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
        s.insert(1);
        s.insert(2);
        s.clear();
        assert_eq!(s.len(), 0);
        assert!(!s.contains(1));
    }

    #[test]
    fn full_set() {
        let s = NodeSet::full(130);
        assert!(s.is_full());
        assert_eq!(s.len(), 130);
        assert_eq!(s.iter().count(), 130);
        assert_eq!(s.iter_complement().count(), 0);
    }

    #[test]
    fn iteration_order() {
        let mut s = NodeSet::new(200);
        for v in [150u32, 3, 64, 127, 128] {
            s.insert(v);
        }
        assert_eq!(s.to_vec(), vec![3, 64, 127, 128, 150]);
    }

    #[test]
    fn complement_iteration() {
        let mut s = NodeSet::new(6);
        s.insert(0);
        s.insert(2);
        s.insert(4);
        let comp: Vec<_> = s.iter_complement().collect();
        assert_eq!(comp, vec![1, 3, 5]);
    }

    #[test]
    fn complement_crosses_word_boundaries() {
        // Universe not a multiple of 64, members straddling words: the
        // word-level complement must match the naive per-bit filter.
        let mut s = NodeSet::new(201);
        for v in [0u32, 63, 64, 65, 127, 128, 199, 200] {
            s.insert(v);
        }
        let naive: Vec<NodeId> = (0..201).filter(|&v| !s.contains(v)).collect();
        let fast: Vec<NodeId> = s.iter_complement().collect();
        assert_eq!(fast, naive);
        // Empty and full sets at an exact word boundary.
        let empty = NodeSet::new(128);
        assert_eq!(empty.iter_complement().count(), 128);
        let full = NodeSet::full(128);
        assert_eq!(full.iter_complement().count(), 0);
    }

    #[test]
    fn words_expose_membership_bits() {
        let mut s = NodeSet::new(130);
        for v in [0u32, 63, 64, 129] {
            s.insert(v);
        }
        let words = s.words();
        assert_eq!(words.len(), 3);
        for v in 0..130u32 {
            let bit = words[v as usize / 64] >> (v % 64) & 1 == 1;
            assert_eq!(bit, s.contains(v), "node {v}");
        }
        // Tail bits beyond the universe stay zero.
        assert_eq!(words[2] >> 2, 0);
    }

    #[test]
    fn from_iterator() {
        let s: NodeSet = [5u32, 1, 3].into_iter().collect();
        assert_eq!(s.universe(), 6);
        assert_eq!(s.to_vec(), vec![1, 3, 5]);
    }

    #[test]
    #[should_panic]
    fn contains_out_of_universe_panics() {
        NodeSet::new(4).contains(4);
    }

    #[test]
    fn empty_universe() {
        let s = NodeSet::new(0);
        assert!(s.is_empty());
        assert!(s.is_full());
        assert_eq!(s.iter().count(), 0);
    }
}
