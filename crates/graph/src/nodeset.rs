use crate::NodeId;
use serde::{Deserialize, Serialize};

/// A fixed-universe bitset over node ids `0..n`.
///
/// Represents informed sets and cut sides with O(1) membership tests,
/// O(1) amortized insertion, and word-at-a-time iteration. The simulators
/// query membership on every contact, so this type is deliberately minimal.
///
/// # Example
///
/// ```
/// use gossip_graph::NodeSet;
///
/// let mut s = NodeSet::new(10);
/// s.insert(3);
/// s.insert(7);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        NodeSet {
            words: vec![0; n.div_ceil(64)],
            universe: n,
            len: 0,
        }
    }

    /// Creates a set containing every node of the universe `0..n`.
    pub fn full(n: usize) -> Self {
        let mut s = NodeSet::new(n);
        for v in 0..n {
            s.insert(v as NodeId);
        }
        s
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the set contains every node of its universe.
    pub fn is_full(&self) -> bool {
        self.len == self.universe
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    pub fn contains(&self, v: NodeId) -> bool {
        let v = v as usize;
        assert!(
            v < self.universe,
            "node {v} outside universe {}",
            self.universe
        );
        self.words[v / 64] >> (v % 64) & 1 == 1
    }

    /// Inserts `v`; returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    pub fn insert(&mut self, v: NodeId) -> bool {
        let vu = v as usize;
        assert!(
            vu < self.universe,
            "node {vu} outside universe {}",
            self.universe
        );
        let mask = 1u64 << (vu % 64);
        let word = &mut self.words[vu / 64];
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `v`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    pub fn remove(&mut self, v: NodeId) -> bool {
        let vu = v as usize;
        assert!(
            vu < self.universe,
            "node {vu} outside universe {}",
            self.universe
        );
        let mask = 1u64 << (vu % 64);
        let word = &mut self.words[vu / 64];
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Iterates members in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates the complement (non-members) in increasing order.
    pub fn iter_complement(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.universe as NodeId).filter(move |&v| !self.contains(v))
    }

    /// Collects members into a vector.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Builds a set whose universe is one past the largest element (or 0).
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let items: Vec<NodeId> = iter.into_iter().collect();
        let universe = items.iter().map(|&v| v as usize + 1).max().unwrap_or(0);
        let mut s = NodeSet::new(universe);
        for v in items {
            s.insert(v);
        }
        s
    }
}

/// Iterator over members of a [`NodeSet`], produced by [`NodeSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.word_idx * 64 + bit) as NodeId);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_membership() {
        let mut s = NodeSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(0));
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(1));
    }

    #[test]
    fn remove_and_clear() {
        let mut s = NodeSet::new(10);
        s.insert(5);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
        s.insert(1);
        s.insert(2);
        s.clear();
        assert_eq!(s.len(), 0);
        assert!(!s.contains(1));
    }

    #[test]
    fn full_set() {
        let s = NodeSet::full(130);
        assert!(s.is_full());
        assert_eq!(s.len(), 130);
        assert_eq!(s.iter().count(), 130);
        assert_eq!(s.iter_complement().count(), 0);
    }

    #[test]
    fn iteration_order() {
        let mut s = NodeSet::new(200);
        for v in [150u32, 3, 64, 127, 128] {
            s.insert(v);
        }
        assert_eq!(s.to_vec(), vec![3, 64, 127, 128, 150]);
    }

    #[test]
    fn complement_iteration() {
        let mut s = NodeSet::new(6);
        s.insert(0);
        s.insert(2);
        s.insert(4);
        let comp: Vec<_> = s.iter_complement().collect();
        assert_eq!(comp, vec![1, 3, 5]);
    }

    #[test]
    fn from_iterator() {
        let s: NodeSet = [5u32, 1, 3].into_iter().collect();
        assert_eq!(s.universe(), 6);
        assert_eq!(s.to_vec(), vec![1, 3, 5]);
    }

    #[test]
    #[should_panic]
    fn contains_out_of_universe_panics() {
        NodeSet::new(4).contains(4);
    }

    #[test]
    fn empty_universe() {
        let s = NodeSet::new(0);
        assert!(s.is_empty());
        assert!(s.is_full());
        assert_eq!(s.iter().count(), 0);
    }
}
