//! Exhaustive cut enumeration for the exact graph measures.
//!
//! Conductance and diligence are minima over exponentially many cuts; for
//! graphs up to [`crate::EXACT_ENUMERATION_LIMIT`] nodes this module visits
//! every unordered partition `{S, S̄}` exactly once and hands the visitor
//! the cut's side sizes, volumes, and crossing edges. Both exact measures
//! and several tests are built on it, so its own correctness is tested
//! against independent brute-force counts.

use crate::{Graph, GraphError, NodeId, EXACT_ENUMERATION_LIMIT};

/// A view of one cut `{S, S̄}` during enumeration.
///
/// `S` is the side *not* containing the highest-numbered node, so each
/// unordered partition is visited exactly once.
#[derive(Debug)]
pub struct CutView<'a> {
    /// Bitmask of `S`: bit `v` set means node `v ∈ S`.
    pub mask: u64,
    /// `|S|`.
    pub size_s: usize,
    /// `vol(S) = Σ_{v∈S} d_v`.
    pub vol_s: usize,
    /// `vol(S̄)`.
    pub vol_comp: usize,
    /// The edges crossing the cut, as stored in the graph (`u < v`).
    pub cut_edges: &'a [(NodeId, NodeId)],
}

impl CutView<'_> {
    /// Whether node `v` lies in `S`.
    pub fn in_s(&self, v: NodeId) -> bool {
        self.mask >> v & 1 == 1
    }

    /// `min(vol(S), vol(S̄))`.
    pub fn min_vol(&self) -> usize {
        self.vol_s.min(self.vol_comp)
    }

    /// Size of the smaller-volume side (`|S|` if `vol(S) ≤ vol(S̄)`, else
    /// `n − |S|`).
    pub fn smaller_side_size(&self, n: usize) -> usize {
        if self.vol_s <= self.vol_comp {
            self.size_s
        } else {
            n - self.size_s
        }
    }
}

/// Visits every unordered nonempty proper cut `{S, S̄}` of `g` exactly once.
///
/// The visitor receives a [`CutView`] whose `cut_edges` buffer is reused
/// between calls.
///
/// # Errors
///
/// Returns [`GraphError::TooLargeForExact`] when `g.n()` exceeds
/// [`EXACT_ENUMERATION_LIMIT`] and [`GraphError::EmptyGraph`] when `g` has
/// fewer than two nodes (no proper cuts exist).
pub fn for_each_cut<F: FnMut(&CutView<'_>)>(g: &Graph, mut visit: F) -> Result<(), GraphError> {
    let n = g.n();
    if n > EXACT_ENUMERATION_LIMIT {
        return Err(GraphError::TooLargeForExact {
            n,
            limit: EXACT_ENUMERATION_LIMIT,
        });
    }
    if n < 2 {
        return Err(GraphError::EmptyGraph);
    }
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let degrees: Vec<usize> = (0..n).map(|v| g.degree(v as NodeId)).collect();
    let total_vol: usize = degrees.iter().sum();
    let mut cut_edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len());

    // Node n-1 stays in the complement: masks range over subsets of 0..n-1.
    let limit: u64 = 1u64 << (n - 1);
    for mask in 1..limit {
        cut_edges.clear();
        for &(u, v) in &edges {
            if (mask >> u & 1) != (mask >> v & 1) {
                cut_edges.push((u, v));
            }
        }
        let mut vol_s = 0usize;
        let mut m = mask;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            vol_s += degrees[v];
            m &= m - 1;
        }
        let view = CutView {
            mask,
            size_s: mask.count_ones() as usize,
            vol_s,
            vol_comp: total_vol - vol_s,
            cut_edges: &cut_edges,
        };
        visit(&view);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cut_count_is_2_pow_n_minus_1_minus_1() {
        let g = generators::complete(5).unwrap();
        let mut count = 0usize;
        for_each_cut(&g, |_| count += 1).unwrap();
        assert_eq!(count, (1 << 4) - 1);
    }

    #[test]
    fn volumes_always_sum_to_total() {
        let g = generators::path(6).unwrap();
        let total = g.volume();
        for_each_cut(&g, |c| {
            assert_eq!(c.vol_s + c.vol_comp, total);
            assert!(c.size_s >= 1 && c.size_s < 6);
        })
        .unwrap();
    }

    #[test]
    fn cut_edges_match_manual_count_on_triangle() {
        let g = generators::complete(3).unwrap();
        // Every proper cut of K3 has exactly 2 crossing edges.
        for_each_cut(&g, |c| assert_eq!(c.cut_edges.len(), 2)).unwrap();
    }

    #[test]
    fn in_s_consistent_with_mask() {
        let g = generators::cycle(4).unwrap();
        for_each_cut(&g, |c| {
            let members = (0..4u32).filter(|&v| c.in_s(v)).count();
            assert_eq!(members, c.size_s);
            // Highest node always outside S.
            assert!(!c.in_s(3));
        })
        .unwrap();
    }

    #[test]
    fn rejects_large_and_tiny() {
        let big = crate::Graph::empty(EXACT_ENUMERATION_LIMIT + 1);
        assert!(matches!(
            for_each_cut(&big, |_| {}),
            Err(GraphError::TooLargeForExact { .. })
        ));
        let tiny = crate::Graph::empty(1);
        assert!(matches!(
            for_each_cut(&tiny, |_| {}),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn smaller_side_size_reflects_volumes() {
        // Star: center has degree n-1, each leaf 1.
        let g = generators::star(5).unwrap();
        for_each_cut(&g, |c| {
            let small = c.smaller_side_size(5);
            assert!(small >= 1);
            if c.vol_s <= c.vol_comp {
                assert_eq!(small, c.size_s);
            }
        })
        .unwrap();
    }
}
