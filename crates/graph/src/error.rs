use std::error::Error;
use std::fmt;

/// Error type for graph construction, generation, and measurement.
///
/// # Example
///
/// ```
/// use gossip_graph::{GraphBuilder, GraphError};
///
/// let mut b = GraphBuilder::new(3);
/// assert!(matches!(b.add_edge(1, 1), Err(GraphError::SelfLoop { .. })));
/// assert!(matches!(b.add_edge(0, 9), Err(GraphError::NodeOutOfRange { .. })));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node index was at least the graph's node count.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// The graph's node count.
        n: usize,
    },
    /// An edge `{v, v}` was added; simple graphs have no loops.
    SelfLoop {
        /// The node with the attempted loop.
        node: u32,
    },
    /// A generator or measure received a parameter outside its domain.
    InvalidParameter(String),
    /// A randomized generator exhausted its retry budget (e.g. the pairing
    /// model kept producing multigraphs, or connectivity never held).
    GenerationFailed(String),
    /// An exact exponential-time measure was asked about a graph above
    /// [`crate::EXACT_ENUMERATION_LIMIT`] nodes.
    TooLargeForExact {
        /// The graph's node count.
        n: usize,
        /// The enumeration limit.
        limit: usize,
    },
    /// A measure that requires at least one edge/node was given an empty
    /// graph.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at node {node} not allowed in a simple graph")
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GraphError::GenerationFailed(msg) => write!(f, "generation failed: {msg}"),
            GraphError::TooLargeForExact { n, limit } => {
                write!(
                    f,
                    "graph with {n} nodes exceeds exact-enumeration limit {limit}"
                )
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let variants = [
            GraphError::NodeOutOfRange { node: 5, n: 3 },
            GraphError::SelfLoop { node: 1 },
            GraphError::InvalidParameter("p".into()),
            GraphError::GenerationFailed("g".into()),
            GraphError::TooLargeForExact { n: 30, limit: 24 },
            GraphError::EmptyGraph,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
