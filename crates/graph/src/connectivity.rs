//! Connectivity queries: BFS, connected components, distances.
//!
//! The paper's measures degrade on disconnected graphs (`ρ(G) = 0`,
//! `⌈Φ(G)⌉ = 0` in Theorem 1.3), so every generator and bound calculator
//! leans on this module.

use crate::{Graph, NodeId};

/// Whether the graph is connected.
///
/// A graph with zero or one node is connected; a graph with `n ≥ 2` nodes
/// and an isolated node is not.
///
/// # Example
///
/// ```
/// use gossip_graph::{Graph, connectivity};
///
/// let path = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// assert!(connectivity::is_connected(&path));
/// let split = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
/// assert!(!connectivity::is_connected(&split));
/// ```
pub fn is_connected(g: &Graph) -> bool {
    let n = g.n();
    if n <= 1 {
        return true;
    }
    bfs_reach_count(g, 0) == n
}

/// Number of nodes reachable from `start` (including `start`).
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn bfs_reach_count(g: &Graph, start: NodeId) -> usize {
    let mut visited = vec![false; g.n()];
    let mut queue = std::collections::VecDeque::new();
    visited[start as usize] = true;
    queue.push_back(start);
    let mut count = 1usize;
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if !visited[v as usize] {
                visited[v as usize] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count
}

/// Connected components as sorted vectors of node ids, ordered by their
/// smallest member.
pub fn components(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.n();
    let mut comp = vec![usize::MAX; n];
    let mut result: Vec<Vec<NodeId>> = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        let id = result.len();
        let mut members = vec![s as NodeId];
        comp[s] = id;
        let mut queue = std::collections::VecDeque::from([s as NodeId]);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = id;
                    members.push(v);
                    queue.push_back(v);
                }
            }
        }
        members.sort_unstable();
        result.push(members);
    }
    result
}

/// BFS distances from `start`; unreachable nodes get `usize::MAX`.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn bfs_distances(g: &Graph, start: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n()];
    dist[start as usize] = 0;
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Graph diameter (longest shortest path), or `None` when disconnected or
/// empty.
///
/// O(n·m); intended for test-sized graphs.
pub fn diameter(g: &Graph) -> Option<usize> {
    let n = g.n();
    if n == 0 {
        return None;
    }
    let mut best = 0usize;
    for s in 0..n {
        let dist = bfs_distances(g, s as NodeId);
        for &d in &dist {
            if d == usize::MAX {
                return None;
            }
            best = best.max(d);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn trivial_graphs_connected() {
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn components_of_two_paths() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let comps = components(&g);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn distances_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn distances_unreachable() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn diameter_of_cycle() {
        // 6-cycle has diameter 3.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn diameter_disconnected_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter(&g), None);
        assert_eq!(diameter(&Graph::empty(0)), None);
    }

    #[test]
    fn reach_count() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(bfs_reach_count(&g, 0), 3);
        assert_eq!(bfs_reach_count(&g, 3), 1);
    }
}
