//! Seeded sampled-topology backends: random graphs as lazy views.
//!
//! The eager random generators ([`crate::generators::erdos_renyi`],
//! [`crate::generators::random_regular`]) return a CSR [`Graph`] —
//! `O(n + m)` memory *after* generation, but generation itself used to
//! cost `Θ(n²)` RNG draws for `G(n, p)` and the result had to exist in
//! full before a single query could be answered. The types in this module
//! instead treat a random graph as a **deterministic function of
//! `(parameters, seed)`**: construction is `O(1)`, every query realizes
//! exactly the state it needs, and two values built from the same seed
//! describe bit-for-bit the same graph no matter which queries ran first.
//!
//! * [`Gnp`] — Erdős–Rényi `G(n, p)`. Each node `v` owns the pairs
//!   `{v, u}` with `u > v`; its *forward row* is sampled on first touch by
//!   geometric skipping over the candidates (`O(1 + (n − v) p)` draws)
//!   from an RNG keyed by `(seed, v)`, so each pair is an independent
//!   `Bernoulli(p)` — exactly the `G(n, p)` distribution. Degree and
//!   indexed-neighbor queries realize a symmetric CSR over all rows once
//!   (`O(n + m)` total, cached); `has_edge` needs only one forward row.
//! * [`SampledRegular`] — random connected `d`-regular graph, realized on
//!   first touch from the seeded permutation stream of the pairing model
//!   (the stub shuffle of [`crate::generators::random_connected_regular`])
//!   and cached whole. `n`, `d`, and `m = nd/2` answer without realizing.
//! * [`CirculantLift`] — a seeded uniformly random relabeling of the
//!   `d`-regular circulant: node `v`'s neighbors are
//!   `σ(σ⁻¹(v) ± j mod n)` for a permutation `σ` drawn once (seeded
//!   Fisher–Yates, `O(n)` memory) on first touch. Exactly `d`-regular and
//!   simple, `O(1)` per query — a cheap stand-in for "an arbitrary
//!   `d`-regular graph with random labels" at any `n`.
//!
//! Realized state lives behind `Arc`-shared [`OnceLock`] caches, so
//! cloning a sampled topology (one clone per trial in a sweep) shares the
//! realization: a `G(10⁵, 2·10⁻⁴)` sweep samples its ≈ 10⁶ edges once,
//! not once per trial, and the caches are safe to touch from the
//! multi-threaded trial runner.

use crate::{Graph, GraphBuilder, GraphError, NodeId};
use gossip_stats::{Geometric, SimRng};
use std::sync::{Arc, OnceLock};

/// The deterministic RNG for row `v` of a backend seeded with `seed`.
///
/// Rows use [`SimRng::derive`]'s SplitMix-style mixing so adjacent rows get
/// decorrelated streams; the same derivation keyed by `(seed, v)` is what
/// makes realization order irrelevant.
fn row_rng(seed: u64, v: u64) -> SimRng {
    SimRng::seed_from_u64(seed).derive(v)
}

/// Samples the forward adjacency row of `v` in `G(n, p)`: every `u` in
/// `(v, n)` independently with probability `p`, by geometric skipping
/// (`O(1 + (n − v) p)` RNG draws instead of one per candidate). The output
/// is sorted increasing. This is the single sampling code path shared by
/// the lazy [`Gnp`] backend and the eager
/// [`crate::generators::erdos_renyi`] materialization.
fn gnp_forward_row(n: usize, v: NodeId, geo: &Geometric, seed: u64) -> Box<[NodeId]> {
    let mut rng = row_rng(seed, v as u64);
    let first = v as u64 + 1;
    let span = n as u64 - first;
    let mut out = Vec::new();
    if span > 0 {
        let mut idx = geo.sample(&mut rng) - 1;
        while idx < span {
            out.push((first + idx) as NodeId);
            idx += geo.sample(&mut rng);
        }
    }
    out.into_boxed_slice()
}

/// A symmetric CSR view realized from the forward rows (both directions,
/// rows sorted increasing — the same enumeration order as
/// [`Graph::neighbors`], so RNG-stream parity with the materialized twin
/// holds bit for bit).
#[derive(Debug)]
struct Csr {
    offsets: Box<[u32]>,
    nbrs: Box<[NodeId]>,
}

impl Csr {
    fn row(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.nbrs[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }
}

#[derive(Debug)]
struct GnpCache {
    /// `fwd[v]` = sorted neighbors `u > v`, sampled on first touch.
    fwd: Box<[OnceLock<Box<[NodeId]>>]>,
    /// The symmetric CSR, realized on the first degree/neighbor query.
    full: OnceLock<Csr>,
}

/// Seeded sampled `G(n, p)` (see the [module docs](self)).
///
/// Equality and cloning are by parameters: clones share the lazy caches,
/// and two values with equal `(n, p, seed)` compare equal regardless of
/// what either has realized.
#[derive(Debug, Clone)]
pub(crate) struct Gnp {
    n: usize,
    p: f64,
    seed: u64,
    cache: Arc<GnpCache>,
}

impl PartialEq for Gnp {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.p == other.p && self.seed == other.seed
    }
}

impl Gnp {
    pub(crate) fn new(n: usize, p: f64, seed: u64) -> Result<Self, GraphError> {
        if n < 2 {
            return Err(GraphError::InvalidParameter(format!(
                "sampled G(n,p) needs n >= 2, got {n}"
            )));
        }
        if !(p > 0.0 && p <= 1.0) {
            return Err(GraphError::InvalidParameter(format!(
                "sampled G(n,p) needs edge probability p in (0, 1], got {p}"
            )));
        }
        Ok(Gnp {
            n,
            p,
            seed,
            cache: Arc::new(GnpCache {
                fwd: (0..n).map(|_| OnceLock::new()).collect(),
                full: OnceLock::new(),
            }),
        })
    }

    pub(crate) fn n(&self) -> usize {
        self.n
    }

    pub(crate) fn p(&self) -> f64 {
        self.p
    }

    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    /// The forward row of `v` (neighbors `u > v`), realized on first touch.
    fn fwd_row(&self, v: NodeId) -> &[NodeId] {
        self.cache.fwd[v as usize].get_or_init(|| {
            let geo = Geometric::new(self.p).expect("p validated in new()");
            gnp_forward_row(self.n, v, &geo, self.seed)
        })
    }

    /// The full symmetric CSR, realized once on first need. `O(n + m)`:
    /// realize every forward row, then counting-sort into both directions
    /// (backward entries arrive in increasing `u` before the forward tail,
    /// so rows come out sorted without a comparison sort).
    fn csr(&self) -> &Csr {
        self.cache.full.get_or_init(|| {
            let n = self.n;
            let mut deg = vec![0u32; n];
            for v in 0..n as NodeId {
                for &u in self.fwd_row(v) {
                    deg[v as usize] += 1;
                    deg[u as usize] += 1;
                }
            }
            let mut offsets = vec![0u32; n + 1];
            for v in 0..n {
                offsets[v + 1] = offsets[v] + deg[v];
            }
            let mut cursor: Vec<u32> = offsets[..n].to_vec();
            let mut nbrs = vec![0 as NodeId; offsets[n] as usize];
            // Backward halves first (u < x, ascending), then each row's
            // own forward tail.
            for u in 0..n as NodeId {
                for &x in self.fwd_row(u) {
                    nbrs[cursor[x as usize] as usize] = u;
                    cursor[x as usize] += 1;
                }
            }
            for v in 0..n as NodeId {
                for &u in self.fwd_row(v) {
                    nbrs[cursor[v as usize] as usize] = u;
                    cursor[v as usize] += 1;
                }
            }
            Csr {
                offsets: offsets.into_boxed_slice(),
                nbrs: nbrs.into_boxed_slice(),
            }
        })
    }

    pub(crate) fn m(&self) -> usize {
        self.csr().nbrs.len() / 2
    }

    pub(crate) fn degree(&self, v: NodeId) -> usize {
        self.csr().row(v).len()
    }

    pub(crate) fn row(&self, v: NodeId) -> &[NodeId] {
        self.csr().row(v)
    }

    /// `O(log deg)` after one forward row (`O(1 + (n − a) p)` to realize);
    /// does not trigger the full CSR.
    pub(crate) fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        if let Some(csr) = self.cache.full.get() {
            return csr.row(a).binary_search(&b).is_ok();
        }
        self.fwd_row(a).binary_search(&b).is_ok()
    }

    /// Builds the CSR [`Graph`] twin from the forward rows — the one
    /// materialization code path behind [`crate::generators::erdos_renyi`].
    pub(crate) fn materialize(&self) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        for v in 0..self.n as NodeId {
            for &u in self.fwd_row(v) {
                b.add_edge(v, u).expect("sampled rows emit valid edges");
            }
        }
        b.build()
    }
}

/// Seeded random connected `d`-regular graph, realized whole on first
/// touch (see the [module docs](self)).
#[derive(Debug, Clone)]
pub(crate) struct SampledRegular {
    n: usize,
    d: usize,
    seed: u64,
    cache: Arc<OnceLock<Graph>>,
}

impl PartialEq for SampledRegular {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.d == other.d && self.seed == other.seed
    }
}

impl SampledRegular {
    pub(crate) fn new(n: usize, d: usize, seed: u64) -> Result<Self, GraphError> {
        if d < 2 || d >= n {
            return Err(GraphError::InvalidParameter(format!(
                "sampled random-regular degree d = {d} must satisfy 2 <= d < n = {n}"
            )));
        }
        if !(n * d).is_multiple_of(2) {
            return Err(GraphError::InvalidParameter(format!(
                "n*d must be even for a d-regular graph, got n = {n}, d = {d}"
            )));
        }
        Ok(SampledRegular {
            n,
            d,
            seed,
            cache: Arc::new(OnceLock::new()),
        })
    }

    pub(crate) fn n(&self) -> usize {
        self.n
    }

    pub(crate) fn d(&self) -> usize {
        self.d
    }

    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    /// The realized graph: the same seeded pairing-model draw (permutation
    /// stream + 2-switch repair + connectivity rejection) as
    /// [`crate::generators::random_connected_regular`] on a fresh RNG
    /// seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics in the (never-observed for `d ≥ 3`; see the generator docs)
    /// event that generation exhausts its retry budgets — lazy realization
    /// has nowhere to surface a `Result`.
    pub(crate) fn graph(&self) -> &Graph {
        self.cache.get_or_init(|| {
            let mut rng = SimRng::seed_from_u64(self.seed);
            crate::generators::random_connected_regular(self.n, self.d, &mut rng)
                .expect("parameters validated in new(); connected draws succeed w.h.p.")
        })
    }
}

#[derive(Debug)]
struct Perm {
    sigma: Box<[NodeId]>,
    inv: Box<[NodeId]>,
}

/// Seeded random relabeling of a `d`-regular circulant (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub(crate) struct CirculantLift {
    n: usize,
    jumps: Box<[u32]>,
    /// One positive residue per neighbor direction (as in the implicit
    /// circulant backend).
    deltas: Box<[u32]>,
    seed: u64,
    perm: Arc<OnceLock<Perm>>,
}

impl PartialEq for CirculantLift {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.jumps == other.jumps && self.seed == other.seed
    }
}

impl CirculantLift {
    pub(crate) fn new(
        n: usize,
        jumps: Vec<u32>,
        deltas: Vec<u32>,
        seed: u64,
    ) -> Result<Self, GraphError> {
        debug_assert!(!jumps.is_empty(), "caller validates the jump set");
        Ok(CirculantLift {
            n,
            jumps: jumps.into_boxed_slice(),
            deltas: deltas.into_boxed_slice(),
            seed,
            perm: Arc::new(OnceLock::new()),
        })
    }

    pub(crate) fn n(&self) -> usize {
        self.n
    }

    pub(crate) fn jumps(&self) -> &[u32] {
        &self.jumps
    }

    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    pub(crate) fn degree(&self) -> usize {
        self.deltas.len()
    }

    pub(crate) fn m(&self) -> usize {
        self.n * self.deltas.len() / 2
    }

    /// The relabeling permutation, drawn once by seeded Fisher–Yates.
    fn perm(&self) -> &Perm {
        self.perm.get_or_init(|| {
            let mut sigma: Vec<NodeId> = (0..self.n as NodeId).collect();
            SimRng::seed_from_u64(self.seed).shuffle(&mut sigma);
            let mut inv = vec![0 as NodeId; self.n];
            for (i, &s) in sigma.iter().enumerate() {
                inv[s as usize] = i as NodeId;
            }
            Perm {
                sigma: sigma.into_boxed_slice(),
                inv: inv.into_boxed_slice(),
            }
        })
    }

    /// The `i`-th neighbor in lifted jump order: `σ(σ⁻¹(v) + δᵢ mod n)`.
    pub(crate) fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        let p = self.perm();
        let base = p.inv[v as usize] as usize;
        p.sigma[(base + self.deltas[i] as usize) % self.n]
    }

    pub(crate) fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let p = self.perm();
        let (a, b) = (p.inv[u as usize] as usize, p.inv[v as usize] as usize);
        let diff = (b + self.n - a) % self.n;
        let dist = diff.min(self.n - diff) as u32;
        self.jumps.binary_search(&dist).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_realization_is_query_order_independent() {
        // Touch rows in different orders; the realized graphs agree.
        let a = Gnp::new(40, 0.2, 99).unwrap();
        let b = Gnp::new(40, 0.2, 99).unwrap();
        // a: full CSR first; b: scattered has_edge probes first.
        let _ = a.degree(0);
        for (u, v) in [(39u32, 3u32), (7, 8), (0, 39)] {
            let _ = b.has_edge(u, v);
        }
        assert_eq!(a.materialize(), b.materialize());
        for v in 0..40u32 {
            assert_eq!(a.row(v), b.row(v));
        }
    }

    #[test]
    fn gnp_rows_are_sorted_and_symmetric() {
        let g = Gnp::new(60, 0.15, 7).unwrap();
        for v in 0..60u32 {
            let row = g.row(v);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {v} unsorted");
            for &u in row {
                assert!(g.has_edge(u, v), "asymmetric edge ({u}, {v})");
                assert!(g.row(u).contains(&v));
            }
        }
    }

    #[test]
    fn gnp_clone_shares_realization() {
        let g = Gnp::new(30, 0.3, 1).unwrap();
        let h = g.clone();
        let _ = g.degree(0); // realize via g
        assert!(
            h.cache.full.get().is_some(),
            "clone did not share the cache"
        );
        assert_eq!(g, h);
    }

    #[test]
    fn gnp_validates() {
        assert!(Gnp::new(1, 0.5, 0).is_err());
        assert!(Gnp::new(10, 0.0, 0).is_err());
        assert!(Gnp::new(10, 1.2, 0).is_err());
        assert!(Gnp::new(10, 1.0, 0).is_ok());
    }

    #[test]
    fn gnp_p_one_is_complete() {
        let g = Gnp::new(12, 1.0, 5).unwrap();
        assert_eq!(g.m(), 12 * 11 / 2);
    }

    #[test]
    fn sampled_regular_validates_and_realizes() {
        assert!(SampledRegular::new(10, 1, 0).is_err());
        assert!(SampledRegular::new(4, 4, 0).is_err());
        assert!(SampledRegular::new(5, 3, 0).is_err()); // odd n*d
        let r = SampledRegular::new(20, 4, 3).unwrap();
        let g = r.graph();
        assert!(g.is_regular());
        assert_eq!(g.degree(0), 4);
        // Deterministic by seed, shared across clones.
        let r2 = SampledRegular::new(20, 4, 3).unwrap();
        assert_eq!(r.graph(), r2.graph());
    }

    #[test]
    fn lift_permutation_is_seeded_involution_pair() {
        let lift = CirculantLift::new(17, vec![1, 2], vec![1, 16, 2, 15], 11).unwrap();
        let p = lift.perm();
        for v in 0..17u32 {
            assert_eq!(p.inv[p.sigma[v as usize] as usize], v);
        }
    }
}
