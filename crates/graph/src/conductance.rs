//! Graph conductance `Φ(G)` (paper Equation (2)).
//!
//! `Φ(G) = min_{∅≠S⊂V} |E(S,S̄)| / min(vol(S), vol(S̄))`.
//!
//! Computing `Φ` exactly is NP-hard in general; this module provides the
//! exact exponential-time minimum for small graphs (tests, calibration) and
//! delegates large graphs to the spectral Cheeger estimate in
//! [`crate::spectral`]. The adversarial families of the paper additionally
//! have closed forms (Observation 4.1) implemented alongside their
//! generators.

use crate::subsets::for_each_cut;
use crate::{connectivity, Graph, GraphError};

/// Exact conductance by enumerating all cuts.
///
/// Returns `0` for disconnected graphs (some cut has no crossing edges) and
/// an error for graphs too large to enumerate.
///
/// # Errors
///
/// [`GraphError::TooLargeForExact`] above
/// [`crate::EXACT_ENUMERATION_LIMIT`] nodes; [`GraphError::EmptyGraph`] for
/// graphs with fewer than two nodes or zero edges.
///
/// # Example
///
/// ```
/// use gossip_graph::{conductance, generators};
///
/// // Complete graph K4: every cut has Φ-ratio ≥ Φ(K4) = 4/6.
/// let g = generators::complete(4).unwrap();
/// let phi = conductance::exact_conductance(&g).unwrap();
/// assert!((phi - 4.0 / 6.0).abs() < 1e-12);
/// ```
pub fn exact_conductance(g: &Graph) -> Result<f64, GraphError> {
    if g.is_empty_graph() {
        return Err(GraphError::EmptyGraph);
    }
    let mut phi = f64::INFINITY;
    for_each_cut(g, |c| {
        let denom = c.min_vol();
        if denom > 0 {
            phi = phi.min(c.cut_edges.len() as f64 / denom as f64);
        }
    })?;
    if !connectivity::is_connected(g) {
        return Ok(0.0);
    }
    Ok(phi)
}

/// The conductance of the best *sweep* cut along a given node ordering —
/// an upper bound on `Φ(G)` usable at any scale.
///
/// For orderings produced by a Fiedler-vector sort (see
/// [`crate::spectral::fiedler_ordering`]) Cheeger's inequality guarantees
/// the result is at most `sqrt(2·Φ)`-competitive.
///
/// # Errors
///
/// [`GraphError::EmptyGraph`] when `g` has no edges;
/// [`GraphError::InvalidParameter`] when `ordering` is not a permutation of
/// the nodes.
pub fn sweep_conductance(g: &Graph, ordering: &[crate::NodeId]) -> Result<f64, GraphError> {
    if g.is_empty_graph() {
        return Err(GraphError::EmptyGraph);
    }
    let n = g.n();
    if ordering.len() != n {
        return Err(GraphError::InvalidParameter(format!(
            "ordering has {} entries for a {n}-node graph",
            ordering.len()
        )));
    }
    let mut seen = vec![false; n];
    for &v in ordering {
        if (v as usize) >= n || seen[v as usize] {
            return Err(GraphError::InvalidParameter(
                "ordering is not a permutation".into(),
            ));
        }
        seen[v as usize] = true;
    }
    let total_vol = g.volume();
    let mut in_s = vec![false; n];
    let mut vol_s = 0usize;
    let mut cut = 0i64;
    let mut best = f64::INFINITY;
    for &v in &ordering[..n - 1] {
        in_s[v as usize] = true;
        vol_s += g.degree(v);
        for &u in g.neighbors(v) {
            if in_s[u as usize] {
                cut -= 1;
            } else {
                cut += 1;
            }
        }
        let denom = vol_s.min(total_vol - vol_s);
        if denom > 0 {
            best = best.min(cut as f64 / denom as f64);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn complete_graph_formula() {
        // Φ(K_n) is attained by the most balanced cut:
        // |S| = floor(n/2), |E| = |S|(n-|S|), vol(S) = |S|(n-1).
        for n in [3usize, 4, 5, 6, 8] {
            let g = generators::complete(n).unwrap();
            let s = n / 2;
            let expected = (s * (n - s)) as f64 / (s * (n - 1)) as f64;
            let phi = exact_conductance(&g).unwrap();
            assert!((phi - expected).abs() < 1e-12, "n={n}: {phi} vs {expected}");
        }
    }

    #[test]
    fn cycle_conductance() {
        // Φ(C_n) = 2 / (2·floor(n/2)) = 1/floor(n/2).
        for n in [4usize, 6, 8, 10] {
            let g = generators::cycle(n).unwrap();
            let phi = exact_conductance(&g).unwrap();
            let expected = 1.0 / (n / 2) as f64;
            assert!((phi - expected).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn path_bottleneck() {
        // Path of 4: cut in the middle has 1 edge, min vol = 3.
        let g = generators::path(4).unwrap();
        let phi = exact_conductance(&g).unwrap();
        assert!((phi - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn star_conductance_is_one() {
        // Any S not containing the center has |E(S,S̄)| = |S| = vol(S).
        for n in [3usize, 5, 9] {
            let g = generators::star(n).unwrap();
            let phi = exact_conductance(&g).unwrap();
            assert!((phi - 1.0).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn disconnected_is_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(exact_conductance(&g).unwrap(), 0.0);
    }

    #[test]
    fn empty_graph_error() {
        assert!(matches!(
            exact_conductance(&Graph::empty(4)),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn barbell_has_small_conductance() {
        // Two K5s joined by one edge: the bridge cut dominates.
        let g = generators::barbell(5).unwrap();
        let phi = exact_conductance(&g).unwrap();
        // Bridge cut: 1 edge, min vol = 5*4+1 = 21.
        assert!((phi - 1.0 / 21.0).abs() < 1e-12, "phi = {phi}");
    }

    #[test]
    fn sweep_conductance_upper_bounds_exact() {
        let g = generators::barbell(4).unwrap();
        let exact = exact_conductance(&g).unwrap();
        let ordering: Vec<u32> = (0..g.n() as u32).collect();
        let sweep = sweep_conductance(&g, &ordering).unwrap();
        assert!(sweep >= exact - 1e-12);
        // The natural ordering of a barbell actually finds the bridge cut.
        assert!((sweep - exact).abs() < 1e-12);
    }

    #[test]
    fn sweep_rejects_bad_ordering() {
        let g = generators::complete(3).unwrap();
        assert!(sweep_conductance(&g, &[0, 1]).is_err());
        assert!(sweep_conductance(&g, &[0, 1, 1]).is_err());
        assert!(sweep_conductance(&g, &[0, 1, 7]).is_err());
    }

    #[test]
    fn conductance_in_unit_interval() {
        // Φ ≤ 1 always (each cut edge contributes 1 to each side's volume);
        // sanity check across families.
        for g in [
            generators::complete(7).unwrap(),
            generators::cycle(9).unwrap(),
            generators::star(8).unwrap(),
            generators::complete_bipartite(3, 4).unwrap(),
        ] {
            let phi = exact_conductance(&g).unwrap();
            assert!(phi > 0.0 && phi <= 1.0, "phi = {phi}");
        }
    }
}
