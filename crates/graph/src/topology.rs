//! Implicit topology backends.
//!
//! A [`Topology`] is what the simulators actually consume: a graph *view*
//! offering O(1) `degree`, O(1) indexed neighbor access, and O(1) (or
//! O(log deg)) adjacency tests — without promising a materialized adjacency
//! list. Structured families (complete, star, circulant, complete
//! bipartite, two bridged cliques) answer every query in closed form from a
//! handful of integers, so a complete graph on `10^5` nodes costs a few
//! words of memory instead of the ≈ 40 GB its CSR form would need. The
//! [`Topology::materialized`] backend wraps an arbitrary [`Graph`] and
//! makes the same API answer from CSR, so engines are generic over both.
//!
//! The implicit backends exist because the paper's asymptotic claims (e.g.
//! the `Θ(log n)` spread on complete graphs, the `Θ(n log n)` dynamic-star
//! windows) only become measurable at sizes where dense adjacency lists
//! stop fitting in memory; related exact analyses on complete and random
//! graphs (Panagiotou & Speidel; Doerr & Kostrygin) exploit exactly this
//! closed-form neighbor structure.
//!
//! A third class sits between implicit and materialized: **sampled**
//! backends ([`Topology::gnp`], [`Topology::random_regular`],
//! [`Topology::circulant_lift`]) describe a *random* graph as a
//! deterministic function of `(parameters, seed)` and realize adjacency
//! lazily — `G(n, p)` rows by geometric skipping on first touch, cached
//! and `Arc`-shared across clones (see [`crate::sampled`]). They make
//! sparse random graphs at `n = 10⁵`–`10⁶` cost `O(1)` to construct and
//! `O(n + m)` to run, where the eager generators used to spend `Θ(n²)`
//! RNG draws before the first query.
//!
//! Neighbor indexing contract: for every backend except
//! [`Topology::circulant`] and [`Topology::circulant_lift`],
//! `neighbor(v, i)` enumerates the neighbors of `v` in increasing node
//! order — identical to [`Graph::neighbors`] on the materialized
//! equivalent, so uniform neighbor sampling consumes the same RNG stream
//! either way. Circulant backends enumerate `v + δ (mod n)` in jump order
//! instead, and the lift maps that order through its relabeling (still a
//! bijection onto the neighbor set, so uniform sampling is
//! distribution-identical).
//!
//! # Example
//!
//! ```
//! use gossip_graph::Topology;
//!
//! let t = Topology::complete(100_000).unwrap();
//! assert_eq!(t.degree(7), 99_999);
//! assert!(t.has_edge(3, 99_999));
//! assert!(t.is_implicit());
//! // Neighbor 3 of node 3 skips the node itself: 0, 1, 2, 4, ...
//! assert_eq!(t.neighbor(3, 3), 4);
//! ```

use crate::sampled;
use crate::{Graph, GraphBuilder, GraphError, NodeId};
use std::borrow::Cow;

/// A graph view with implicit structured backends and a materialized
/// fallback. See the [module docs](self) for the querying contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    repr: Repr,
}

#[derive(Debug, Clone, PartialEq)]
enum Repr {
    Complete {
        n: usize,
    },
    Star {
        n: usize,
        center: NodeId,
    },
    Circulant {
        n: usize,
        /// The validated jump set (each `1..=n/2`, sorted, distinct).
        jumps: Vec<u32>,
        /// One positive residue per neighbor direction: `+o` and, unless
        /// `2o = n`, `n − o` for each jump `o`.
        deltas: Vec<u32>,
    },
    CompleteBipartite {
        a: usize,
        b: usize,
    },
    TwoCliques {
        n: usize,
        /// Left clique is `{0, …, left−1}`, right is `{left, …, n−1}`.
        left: usize,
        /// The single bridge edge; `bridge.0` is in the left clique,
        /// `bridge.1` in the right.
        bridge: (NodeId, NodeId),
    },
    Gnp(sampled::Gnp),
    SampledRegular(sampled::SampledRegular),
    CirculantLift(sampled::CirculantLift),
    Materialized(Graph),
}

/// A borrowed, pattern-matchable view of a [`Topology`]'s backend, for
/// engines that special-case structured families (e.g. closed-form cut
/// rates on complete graphs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Structure<'a> {
    /// Complete graph `K_n`.
    Complete {
        /// Node count.
        n: usize,
    },
    /// Star with an explicit center.
    Star {
        /// Node count.
        n: usize,
        /// The hub node.
        center: NodeId,
    },
    /// Circulant `C(n; jumps)`.
    Circulant {
        /// Node count.
        n: usize,
        /// Sorted distinct jumps in `1..=n/2`.
        jumps: &'a [u32],
    },
    /// Complete bipartite `K_{a,b}` with sides `0..a` and `a..a+b`.
    CompleteBipartite {
        /// Left side size.
        a: usize,
        /// Right side size.
        b: usize,
    },
    /// Two cliques `{0..left}` and `{left..n}` joined by one bridge edge.
    TwoCliques {
        /// Node count.
        n: usize,
        /// Left clique size.
        left: usize,
        /// Bridge edge `(left endpoint, right endpoint)`.
        bridge: (NodeId, NodeId),
    },
    /// Seeded sampled Erdős–Rényi `G(n, p)` with lazy adjacency rows.
    SampledGnp {
        /// Node count.
        n: usize,
        /// Edge probability.
        p: f64,
        /// The sampling seed (the graph is a deterministic function of it).
        seed: u64,
    },
    /// Seeded random connected `d`-regular graph, realized lazily.
    SampledRegular {
        /// Node count.
        n: usize,
        /// Degree.
        d: usize,
        /// The sampling seed.
        seed: u64,
    },
    /// Seeded random relabeling of the circulant `C(n; jumps)`.
    CirculantLift {
        /// Node count.
        n: usize,
        /// Sorted distinct jumps in `1..=n/2`.
        jumps: &'a [u32],
        /// The relabeling seed.
        seed: u64,
    },
    /// An arbitrary materialized graph.
    Materialized(&'a Graph),
}

impl Topology {
    // -- constructors -------------------------------------------------------

    /// Implicit complete graph `K_n`.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `n < 2` (mirrors
    /// [`crate::generators::complete`]).
    pub fn complete(n: usize) -> Result<Self, GraphError> {
        if n < 2 {
            return Err(GraphError::InvalidParameter(format!(
                "complete graph needs n >= 2, got {n}"
            )));
        }
        Ok(Topology {
            repr: Repr::Complete { n },
        })
    }

    /// Implicit star on `n` nodes with the given center.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `n < 2`;
    /// [`GraphError::NodeOutOfRange`] when the center is not a node
    /// (mirrors [`crate::generators::star_with_center`]).
    pub fn star(n: usize, center: NodeId) -> Result<Self, GraphError> {
        if n < 2 {
            return Err(GraphError::InvalidParameter(format!(
                "star needs n >= 2, got {n}"
            )));
        }
        if center as usize >= n {
            return Err(GraphError::NodeOutOfRange { node: center, n });
        }
        Ok(Topology {
            repr: Repr::Star { n, center },
        })
    }

    /// Implicit circulant `C(n; jumps)`: node `i` is adjacent to
    /// `i ± o (mod n)` for each jump `o`.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] under the same rules as
    /// [`crate::generators::circulant`]: `n ≥ 3`, jumps non-empty,
    /// distinct, and each in `1..=n/2`.
    pub fn circulant(n: usize, jumps: &[usize]) -> Result<Self, GraphError> {
        let (jumps, deltas) = validate_circulant(n, jumps)?;
        Ok(Topology {
            repr: Repr::Circulant { n, jumps, deltas },
        })
    }

    /// Implicit `d`-regular circulant on `n` nodes (jumps `1..=d/2`) — the
    /// implicit twin of [`crate::generators::regular_circulant`].
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `d` is odd, zero, or too large
    /// (`d/2 > (n−1)/2`).
    pub fn regular_circulant(n: usize, d: usize) -> Result<Self, GraphError> {
        if d == 0 || !d.is_multiple_of(2) {
            return Err(GraphError::InvalidParameter(format!(
                "regular circulant needs even positive degree, got {d}"
            )));
        }
        if d / 2 > (n.saturating_sub(1)) / 2 {
            return Err(GraphError::InvalidParameter(format!(
                "degree {d} too large for {n} nodes (need d/2 <= (n-1)/2)"
            )));
        }
        let jumps: Vec<usize> = (1..=d / 2).collect();
        Self::circulant(n, &jumps)
    }

    /// Implicit complete bipartite `K_{a,b}` with sides `0..a` and
    /// `a..a+b`.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when either side is empty (mirrors
    /// [`crate::generators::complete_bipartite`]).
    pub fn complete_bipartite(a: usize, b: usize) -> Result<Self, GraphError> {
        if a == 0 || b == 0 {
            return Err(GraphError::InvalidParameter(format!(
                "complete bipartite needs both sides non-empty, got ({a}, {b})"
            )));
        }
        Ok(Topology {
            repr: Repr::CompleteBipartite { a, b },
        })
    }

    /// Implicit pair of cliques `{0..left}` and `{left..n}` joined by the
    /// single `bridge` edge — the shape of the paper's Figure 1(a) network
    /// (both its `G(0)`, where the right "clique" is the lone pendant
    /// node, and its `G(t ≥ 1)`).
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] unless `1 ≤ left < n`,
    /// `bridge.0 < left`, and `left ≤ bridge.1 < n`.
    pub fn two_cliques(
        n: usize,
        left: usize,
        bridge: (NodeId, NodeId),
    ) -> Result<Self, GraphError> {
        if left == 0 || left >= n {
            return Err(GraphError::InvalidParameter(format!(
                "two-cliques split {left} leaves an empty side of {n} nodes"
            )));
        }
        if (bridge.0 as usize) >= left || (bridge.1 as usize) < left || (bridge.1 as usize) >= n {
            return Err(GraphError::InvalidParameter(format!(
                "bridge ({}, {}) does not span the {left}/{} split",
                bridge.0,
                bridge.1,
                n - left
            )));
        }
        Ok(Topology {
            repr: Repr::TwoCliques { n, left, bridge },
        })
    }

    /// Seeded sampled Erdős–Rényi `G(n, p)`: every pair is an edge
    /// independently with probability `p`, decided by per-row geometric
    /// skipping from RNG streams keyed by `(seed, row)`. Construction is
    /// O(1); adjacency rows realize on first touch and are cached
    /// (`Arc`-shared across clones); the full graph is a deterministic
    /// function of `(n, p, seed)` regardless of query order. See
    /// [`crate::sampled`].
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `n < 2` or `p ∉ (0, 1]` (an
    /// always-empty graph has no sampled representation; use
    /// [`Graph::empty`]).
    ///
    /// # Example
    ///
    /// ```
    /// use gossip_graph::Topology;
    ///
    /// // Sparse G(n, p) at n = 10^5: O(1) to build, O(m) once touched.
    /// let t = Topology::gnp(100_000, 2e-4, 42).unwrap();
    /// assert!(t.is_sampled());
    /// ```
    pub fn gnp(n: usize, p: f64, seed: u64) -> Result<Self, GraphError> {
        Ok(Topology {
            repr: Repr::Gnp(sampled::Gnp::new(n, p, seed)?),
        })
    }

    /// Seeded random connected `d`-regular graph — the sampled twin of
    /// [`crate::generators::random_connected_regular`], realized lazily
    /// from the seeded permutation stream of the pairing model on first
    /// adjacency query (and cached, `Arc`-shared across clones).
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] unless `2 ≤ d < n` and `n·d` is
    /// even.
    pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Self, GraphError> {
        Ok(Topology {
            repr: Repr::SampledRegular(sampled::SampledRegular::new(n, d, seed)?),
        })
    }

    /// Seeded random relabeling of the `d`-regular circulant (jumps
    /// `1..=d/2`): node `v` is adjacent to `σ(σ⁻¹(v) ± j mod n)` for a
    /// uniformly random permutation `σ` drawn once from `seed` on first
    /// touch. Exactly `d`-regular and simple at any valid `n`, O(1) per
    /// query, O(n) state.
    ///
    /// # Errors
    ///
    /// As [`Topology::regular_circulant`]: `d` even and positive,
    /// `d/2 ≤ (n−1)/2`.
    pub fn circulant_lift(n: usize, d: usize, seed: u64) -> Result<Self, GraphError> {
        if d == 0 || !d.is_multiple_of(2) {
            return Err(GraphError::InvalidParameter(format!(
                "circulant lift needs even positive degree, got {d}"
            )));
        }
        if d / 2 > (n.saturating_sub(1)) / 2 {
            return Err(GraphError::InvalidParameter(format!(
                "degree {d} too large for {n} nodes (need d/2 <= (n-1)/2)"
            )));
        }
        let jumps: Vec<usize> = (1..=d / 2).collect();
        let (jumps, deltas) = validate_circulant(n, &jumps)?;
        Ok(Topology {
            repr: Repr::CirculantLift(sampled::CirculantLift::new(n, jumps, deltas, seed)?),
        })
    }

    /// Wraps a materialized [`Graph`].
    pub fn materialized(graph: Graph) -> Self {
        Topology {
            repr: Repr::Materialized(graph),
        }
    }

    // -- structure ----------------------------------------------------------

    /// The backend as a pattern-matchable view.
    pub fn structure(&self) -> Structure<'_> {
        match &self.repr {
            Repr::Complete { n } => Structure::Complete { n: *n },
            Repr::Star { n, center } => Structure::Star {
                n: *n,
                center: *center,
            },
            Repr::Circulant { n, jumps, .. } => Structure::Circulant { n: *n, jumps },
            Repr::CompleteBipartite { a, b } => Structure::CompleteBipartite { a: *a, b: *b },
            Repr::TwoCliques { n, left, bridge } => Structure::TwoCliques {
                n: *n,
                left: *left,
                bridge: *bridge,
            },
            Repr::Gnp(g) => Structure::SampledGnp {
                n: g.n(),
                p: g.p(),
                seed: g.seed(),
            },
            Repr::SampledRegular(r) => Structure::SampledRegular {
                n: r.n(),
                d: r.d(),
                seed: r.seed(),
            },
            Repr::CirculantLift(l) => Structure::CirculantLift {
                n: l.n(),
                jumps: l.jumps(),
                seed: l.seed(),
            },
            Repr::Materialized(g) => Structure::Materialized(g),
        }
    }

    /// Whether the backend is closed-form (a handful of integers, no
    /// adjacency in memory). Sampled backends are *not* implicit: they
    /// cache realized adjacency (`O(m)` once touched).
    pub fn is_implicit(&self) -> bool {
        !matches!(
            self.repr,
            Repr::Materialized(_) | Repr::Gnp(_) | Repr::SampledRegular(_) | Repr::CirculantLift(_)
        )
    }

    /// Whether the backend is a seeded sampled random graph
    /// ([`Topology::gnp`], [`Topology::random_regular`],
    /// [`Topology::circulant_lift`]): adjacency is a deterministic
    /// function of the seed, realized lazily.
    pub fn is_sampled(&self) -> bool {
        matches!(
            self.repr,
            Repr::Gnp(_) | Repr::SampledRegular(_) | Repr::CirculantLift(_)
        )
    }

    /// Short backend name for reports (`"complete"`, `"materialized"`, …).
    pub fn backend_name(&self) -> &'static str {
        match self.repr {
            Repr::Complete { .. } => "complete",
            Repr::Star { .. } => "star",
            Repr::Circulant { .. } => "circulant",
            Repr::CompleteBipartite { .. } => "complete-bipartite",
            Repr::TwoCliques { .. } => "two-cliques",
            Repr::Gnp(_) => "sampled-gnp",
            Repr::SampledRegular(_) => "sampled-regular",
            Repr::CirculantLift(_) => "circulant-lift",
            Repr::Materialized(_) => "materialized",
        }
    }

    // -- graph queries ------------------------------------------------------

    /// Number of nodes.
    pub fn n(&self) -> usize {
        match &self.repr {
            Repr::Complete { n }
            | Repr::Star { n, .. }
            | Repr::Circulant { n, .. }
            | Repr::TwoCliques { n, .. } => *n,
            Repr::CompleteBipartite { a, b } => a + b,
            Repr::Gnp(g) => g.n(),
            Repr::SampledRegular(r) => r.n(),
            Repr::CirculantLift(l) => l.n(),
            Repr::Materialized(g) => g.n(),
        }
    }

    /// Number of edges. On the sampled `G(n, p)` backend this realizes
    /// the full adjacency (the edge count is itself random).
    pub fn m(&self) -> usize {
        match &self.repr {
            Repr::Complete { n } => n * (n - 1) / 2,
            Repr::Star { n, .. } => n - 1,
            Repr::Circulant { n, deltas, .. } => n * deltas.len() / 2,
            Repr::CompleteBipartite { a, b } => a * b,
            Repr::TwoCliques { n, left, .. } => {
                let r = n - left;
                left * (left - 1) / 2 + r * (r - 1) / 2 + 1
            }
            Repr::Gnp(g) => g.m(),
            Repr::SampledRegular(r) => r.n() * r.d() / 2,
            Repr::CirculantLift(l) => l.m(),
            Repr::Materialized(g) => g.m(),
        }
    }

    /// Total volume `Σ_v d_v = 2m`.
    pub fn volume(&self) -> usize {
        2 * self.m()
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        let vu = v as usize;
        assert!(vu < self.n(), "node {v} outside 0..{}", self.n());
        match &self.repr {
            Repr::Complete { n } => n - 1,
            Repr::Star { n, center } => {
                if v == *center {
                    n - 1
                } else {
                    1
                }
            }
            Repr::Circulant { deltas, .. } => deltas.len(),
            Repr::CompleteBipartite { a, b } => {
                if vu < *a {
                    *b
                } else {
                    *a
                }
            }
            Repr::TwoCliques { n, left, bridge } => {
                let side = if vu < *left { *left } else { n - left };
                let on_bridge = v == bridge.0 || v == bridge.1;
                side - 1 + usize::from(on_bridge)
            }
            Repr::Gnp(g) => g.degree(v),
            Repr::SampledRegular(r) => r.graph().degree(v),
            Repr::CirculantLift(l) => l.degree(),
            Repr::Materialized(g) => g.degree(v),
        }
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        match &self.repr {
            Repr::Complete { n } => n - 1,
            Repr::Star { n, .. } => n - 1,
            Repr::Circulant { deltas, .. } => deltas.len(),
            Repr::CompleteBipartite { a, b } => (*a).max(*b),
            Repr::TwoCliques { n, left, .. } => (*left).max(n - left),
            Repr::Gnp(g) => (0..g.n() as NodeId).map(|v| g.degree(v)).max().unwrap_or(0),
            Repr::SampledRegular(r) => r.d(),
            Repr::CirculantLift(l) => l.degree(),
            Repr::Materialized(g) => g.max_degree(),
        }
    }

    /// Minimum degree.
    pub fn min_degree(&self) -> usize {
        match &self.repr {
            Repr::Complete { n } => n - 1,
            Repr::Star { n, .. } => usize::from(*n >= 2),
            Repr::Circulant { deltas, .. } => deltas.len(),
            Repr::CompleteBipartite { a, b } => (*a).min(*b),
            Repr::TwoCliques { n, left, .. } => {
                // A singleton side consists of the bridge endpoint alone
                // (degree 1); a larger side contains a non-bridge node of
                // degree `side − 1`.
                let side_min = |s: usize| if s == 1 { 1 } else { s - 1 };
                side_min(*left).min(side_min(n - left))
            }
            Repr::Gnp(g) => (0..g.n() as NodeId).map(|v| g.degree(v)).min().unwrap_or(0),
            Repr::SampledRegular(r) => r.d(),
            Repr::CirculantLift(l) => l.degree(),
            Repr::Materialized(g) => g.min_degree(),
        }
    }

    /// Whether every node has the same degree.
    pub fn is_regular(&self) -> bool {
        self.max_degree() == self.min_degree()
    }

    /// Whether the edge `{u, v}` exists. Out-of-range endpoints yield
    /// `false`, mirroring [`Graph::has_edge`].
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let n = self.n();
        let (uu, vv) = (u as usize, v as usize);
        if uu >= n || vv >= n || u == v {
            return false;
        }
        match &self.repr {
            Repr::Complete { .. } => true,
            Repr::Star { center, .. } => u == *center || v == *center,
            Repr::Circulant { n, jumps, .. } => {
                let diff = (vv + n - uu) % n;
                let dist = diff.min(n - diff) as u32;
                jumps.binary_search(&dist).is_ok()
            }
            Repr::CompleteBipartite { a, .. } => (uu < *a) != (vv < *a),
            Repr::TwoCliques { left, bridge, .. } => {
                let same_side = (uu < *left) == (vv < *left);
                same_side
                    || (u.min(v), u.max(v)) == (bridge.0.min(bridge.1), bridge.0.max(bridge.1))
            }
            Repr::Gnp(g) => g.has_edge(u, v),
            Repr::SampledRegular(r) => r.graph().has_edge(u, v),
            Repr::CirculantLift(l) => l.has_edge(u, v),
            Repr::Materialized(g) => g.has_edge(u, v),
        }
    }

    /// The `i`-th neighbor of `v`, `0 ≤ i < degree(v)` (see the module
    /// docs for the ordering contract).
    ///
    /// Out-of-range `v` or `i` panic in debug builds (and for the
    /// materialized backend in all builds); release builds on implicit
    /// backends skip the check — this is the per-event hot path — and
    /// return an unspecified node id.
    pub fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        debug_assert!(
            i < self.degree(v),
            "neighbor index {i} out of range for node {v}"
        );
        // Enumerate {0..bound} \ {v} in increasing order.
        let skip_self = |v: NodeId, i: usize| -> NodeId {
            if (i as u32) < v {
                i as NodeId
            } else {
                i as NodeId + 1
            }
        };
        match &self.repr {
            Repr::Complete { .. } => skip_self(v, i),
            Repr::Star { center, .. } => {
                if v == *center {
                    skip_self(*center, i)
                } else {
                    *center
                }
            }
            Repr::Circulant { n, deltas, .. } => {
                (((v as usize) + deltas[i] as usize) % n) as NodeId
            }
            Repr::CompleteBipartite { a, .. } => {
                if (v as usize) < *a {
                    (*a + i) as NodeId
                } else {
                    i as NodeId
                }
            }
            Repr::TwoCliques { left, bridge, .. } => {
                let l = *left;
                if (v as usize) < l {
                    // Left-clique neighbors in 0..left, then (for the
                    // bridge endpoint) the right endpoint, which has the
                    // largest id among its neighbors.
                    if i < l - 1 {
                        skip_self(v, i)
                    } else {
                        debug_assert_eq!(v, bridge.0);
                        bridge.1
                    }
                } else if v == bridge.1 {
                    // The left endpoint precedes every right-clique id.
                    if i == 0 {
                        bridge.0
                    } else {
                        let j = l + i - 1;
                        if (j as u32) < v {
                            j as NodeId
                        } else {
                            j as NodeId + 1
                        }
                    }
                } else {
                    let j = l + i;
                    if (j as u32) < v {
                        j as NodeId
                    } else {
                        j as NodeId + 1
                    }
                }
            }
            Repr::Gnp(g) => g.row(v)[i],
            Repr::SampledRegular(r) => r.graph().neighbors(v)[i],
            Repr::CirculantLift(l) => l.neighbor(v, i),
            Repr::Materialized(g) => g.neighbors(v)[i],
        }
    }

    /// The neighbors of `v` as a contiguous sorted slice, when the backend
    /// stores (or has realized) one: materialized CSR and the sampled
    /// `G(n, p)` / random-regular backends. Closed-form backends and the
    /// circulant lift answer `None` — enumerate through
    /// [`Topology::for_each_neighbor`] there.
    pub fn neighbors_slice(&self, v: NodeId) -> Option<&[NodeId]> {
        match &self.repr {
            Repr::Gnp(g) => Some(g.row(v)),
            Repr::SampledRegular(r) => Some(r.graph().neighbors(v)),
            Repr::Materialized(g) => Some(g.neighbors(v)),
            _ => None,
        }
    }

    /// Calls `f` for every neighbor of `v` (in the [`Topology::neighbor`]
    /// order).
    pub fn for_each_neighbor(&self, v: NodeId, mut f: impl FnMut(NodeId)) {
        if let Some(row) = self.neighbors_slice(v) {
            for &u in row {
                f(u);
            }
            return;
        }
        for i in 0..self.degree(v) {
            f(self.neighbor(v, i));
        }
    }

    /// Collects the neighbors of `v` into a vector (allocates; prefer
    /// [`Topology::for_each_neighbor`] on hot paths).
    pub fn neighbors_vec(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_neighbor(v, |u| out.push(u));
        out
    }

    // -- materialization ----------------------------------------------------

    /// The wrapped graph, when the backend is materialized.
    pub fn as_graph(&self) -> Option<&Graph> {
        match &self.repr {
            Repr::Materialized(g) => Some(g),
            _ => None,
        }
    }

    /// Builds the CSR [`Graph`] this topology describes. O(n + m) time and
    /// memory — `O(n²)` for dense backends, so reserve this for analysis
    /// paths (conductance, spectra) at sizes where CSR is affordable.
    pub fn materialize(&self) -> Graph {
        match &self.repr {
            Repr::Materialized(g) => return g.clone(),
            // Sampled backends have O(n + m) materialization paths of
            // their own (no per-index queries).
            Repr::Gnp(g) => return g.materialize(),
            Repr::SampledRegular(r) => return r.graph().clone(),
            _ => {}
        }
        let n = self.n();
        let mut b = GraphBuilder::new(n);
        for v in 0..n as NodeId {
            self.for_each_neighbor(v, |u| {
                if v < u {
                    b.add_edge(v, u)
                        .expect("implicit backends emit valid edges");
                }
            });
        }
        b.build()
    }

    /// The graph as copy-on-write: borrowed for materialized backends
    /// (and for the sampled random-regular backend, whose realization is
    /// itself a cached [`Graph`]), built on the fly (see
    /// [`Topology::materialize`]) for everything else.
    pub fn graph_cow(&self) -> Cow<'_, Graph> {
        match &self.repr {
            Repr::Materialized(g) => Cow::Borrowed(g),
            Repr::SampledRegular(r) => Cow::Borrowed(r.graph()),
            _ => Cow::Owned(self.materialize()),
        }
    }
}

impl From<Graph> for Topology {
    fn from(g: Graph) -> Self {
        Topology::materialized(g)
    }
}

/// Validates a circulant jump set (`n ≥ 3`, non-empty, distinct, each in
/// `1..=n/2`) and expands it into `(sorted jumps, signed neighbor
/// deltas)` — shared by [`Topology::circulant`] and
/// [`Topology::circulant_lift`].
fn validate_circulant(n: usize, jumps: &[usize]) -> Result<(Vec<u32>, Vec<u32>), GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter(format!(
            "circulant needs n >= 3, got {n}"
        )));
    }
    if jumps.is_empty() {
        return Err(GraphError::InvalidParameter(
            "circulant needs at least one offset".into(),
        ));
    }
    let mut sorted: Vec<usize> = jumps.to_vec();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(GraphError::InvalidParameter(format!(
                "repeated offset {}",
                w[0]
            )));
        }
    }
    for &o in &sorted {
        if o == 0 || o > n / 2 {
            return Err(GraphError::InvalidParameter(format!(
                "offset {o} outside 1..={} for n = {n}",
                n / 2
            )));
        }
    }
    let mut deltas = Vec::with_capacity(2 * sorted.len());
    for &o in &sorted {
        deltas.push(o as u32);
        if 2 * o != n {
            deltas.push((n - o) as u32);
        }
    }
    Ok((sorted.into_iter().map(|o| o as u32).collect(), deltas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn assert_matches_graph(t: &Topology, g: &Graph) {
        assert_eq!(t.n(), g.n());
        assert_eq!(t.m(), g.m());
        assert_eq!(t.volume(), g.volume());
        assert_eq!(t.max_degree(), g.max_degree());
        assert_eq!(t.min_degree(), g.min_degree());
        assert_eq!(t.is_regular(), g.is_regular());
        for v in 0..g.n() as NodeId {
            assert_eq!(t.degree(v), g.degree(v), "degree of {v}");
            let mut nbrs = t.neighbors_vec(v);
            nbrs.sort_unstable();
            assert_eq!(nbrs, g.neighbors(v), "neighbors of {v}");
            for u in 0..g.n() as NodeId {
                assert_eq!(t.has_edge(v, u), g.has_edge(v, u), "edge ({v}, {u})");
            }
        }
        assert_eq!(&t.materialize(), g);
    }

    #[test]
    fn complete_matches_generator() {
        for n in [2, 3, 7, 20] {
            let t = Topology::complete(n).unwrap();
            assert_matches_graph(&t, &generators::complete(n).unwrap());
            assert!(t.is_implicit());
        }
        assert!(Topology::complete(1).is_err());
    }

    #[test]
    fn star_matches_generator() {
        for (n, c) in [(2, 0), (5, 0), (9, 4), (9, 8)] {
            let t = Topology::star(n, c).unwrap();
            assert_matches_graph(&t, &generators::star_with_center(n, c).unwrap());
        }
        assert!(Topology::star(1, 0).is_err());
        assert!(Topology::star(4, 4).is_err());
    }

    #[test]
    fn circulant_matches_generator() {
        for (n, jumps) in [
            (3usize, vec![1usize]),
            (8, vec![1, 2]),
            (8, vec![1, 4]), // half-n jump contributes degree 1
            (11, vec![2, 5]),
            (12, vec![1, 2, 6]),
        ] {
            let t = Topology::circulant(n, &jumps).unwrap();
            assert_matches_graph(&t, &generators::circulant(n, &jumps).unwrap());
        }
        assert!(Topology::circulant(2, &[1]).is_err());
        assert!(Topology::circulant(8, &[]).is_err());
        assert!(Topology::circulant(8, &[2, 2]).is_err());
        assert!(Topology::circulant(8, &[5]).is_err());
    }

    #[test]
    fn regular_circulant_matches_generator() {
        for (n, d) in [(10usize, 4usize), (9, 2), (101, 16)] {
            let t = Topology::regular_circulant(n, d).unwrap();
            assert_matches_graph(&t, &generators::regular_circulant(n, d).unwrap());
        }
        assert!(Topology::regular_circulant(10, 3).is_err());
        assert!(Topology::regular_circulant(4, 4).is_err());
    }

    #[test]
    fn complete_bipartite_matches_generator() {
        for (a, b) in [(1usize, 1usize), (2, 5), (4, 4), (7, 3)] {
            let t = Topology::complete_bipartite(a, b).unwrap();
            assert_matches_graph(&t, &generators::complete_bipartite(a, b).unwrap());
        }
        assert!(Topology::complete_bipartite(0, 3).is_err());
    }

    #[test]
    fn two_cliques_matches_explicit_build() {
        // left {0..4}, right {4..9}, bridge (0, 8): the Figure 1(a) later
        // graph for N = 9.
        let reference = |n: usize, left: usize, bridge: (NodeId, NodeId)| {
            let mut b = GraphBuilder::new(n);
            for u in 0..left as NodeId {
                for v in (u + 1)..left as NodeId {
                    b.add_edge(u, v).unwrap();
                }
            }
            for u in left as NodeId..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.add_edge(bridge.0, bridge.1).unwrap();
            b.build()
        };
        for (n, left, bridge) in [
            (9usize, 4usize, (0u32, 8u32)),
            (9, 8, (0, 8)), // G(0): clique + pendant
            (6, 3, (2, 3)),
            (2, 1, (0, 1)),
        ] {
            let t = Topology::two_cliques(n, left, bridge).unwrap();
            assert_matches_graph(&t, &reference(n, left, bridge));
        }
        assert!(Topology::two_cliques(6, 0, (0, 3)).is_err());
        assert!(Topology::two_cliques(6, 6, (0, 3)).is_err());
        assert!(Topology::two_cliques(6, 3, (3, 4)).is_err());
        assert!(Topology::two_cliques(6, 3, (0, 2)).is_err());
    }

    #[test]
    fn materialized_passthrough() {
        let g = generators::barbell(4).unwrap();
        let t = Topology::from(g.clone());
        assert!(!t.is_implicit());
        assert_eq!(t.as_graph(), Some(&g));
        assert_matches_graph(&t, &g);
        assert!(matches!(t.graph_cow(), Cow::Borrowed(_)));
    }

    #[test]
    fn implicit_neighbor_order_is_sorted() {
        // Everything except circulant promises increasing-id enumeration
        // (so materialized and implicit backends consume identical RNG
        // streams when sampling uniform neighbors).
        for t in [
            Topology::complete(9).unwrap(),
            Topology::star(9, 4).unwrap(),
            Topology::complete_bipartite(4, 5).unwrap(),
            Topology::two_cliques(9, 4, (0, 8)).unwrap(),
        ] {
            for v in 0..t.n() as NodeId {
                let nbrs = t.neighbors_vec(v);
                assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "node {v}: {nbrs:?}");
            }
        }
    }

    #[test]
    fn structure_views() {
        assert_eq!(
            Topology::complete(5).unwrap().structure(),
            Structure::Complete { n: 5 }
        );
        assert_eq!(
            Topology::star(5, 2).unwrap().structure(),
            Structure::Star { n: 5, center: 2 }
        );
        match Topology::circulant(8, &[2, 1]).unwrap().structure() {
            Structure::Circulant { n: 8, jumps } => assert_eq!(jumps, &[1, 2]),
            other => panic!("unexpected structure {other:?}"),
        }
        assert_eq!(Topology::complete(5).unwrap().backend_name(), "complete");
        let g = generators::path(3).unwrap();
        match Topology::from(g.clone()).structure() {
            Structure::Materialized(inner) => assert_eq!(inner, &g),
            other => panic!("unexpected structure {other:?}"),
        }
    }

    #[test]
    fn graph_cow_materializes_implicit() {
        let t = Topology::star(6, 0).unwrap();
        let cow = t.graph_cow();
        assert_eq!(cow.m(), 5);
        assert!(matches!(cow, Cow::Owned(_)));
    }

    #[test]
    fn sampled_gnp_matches_its_materialization() {
        // The sampled backend and its CSR twin answer every query
        // identically — including sorted neighbor order, so RNG-stream
        // parity holds.
        for (n, p, seed) in [(20usize, 0.3, 1u64), (40, 0.08, 2), (12, 1.0, 3)] {
            let t = Topology::gnp(n, p, seed).unwrap();
            assert!(t.is_sampled() && !t.is_implicit());
            assert_eq!(t.backend_name(), "sampled-gnp");
            let g = t.materialize();
            assert_matches_graph(&t, &g);
        }
        assert!(Topology::gnp(1, 0.5, 0).is_err());
        assert!(Topology::gnp(10, 0.0, 0).is_err());
        assert!(Topology::gnp(10, -0.2, 0).is_err());
        assert!(Topology::gnp(10, 1.01, 0).is_err());
    }

    #[test]
    fn sampled_gnp_structure_and_equality() {
        let t = Topology::gnp(30, 0.2, 9).unwrap();
        assert_eq!(
            t.structure(),
            Structure::SampledGnp {
                n: 30,
                p: 0.2,
                seed: 9
            }
        );
        // Equality is by parameters, not realization state.
        let u = Topology::gnp(30, 0.2, 9).unwrap();
        let _ = t.degree(0);
        assert_eq!(t, u);
        assert_ne!(t, Topology::gnp(30, 0.2, 10).unwrap());
    }

    #[test]
    fn sampled_regular_matches_its_materialization() {
        let t = Topology::random_regular(24, 4, 7).unwrap();
        assert!(t.is_sampled());
        assert_eq!(t.m(), 48); // n·d/2 without realizing
        assert_eq!((t.max_degree(), t.min_degree()), (4, 4));
        let g = t.materialize();
        assert_matches_graph(&t, &g);
        assert!(Topology::random_regular(10, 1, 0).is_err());
        assert!(Topology::random_regular(4, 4, 0).is_err());
        assert!(Topology::random_regular(5, 3, 0).is_err());
        match Topology::random_regular(24, 4, 7).unwrap().structure() {
            Structure::SampledRegular {
                n: 24,
                d: 4,
                seed: 7,
            } => {}
            other => panic!("unexpected structure {other:?}"),
        }
    }

    #[test]
    fn circulant_lift_is_a_relabeled_circulant() {
        let t = Topology::circulant_lift(17, 4, 5).unwrap();
        assert!(t.is_sampled());
        assert_eq!(t.backend_name(), "circulant-lift");
        assert_eq!((t.degree(0), t.m()), (4, 34));
        let g = t.materialize();
        // Neighbor enumeration is in lifted jump order (unsorted), so
        // compare sets per node.
        for v in 0..17u32 {
            let mut nbrs = t.neighbors_vec(v);
            nbrs.sort_unstable();
            assert_eq!(nbrs, g.neighbors(v), "node {v}");
            for u in 0..17u32 {
                assert_eq!(t.has_edge(v, u), g.has_edge(v, u));
            }
        }
        // Same degree sequence as the unlifted circulant; relabeled edges.
        let base = generators::regular_circulant(17, 4).unwrap();
        assert_eq!(g.m(), base.m());
        assert!(g.is_regular());
        match t.structure() {
            Structure::CirculantLift {
                n: 17,
                jumps,
                seed: 5,
            } => assert_eq!(jumps, &[1, 2]),
            other => panic!("unexpected structure {other:?}"),
        }
        assert!(Topology::circulant_lift(10, 3, 0).is_err());
        assert!(Topology::circulant_lift(4, 4, 0).is_err());
    }

    #[test]
    fn neighbors_slice_availability() {
        assert!(Topology::complete(5).unwrap().neighbors_slice(0).is_none());
        assert!(Topology::circulant_lift(9, 2, 0)
            .unwrap()
            .neighbors_slice(0)
            .is_none());
        let t = Topology::gnp(10, 0.5, 1).unwrap();
        let row = t.neighbors_slice(3).unwrap();
        assert_eq!(row, &t.neighbors_vec(3)[..]);
        let m = Topology::materialized(generators::path(4).unwrap());
        assert_eq!(m.neighbors_slice(1), Some(&[0u32, 2][..]));
    }
}
