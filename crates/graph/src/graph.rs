use crate::GraphError;
use serde::{Deserialize, Serialize};

/// Index of a node in a [`Graph`]. Graphs in this workspace always have node
/// set `{0, 1, …, n−1}`.
pub type NodeId = u32;

/// An immutable simple undirected graph in CSR (compressed sparse row) form.
///
/// Degrees are O(1), neighbor lists are contiguous sorted slices, and the
/// representation is cache-friendly — the cut-rate simulator touches
/// `neighbors(v)` on every infection, so this layout is the hot path of the
/// whole reproduction.
///
/// Construct with [`GraphBuilder`] or [`Graph::from_edges`].
///
/// # Example
///
/// ```
/// use gossip_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.has_edge(2, 3));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for node `v`.
    offsets: Vec<u32>,
    /// Concatenated sorted adjacency lists.
    neighbors: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge list.
    ///
    /// Duplicate edges are merged; `(u, v)` and `(v, u)` denote the same
    /// edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] or [`GraphError::NodeOutOfRange`]
    /// for invalid edges.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// A graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Whether the graph has no edges.
    pub fn is_empty_graph(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Sorted slice of the neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Whether the edge `{u, v}` exists (binary search, O(log deg)).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if (u as usize) >= self.n() || (v as usize) >= self.n() {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Total volume `Σ_v d_v = 2m`.
    pub fn volume(&self) -> usize {
        self.neighbors.len()
    }

    /// Maximum degree (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n())
            .map(|v| self.degree(v as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree (0 for an edgeless graph).
    pub fn min_degree(&self) -> usize {
        (0..self.n())
            .map(|v| self.degree(v as NodeId))
            .min()
            .unwrap_or(0)
    }

    /// Average degree `2m/n`.
    ///
    /// # Panics
    ///
    /// Panics for a graph with zero nodes.
    pub fn avg_degree(&self) -> f64 {
        assert!(self.n() > 0, "average degree of a zero-node graph");
        self.volume() as f64 / self.n() as f64
    }

    /// Whether every node has the same degree.
    pub fn is_regular(&self) -> bool {
        self.n() == 0 || self.max_degree() == self.min_degree()
    }

    /// Iterates every edge once as `(u, v)` with `u < v`.
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            graph: self,
            u: 0,
            idx: 0,
        }
    }

    /// Iterates all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n() as NodeId
    }
}

/// Iterator over the edges of a [`Graph`], produced by [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct Edges<'a> {
    graph: &'a Graph,
    u: NodeId,
    idx: usize,
}

impl Iterator for Edges<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.graph.n() as NodeId;
        while self.u < n {
            let nbrs = self.graph.neighbors(self.u);
            while self.idx < nbrs.len() {
                let v = nbrs[self.idx];
                self.idx += 1;
                if v > self.u {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.idx = 0;
        }
        None
    }
}

/// Incremental builder for [`Graph`].
///
/// Edges may be added in any order; duplicates are merged at
/// [`GraphBuilder::build`] time.
///
/// # Example
///
/// ```
/// # use gossip_graph::GraphBuilder;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(2, 1)?; // duplicate, merged
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] when `u == v` and
    /// [`GraphError::NodeOutOfRange`] when either endpoint is `≥ n`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if (u as usize) >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if (v as usize) >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        Ok(self)
    }

    /// Whether the (possibly not yet deduplicated) edge `{u, v}` has been
    /// added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Removes the edge `{u, v}` if present; returns whether it was.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        let before = self.edges.len();
        self.edges.retain(|e| *e != key);
        self.edges.len() != before
    }

    /// Number of (not yet deduplicated) edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finishes the graph, sorting adjacency lists and merging duplicates.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut degree = vec![0u32; self.n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0u32; self.n + 1];
        for v in 0..self.n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut neighbors = vec![0 as NodeId; offsets[self.n] as usize];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Adjacency of u is filled in increasing v for the (u, v) half, but
        // the (v, u) halves interleave; sort each list.
        for v in 0..self.n {
            neighbors[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Graph { offsets, neighbors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert!(g.is_empty_graph());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(g.m(), 3);
        assert_eq!(g.volume(), 6);
        assert!(g.is_regular());
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn duplicate_edges_merged() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn self_loop_rejected() {
        assert!(matches!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        ));
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
        assert_eq!(g.degree(2), 4);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = Graph::from_edges(3, &[(0, 2)]).unwrap();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn builder_remove_edge() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        assert!(b.remove_edge(1, 0));
        assert!(!b.remove_edge(1, 0));
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn degrees_and_means() {
        // Path 0-1-2-3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
        assert!(!g.is_regular());
    }

    #[test]
    fn edges_iterator_covers_all_once() {
        let edge_list = [(0, 3), (1, 3), (2, 3), (0, 1)];
        let g = Graph::from_edges(4, &edge_list).unwrap();
        let mut seen: Vec<_> = g.edges().collect();
        seen.sort_unstable();
        let mut expected: Vec<(NodeId, NodeId)> = vec![(0, 1), (0, 3), (1, 3), (2, 3)];
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }
}
