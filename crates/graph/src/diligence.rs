//! The paper's new graph measures: diligence and absolute diligence.
//!
//! For a cut `E(S, S̄)` with `0 < vol(S) ≤ vol(G)/2` the *diligence* of the
//! cut is
//! `ρ(S) = min_{{u,v} ∈ E(S,S̄)} max(d̄(S)/d_u, d̄(S)/d_v)` where
//! `d̄(S) = vol(S)/|S|` is the average degree of the smaller-volume side.
//! The diligence of `G` is `ρ(G) = min_S ρ(S)` (Section 1.1); it satisfies
//! `1/(n−1) ≤ ρ(G) ≤ 1` for connected `G` and is defined as `0` otherwise.
//!
//! The *absolute diligence* is the cut-free variant
//! `ρ̄(G) = min_{{u,v} ∈ E} max(1/d_u, 1/d_v)` (Section 5), computable in
//! `O(m)` at any scale.
//!
//! Intuition: conductance measures how many edges leave a set, diligence
//! measures how *fast* the lazy endpoints of those edges are relative to
//! the set's average degree — the paper shows the product `Φ·ρ` (not `Φ`
//! alone) governs asynchronous spread time in dynamic networks.

use crate::subsets::for_each_cut;
use crate::{connectivity, Graph, GraphError, NodeSet};

/// Absolute diligence `ρ̄(G) = min_{{u,v}∈E} max(1/d_u, 1/d_v)`, `O(m)`.
///
/// Returns `0` for an empty (edgeless) graph, matching the paper's
/// convention.
///
/// # Example
///
/// ```
/// use gossip_graph::{diligence, generators};
///
/// // Stars are absolutely 1-diligent: every edge has a degree-1 endpoint.
/// let star = generators::star(10).unwrap();
/// assert_eq!(diligence::absolute_diligence(&star), 1.0);
///
/// // A Δ-regular graph is absolutely 1/Δ-diligent.
/// let cycle = generators::cycle(10).unwrap();
/// assert!((diligence::absolute_diligence(&cycle) - 0.5).abs() < 1e-12);
/// ```
pub fn absolute_diligence(g: &Graph) -> f64 {
    let mut best: f64 = f64::INFINITY;
    for (u, v) in g.edges() {
        let du = g.degree(u) as f64;
        let dv = g.degree(v) as f64;
        best = best.min((1.0 / du).max(1.0 / dv));
    }
    if best.is_finite() {
        best
    } else {
        0.0
    }
}

/// The diligence `ρ(S)` of one cut, for `S` with
/// `0 < vol(S) ≤ vol(G)/2`.
///
/// Returns `None` when the volume constraint fails or the cut has no
/// crossing edges (the paper's minimum never attains such cuts; for a
/// disconnected graph the overall `ρ(G)` is 0 by convention).
///
/// # Panics
///
/// Panics if `s`'s universe differs from `g.n()`.
pub fn cut_diligence(g: &Graph, s: &NodeSet) -> Option<f64> {
    assert_eq!(s.universe(), g.n(), "node set universe mismatch");
    let vol_s: usize = s.iter().map(|v| g.degree(v)).sum();
    if vol_s == 0 || 2 * vol_s > g.volume() {
        return None;
    }
    let d_bar = vol_s as f64 / s.len() as f64;
    let mut best = f64::INFINITY;
    let mut has_edge = false;
    for v in s.iter() {
        let dv = g.degree(v) as f64;
        for &u in g.neighbors(v) {
            if !s.contains(u) {
                has_edge = true;
                best = best.min((d_bar / dv).max(d_bar / g.degree(u) as f64));
            }
        }
    }
    if has_edge {
        Some(best)
    } else {
        None
    }
}

/// Exact diligence `ρ(G)` by enumerating all cuts.
///
/// Returns `0` for disconnected graphs (paper convention). For connected
/// graphs the result lies in `[1/(n−1), 1]`.
///
/// # Errors
///
/// [`GraphError::TooLargeForExact`] above
/// [`crate::EXACT_ENUMERATION_LIMIT`] nodes; [`GraphError::EmptyGraph`] for
/// graphs with fewer than two nodes or zero edges.
///
/// # Example
///
/// ```
/// use gossip_graph::{diligence, generators};
///
/// // Regular graphs are 1-diligent (paper §1.1): d̄(S)/d_u can reach 1 but
/// // the max over an edge's endpoints is always ≥ 1, and some cut attains 1.
/// let g = generators::cycle(8).unwrap();
/// assert!((diligence::exact_diligence(&g).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn exact_diligence(g: &Graph) -> Result<f64, GraphError> {
    if g.is_empty_graph() {
        return Err(GraphError::EmptyGraph);
    }
    if !connectivity::is_connected(g) {
        return Ok(0.0);
    }
    let total_vol = g.volume();
    let mut rho = f64::INFINITY;
    for_each_cut(g, |c| {
        // Evaluate the side with the smaller volume (either S or S̄);
        // the enumeration only hands us S explicitly, so handle both.
        let (vol_small, size_small, small_is_s) = if c.vol_s <= c.vol_comp {
            (c.vol_s, c.size_s, true)
        } else {
            (c.vol_comp, g.n() - c.size_s, false)
        };
        if vol_small == 0 || 2 * vol_small > total_vol {
            return;
        }
        let d_bar = vol_small as f64 / size_small as f64;
        let mut cut_best = f64::INFINITY;
        for &(u, v) in c.cut_edges {
            let du = g.degree(u) as f64;
            let dv = g.degree(v) as f64;
            cut_best = cut_best.min((d_bar / du).max(d_bar / dv));
        }
        // `small_is_s` only affected d̄; the edge set is the same.
        let _ = small_is_s;
        rho = rho.min(cut_best);
    })?;
    Ok(rho)
}

/// Lower bound `1/(n−1)` that every connected `n`-node graph's diligence
/// satisfies (paper Section 1.1).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn diligence_floor(n: usize) -> f64 {
    assert!(n >= 2, "diligence floor needs n >= 2");
    1.0 / (n - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn absolute_diligence_of_families() {
        // Star: 1. Cycle (2-regular): 1/2. K_n: 1/(n-1). Path: 1/2's min edge
        // has endpoints of degree 2,2 in the middle -> 1/2.
        assert_eq!(absolute_diligence(&generators::star(7).unwrap()), 1.0);
        assert!((absolute_diligence(&generators::cycle(6).unwrap()) - 0.5).abs() < 1e-12);
        let k5 = generators::complete(5).unwrap();
        assert!((absolute_diligence(&k5) - 0.25).abs() < 1e-12);
        let path = generators::path(5).unwrap();
        assert!((absolute_diligence(&path) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absolute_diligence_empty_graph_zero() {
        assert_eq!(absolute_diligence(&Graph::empty(5)), 0.0);
    }

    #[test]
    fn regular_graphs_are_1_diligent() {
        // Paper §1.1: if G(t) is Δ-regular then it is 1-diligent.
        for g in [
            generators::cycle(8).unwrap(),
            generators::complete(6).unwrap(),
            generators::complete_bipartite(3, 3).unwrap(),
        ] {
            let rho = exact_diligence(&g).unwrap();
            assert!((rho - 1.0).abs() < 1e-12, "rho = {rho}");
        }
    }

    #[test]
    fn star_is_1_diligent() {
        // Paper §1.1: a sequence of stars is 1-diligent.
        for n in [3usize, 5, 10] {
            let g = generators::star(n).unwrap();
            let rho = exact_diligence(&g).unwrap();
            assert!((rho - 1.0).abs() < 1e-12, "n={n}, rho={rho}");
        }
    }

    #[test]
    fn diligence_bounds_hold() {
        // 1/(n-1) <= ρ(G) <= 1 for every connected graph (paper §1.1).
        let graphs = [
            generators::path(7).unwrap(),
            generators::barbell(4).unwrap(),
            generators::complete_bipartite(2, 5).unwrap(),
            generators::star(6).unwrap(),
        ];
        for g in graphs {
            let n = g.n();
            let rho = exact_diligence(&g).unwrap();
            assert!(
                rho >= diligence_floor(n) - 1e-12 && rho <= 1.0 + 1e-12,
                "n={n}, rho={rho}"
            );
        }
    }

    #[test]
    fn disconnected_diligence_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(exact_diligence(&g).unwrap(), 0.0);
    }

    #[test]
    fn cut_diligence_respects_volume_constraint() {
        let g = generators::star(5).unwrap();
        // S = {center}: vol = 4 = vol(G)/2, allowed.
        let mut s = NodeSet::new(5);
        s.insert(0);
        let rho = cut_diligence(&g, &s).unwrap();
        // d̄(S) = 4, cut edges all have endpoints deg 4 (center) and 1 (leaf):
        // max(4/4, 4/1) = 4 ... wait: max(d̄/d_u, d̄/d_v) = max(1, 4) = 4.
        assert!((rho - 4.0).abs() < 1e-12);
        // S = all leaves: vol = 4 <= 4, d̄ = 1, each edge max(1/1, 1/4) = 1.
        let mut leaves = NodeSet::new(5);
        for v in 1..5 {
            leaves.insert(v);
        }
        assert!((cut_diligence(&g, &leaves).unwrap() - 1.0).abs() < 1e-12);
        // S = too big by volume: center + leaf.
        let mut big = NodeSet::new(5);
        big.insert(0);
        big.insert(1);
        assert_eq!(cut_diligence(&g, &big), None);
    }

    #[test]
    fn cut_diligence_empty_set_none() {
        let g = generators::cycle(4).unwrap();
        let s = NodeSet::new(4);
        assert_eq!(cut_diligence(&g, &s), None);
    }

    #[test]
    fn exact_diligence_is_min_over_cut_diligences() {
        // Cross-check enumeration against the public per-cut function on a
        // small irregular graph.
        let g = generators::barbell(3).unwrap();
        let n = g.n();
        let mut best = f64::INFINITY;
        for mask in 1u32..(1 << n) - 1 {
            let mut s = NodeSet::new(n);
            for v in 0..n {
                if mask >> v & 1 == 1 {
                    s.insert(v as u32);
                }
            }
            if let Some(r) = cut_diligence(&g, &s) {
                best = best.min(r);
            }
        }
        let rho = exact_diligence(&g).unwrap();
        assert!((rho - best).abs() < 1e-12, "{rho} vs {best}");
    }

    #[test]
    fn near_clique_diligence_near_floor() {
        // K_n plus a pendant node: the pendant cut forces ρ ≈ d̄/(n-?) small.
        let n = 7usize;
        let mut b = crate::GraphBuilder::new(n + 1);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                b.add_edge(u, v).unwrap();
            }
        }
        b.add_edge(0, n as u32).unwrap();
        let g = b.build();
        let rho = exact_diligence(&g).unwrap();
        // S = {pendant}: d̄ = 1, edge {pendant, 0} has degrees 1 and n:
        // max(1/1, 1/n) = 1 -> that cut gives 1. The minimising cut is
        // elsewhere; just check the bounds and that it is below 1.
        assert!(rho >= diligence_floor(n + 1) - 1e-12);
        assert!(rho < 1.0);
    }

    #[test]
    fn empty_graph_error() {
        assert!(matches!(
            exact_diligence(&Graph::empty(3)),
            Err(GraphError::EmptyGraph)
        ));
    }

    use crate::Graph;
}
