//! Cut measurements against an explicit node set.
//!
//! The asynchronous push–pull process is driven entirely by the cut between
//! informed and uninformed nodes: the paper's Equation (1) gives the rate at
//! which the next node becomes informed as
//! `λ = Σ_{{u,v} ∈ E(I, U)} (1/d_u + 1/d_v)`. This module computes cut edge
//! counts, volumes, and that rate for an arbitrary `S` (usually the informed
//! set).

use crate::{Graph, NodeId, NodeSet};

/// Number of edges crossing `S` and its complement.
///
/// # Panics
///
/// Panics if `s`'s universe differs from `g.n()`.
///
/// # Example
///
/// ```
/// use gossip_graph::{cut, generators, NodeSet};
///
/// let g = generators::path(4).unwrap(); // 0-1-2-3
/// let mut s = NodeSet::new(4);
/// s.insert(0);
/// s.insert(1);
/// assert_eq!(cut::cut_edge_count(&g, &s), 1); // only {1,2} crosses
/// ```
pub fn cut_edge_count(g: &Graph, s: &NodeSet) -> usize {
    check_universe(g, s);
    let mut count = 0usize;
    for v in s.iter() {
        for &u in g.neighbors(v) {
            if !s.contains(u) {
                count += 1;
            }
        }
    }
    count
}

/// The edges crossing `S`, each as `(inside, outside)`.
pub fn cut_edges(g: &Graph, s: &NodeSet) -> Vec<(NodeId, NodeId)> {
    check_universe(g, s);
    let mut edges = Vec::new();
    for v in s.iter() {
        for &u in g.neighbors(v) {
            if !s.contains(u) {
                edges.push((v, u));
            }
        }
    }
    edges
}

/// `vol(S) = Σ_{v∈S} d_v`.
pub fn volume(g: &Graph, s: &NodeSet) -> usize {
    check_universe(g, s);
    s.iter().map(|v| g.degree(v)).sum()
}

/// The push–pull cut rate of Equation (1):
/// `λ(S) = Σ_{{u,v} ∈ E(S, S̄)} (1/d_u + 1/d_v)`.
///
/// When `S` is the informed set, the first uninformed node becomes informed
/// after an `Exp(λ)` waiting time.
pub fn pushpull_cut_rate(g: &Graph, s: &NodeSet) -> f64 {
    check_universe(g, s);
    let mut rate = 0.0;
    for v in s.iter() {
        let dv = g.degree(v) as f64;
        for &u in g.neighbors(v) {
            if !s.contains(u) {
                rate += 1.0 / dv + 1.0 / g.degree(u) as f64;
            }
        }
    }
    rate
}

/// Lower bound on the cut rate used in the paper's Inequality (3):
/// `Σ_{{u,v} ∈ E(S,S̄)} max(1/d_u, 1/d_v)`.
pub fn absolute_cut_rate(g: &Graph, s: &NodeSet) -> f64 {
    check_universe(g, s);
    let mut rate = 0.0;
    for v in s.iter() {
        let dv = g.degree(v) as f64;
        for &u in g.neighbors(v) {
            if !s.contains(u) {
                rate += (1.0 / dv).max(1.0 / g.degree(u) as f64);
            }
        }
    }
    rate
}

/// Conductance of the specific cut `{S, S̄}`:
/// `|E(S,S̄)| / min(vol(S), vol(S̄))`.
///
/// Returns `None` when either side has zero volume (the ratio is undefined;
/// the paper's minimum simply never attains such cuts).
pub fn cut_conductance(g: &Graph, s: &NodeSet) -> Option<f64> {
    check_universe(g, s);
    let vol_s = volume(g, s);
    let vol_comp = g.volume() - vol_s;
    let denom = vol_s.min(vol_comp);
    if denom == 0 {
        return None;
    }
    Some(cut_edge_count(g, s) as f64 / denom as f64)
}

fn check_universe(g: &Graph, s: &NodeSet) {
    assert_eq!(
        s.universe(),
        g.n(),
        "node set universe {} does not match graph size {}",
        s.universe(),
        g.n()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn set(n: usize, members: &[NodeId]) -> NodeSet {
        let mut s = NodeSet::new(n);
        for &v in members {
            s.insert(v);
        }
        s
    }

    #[test]
    fn path_cut_basics() {
        let g = generators::path(4).unwrap();
        let s = set(4, &[0, 1]);
        assert_eq!(cut_edge_count(&g, &s), 1);
        assert_eq!(volume(&g, &s), 3); // d0=1, d1=2
                                       // λ across {1,2}: 1/d1 + 1/d2 = 1/2 + 1/2.
        assert!((pushpull_cut_rate(&g, &s) - 1.0).abs() < 1e-12);
        // max(1/2, 1/2) = 1/2.
        assert!((absolute_cut_rate(&g, &s) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn star_center_cut() {
        // Star with center 0 and 4 leaves: S = {0}.
        let g = generators::star(5).unwrap();
        let s = set(5, &[0]);
        assert_eq!(cut_edge_count(&g, &s), 4);
        // Each cut edge contributes 1/4 + 1 = 1.25.
        assert!((pushpull_cut_rate(&g, &s) - 5.0).abs() < 1e-12);
        // max(1/4, 1) = 1 per edge.
        assert!((absolute_cut_rate(&g, &s) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cut_rate_symmetric_in_complement() {
        let g = generators::complete(6).unwrap();
        let s = set(6, &[0, 1]);
        let mut comp = NodeSet::new(6);
        for v in s.iter_complement() {
            comp.insert(v);
        }
        assert!((pushpull_cut_rate(&g, &s) - pushpull_cut_rate(&g, &comp)).abs() < 1e-12);
        assert_eq!(cut_edge_count(&g, &s), cut_edge_count(&g, &comp));
    }

    #[test]
    fn empty_and_full_sets() {
        let g = generators::complete(4).unwrap();
        let empty = NodeSet::new(4);
        assert_eq!(cut_edge_count(&g, &empty), 0);
        assert_eq!(pushpull_cut_rate(&g, &empty), 0.0);
        assert_eq!(cut_conductance(&g, &empty), None);
        let full = NodeSet::full(4);
        assert_eq!(cut_edge_count(&g, &full), 0);
        assert_eq!(cut_conductance(&g, &full), None);
    }

    #[test]
    fn cut_conductance_of_half_clique() {
        let g = generators::complete(4).unwrap();
        let s = set(4, &[0, 1]);
        // |E(S,S̄)| = 4, min vol = 6 -> 2/3.
        assert!((cut_conductance(&g, &s).unwrap() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn cut_edges_list_matches_count() {
        let g = generators::cycle(8).unwrap();
        let s = set(8, &[0, 1, 2, 5]);
        let edges = cut_edges(&g, &s);
        assert_eq!(edges.len(), cut_edge_count(&g, &s));
        for (inside, outside) in edges {
            assert!(s.contains(inside));
            assert!(!s.contains(outside));
            assert!(g.has_edge(inside, outside));
        }
    }

    #[test]
    #[should_panic]
    fn universe_mismatch_panics() {
        let g = generators::path(4).unwrap();
        let s = NodeSet::new(5);
        cut_edge_count(&g, &s);
    }
}
