//! # gossip-graph
//!
//! Graph substrate for the `dynamic-rumor` workspace, the Rust reproduction
//! of *Tight Analysis of Asynchronous Rumor Spreading in Dynamic Networks*
//! (Pourmiri & Mans, PODC 2020).
//!
//! The crate provides:
//!
//! * [`Graph`] — an immutable CSR (compressed sparse row) simple graph with
//!   O(1) degree lookups and contiguous neighbor slices, built through
//!   [`GraphBuilder`];
//! * [`Topology`] — the graph *view* the simulators consume: implicit
//!   closed-form backends (complete, star, circulant, complete bipartite,
//!   two bridged cliques) with O(1) degree/neighbor queries and O(n)-free
//!   memory, seeded *sampled* random-graph backends (`G(n, p)`, random
//!   regular, circulant lift — lazy adjacency realized by geometric
//!   skipping, see [`sampled`]), plus a [`Graph`]-backed materialized
//!   fallback;
//! * [`NodeSet`] — a bitset over nodes (informed sets, cut sides);
//! * [`cut`] — cut edges, volumes, and the push–pull cut rate `λ` of the
//!   paper's Equation (1);
//! * [`conductance`] — exact conductance `Φ(G)` by subset enumeration and a
//!   spectral Cheeger estimate for large graphs ([`spectral`]);
//! * [`diligence`] — the paper's new graph measures: diligence `ρ(G)`
//!   (Section 1.1) and absolute diligence `ρ̄(G)` (Section 5);
//! * [`generators`] — every graph family the paper uses, including the
//!   adversarial `H_{k,Δ}(A,B)` construction of Section 4 and the
//!   `G(A, d₁, d₂)` near-regular construction of Section 5.1.
//!
//! # Example
//!
//! ```
//! use gossip_graph::{generators, diligence, conductance};
//!
//! // A star is 1-diligent and absolutely 1-diligent (paper §1.1).
//! let star = generators::star(8).unwrap();
//! assert_eq!(diligence::absolute_diligence(&star), 1.0);
//! let rho = diligence::exact_diligence(&star).unwrap();
//! assert!((rho - 1.0).abs() < 1e-12);
//! let phi = conductance::exact_conductance(&star).unwrap();
//! assert!(phi > 0.0);
//! ```

//!
//! See the workspace `README.md` (repo root) for the crate map and the
//! window / event-stream engine duality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conductance;
pub mod connectivity;
pub mod cut;
pub mod diligence;
mod error;
pub mod generators;
mod graph;
mod nodeset;
pub mod sampled;
pub mod spectral;
pub mod subsets;
mod topology;

pub use error::GraphError;
pub use graph::{Graph, GraphBuilder, NodeId};
pub use nodeset::NodeSet;
pub use topology::{Structure, Topology};

/// Maximum node count accepted by the exact (exponential-time) cut
/// enumerators in [`conductance`] and [`diligence`].
pub const EXACT_ENUMERATION_LIMIT: usize = 24;
