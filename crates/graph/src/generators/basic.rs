//! Deterministic graph families.

use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Complete graph `K_n`.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `n < 2`.
///
/// # Example
///
/// ```
/// let g = gossip_graph::generators::complete(5).unwrap();
/// assert_eq!(g.m(), 10);
/// assert!(g.is_regular());
/// ```
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameter(format!(
            "complete graph needs n >= 2, got {n}"
        )));
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.add_edge(u, v)?;
        }
    }
    Ok(b.build())
}

/// Star `K_{1,n−1}` on `n` nodes with center `0`.
///
/// The paper's Figure 1(b) network `G2` is a sequence of stars; stars are
/// 1-diligent and absolutely 1-diligent (Section 1.1).
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `n < 2`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    star_with_center(n, 0)
}

/// Star on `n` nodes with an arbitrary center — the dynamic star `G2`
/// re-centers on an uninformed node each step.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `n < 2` or the center is out of
/// range.
pub fn star_with_center(n: usize, center: NodeId) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameter(format!(
            "star needs n >= 2, got {n}"
        )));
    }
    if center as usize >= n {
        return Err(GraphError::NodeOutOfRange { node: center, n });
    }
    let mut b = GraphBuilder::new(n);
    for v in 0..n as NodeId {
        if v != center {
            b.add_edge(center, v)?;
        }
    }
    Ok(b.build())
}

/// Path `P_n`: `0 − 1 − … − (n−1)`.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `n < 2`.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameter(format!(
            "path needs n >= 2, got {n}"
        )));
    }
    let mut b = GraphBuilder::new(n);
    for v in 0..(n - 1) as NodeId {
        b.add_edge(v, v + 1)?;
    }
    Ok(b.build())
}

/// Cycle `C_n`.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `n < 3`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter(format!(
            "cycle needs n >= 3, got {n}"
        )));
    }
    let mut b = GraphBuilder::new(n);
    for v in 0..n as NodeId {
        b.add_edge(v, ((v as usize + 1) % n) as NodeId)?;
    }
    Ok(b.build())
}

/// Complete bipartite graph `K_{a,b}`: sides `0..a` and `a..a+b`.
///
/// The clusters `S_i` of the paper's `H_{k,Δ}` construction are joined by
/// complete bipartite graphs.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when either side is empty.
pub fn complete_bipartite(a: usize, b: usize) -> Result<Graph, GraphError> {
    if a == 0 || b == 0 {
        return Err(GraphError::InvalidParameter(format!(
            "complete bipartite needs both sides non-empty, got ({a}, {b})"
        )));
    }
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a as NodeId {
        for v in a as NodeId..(a + b) as NodeId {
            builder.add_edge(u, v)?;
        }
    }
    Ok(builder.build())
}

/// Barbell graph: two `K_k` cliques (`0..k` and `k..2k`) joined by the
/// single bridge edge `{0, k}` — the minimal conductance-bottleneck family,
/// and the shape of the paper's Figure 1(a) graph `G(1)`.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `k < 2`.
pub fn barbell(k: usize) -> Result<Graph, GraphError> {
    if k < 2 {
        return Err(GraphError::InvalidParameter(format!(
            "barbell needs k >= 2, got {k}"
        )));
    }
    let mut b = GraphBuilder::new(2 * k);
    for u in 0..k as NodeId {
        for v in (u + 1)..k as NodeId {
            b.add_edge(u, v)?;
            b.add_edge(u + k as NodeId, v + k as NodeId)?;
        }
    }
    b.add_edge(0, k as NodeId)?;
    Ok(b.build())
}

/// Hypercube `Q_d` on `2^d` nodes; ids adjacent iff they differ in one bit.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `d == 0` or `d > 20`.
pub fn hypercube(d: usize) -> Result<Graph, GraphError> {
    if d == 0 || d > 20 {
        return Err(GraphError::InvalidParameter(format!(
            "hypercube dimension {d} out of range 1..=20"
        )));
    }
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(v as NodeId, u as NodeId)?;
            }
        }
    }
    Ok(b.build())
}

/// 2-D torus grid with `rows × cols` nodes and wrap-around edges — the
/// substrate for the mobile-agents extension (related work \[20, 22\]).
///
/// Node `(r, c)` is id `r*cols + c`. Dimension of size 1 contributes no
/// edges; size 2 contributes a single (deduplicated) edge.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `rows*cols < 2`.
pub fn torus(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows * cols < 2 {
        return Err(GraphError::InvalidParameter(format!(
            "torus needs at least 2 nodes, got {rows}x{cols}"
        )));
    }
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if cols > 1 {
                b.add_edge(id(r, c), id(r, (c + 1) % cols))?;
            }
            if rows > 1 {
                b.add_edge(id(r, c), id((r + 1) % rows, c))?;
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn complete_counts() {
        let g = complete(6).unwrap();
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 15);
        assert!(g.is_regular());
        assert!(is_connected(&g));
        assert!(complete(1).is_err());
    }

    #[test]
    fn star_shape() {
        let g = star(6).unwrap();
        assert_eq!(g.degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 1);
        }
        assert!(star(1).is_err());
    }

    #[test]
    fn star_with_other_center() {
        let g = star_with_center(5, 3).unwrap();
        assert_eq!(g.degree(3), 4);
        assert_eq!(g.degree(0), 1);
        assert!(star_with_center(5, 5).is_err());
    }

    #[test]
    fn path_and_cycle() {
        let p = path(5).unwrap();
        assert_eq!(p.m(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
        let c = cycle(5).unwrap();
        assert_eq!(c.m(), 5);
        assert!(c.is_regular());
        assert!(cycle(2).is_err());
    }

    #[test]
    fn bipartite_counts() {
        let g = complete_bipartite(3, 4).unwrap();
        assert_eq!(g.m(), 12);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 3);
        assert!(complete_bipartite(0, 3).is_err());
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4).unwrap();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 2 * 6 + 1);
        assert_eq!(g.degree(0), 4); // clique 3 + bridge
        assert_eq!(g.degree(1), 3);
        assert!(g.has_edge(0, 4));
        assert!(is_connected(&g));
    }

    #[test]
    fn hypercube_regular() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.n(), 16);
        assert!(g.is_regular());
        assert_eq!(g.degree(0), 4);
        assert!(is_connected(&g));
        assert!(hypercube(0).is_err());
    }

    #[test]
    fn torus_shapes() {
        let g = torus(4, 5).unwrap();
        assert_eq!(g.n(), 20);
        assert!(g.is_regular());
        assert_eq!(g.degree(0), 4);
        assert!(is_connected(&g));
        // Degenerate sizes.
        let ring = torus(1, 6).unwrap();
        assert!(ring.is_regular());
        assert_eq!(ring.degree(0), 2);
        let ladder = torus(2, 3).unwrap();
        assert!(is_connected(&ladder));
        assert_eq!(ladder.degree(0), 3); // two row nbrs + one (deduped) col nbr
        assert!(torus(1, 1).is_err());
    }
}
