//! Randomized graph generators.

use crate::{connectivity, Graph, GraphBuilder, GraphError, NodeId, Topology};
use gossip_stats::SimRng;

/// Erdős–Rényi graph `G(n, p)`: each of the `n(n−1)/2` pairs is an edge
/// independently with probability `p`.
///
/// Edges are drawn by per-row **geometric skipping** over the pair
/// indices — `O(n + n²p)` RNG draws instead of one `rng.chance(p)` call
/// per pair — through the same seeded sampler as the lazy
/// [`Topology::gnp`] backend (this function is exactly
/// `Topology::gnp(n, p, rng.next_u64()).materialize()` for `p > 0`), so
/// eager and sampled `G(n, p)` share one code path. Per-pair marginals
/// and independence are unchanged (each pair is still `Bernoulli(p)`;
/// the generator tests check the equivalence), but a given seed consumes
/// the RNG differently than the pre-sampler scan did, so it yields a
/// different — identically distributed — graph.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `n < 2` or `p ∉ \[0, 1\]`.
///
/// # Example
///
/// ```
/// use gossip_stats::SimRng;
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let g = gossip_graph::generators::erdos_renyi(50, 0.2, &mut rng).unwrap();
/// assert_eq!(g.n(), 50);
/// ```
pub fn erdos_renyi(n: usize, p: f64, rng: &mut SimRng) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameter(format!(
            "erdos-renyi needs n >= 2, got {n}"
        )));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter(format!(
            "probability {p} outside [0, 1]"
        )));
    }
    // Always consume exactly one u64 so the caller's stream position does
    // not depend on p.
    let seed = rng.next_u64();
    if p == 0.0 {
        return Ok(Graph::empty(n));
    }
    Ok(Topology::gnp(n, p, seed)?.materialize())
}

/// Random simple `d`-regular graph by the pairing (configuration) model
/// with double-edge-swap repair.
///
/// A raw pairing contains `Θ(d²)` loops and duplicate edges in
/// expectation; instead of rejecting the whole pairing (success
/// probability `≈ e^{(1−d²)/4}`, hopeless already at `d = 8`), each bad
/// pair is repaired by a degree-preserving 2-switch against a random good
/// edge. The result is asymptotically uniform in the sparse regime and
/// an expander w.h.p. — the only properties the paper's constructions
/// rely on ("arbitrary 4-regular expander", Section 4).
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `d == 0`, `d ≥ n`, or `n·d` is odd;
/// [`GraphError::GenerationFailed`] when 64 pairing draws all exhausted
/// their swap budgets (not observed for any `d < n/2`; dense degrees are
/// generated via complements below).
pub fn random_regular(n: usize, d: usize, rng: &mut SimRng) -> Result<Graph, GraphError> {
    if d == 0 || d >= n {
        return Err(GraphError::InvalidParameter(format!(
            "regular degree {d} must satisfy 1 <= d < n = {n}"
        )));
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameter(format!(
            "n*d must be even for a d-regular graph, got n={n}, d={d}"
        )));
    }
    // The pairing model's simplicity probability decays like e^{-d²/4}, so
    // dense graphs are generated as the complement of a sparse regular
    // graph instead ((n-1-d)-regular complements are d-regular, and
    // n(n-1-d) has the same parity as n·d).
    if d > n / 2 {
        let sparse = if n - 1 - d == 0 {
            Graph::empty(n)
        } else {
            random_regular(n, n - 1 - d, rng)?
        };
        let mut b = GraphBuilder::new(n);
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if !sparse.has_edge(u, v) {
                    b.add_edge(u, v)?;
                }
            }
        }
        return Ok(b.build());
    }
    const ATTEMPTS: usize = 64;
    let mut stubs: Vec<NodeId> = Vec::with_capacity(n * d);
    for _ in 0..ATTEMPTS {
        stubs.clear();
        for v in 0..n as NodeId {
            for _ in 0..d {
                stubs.push(v);
            }
        }
        rng.shuffle(&mut stubs);
        let mut edges: Vec<(NodeId, NodeId)> =
            stubs.chunks_exact(2).map(|p| (p[0], p[1])).collect();
        if repair_pairing(&mut edges, rng) {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                b.add_edge(u, v).expect("stubs are in range");
            }
            return Ok(b.build());
        }
    }
    Err(GraphError::GenerationFailed(format!(
        "pairing model failed to produce a simple {d}-regular graph on {n} nodes after {ATTEMPTS} attempts"
    )))
}

fn edge_key(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Repairs a random pairing in place by degree-preserving double-edge
/// swaps: each loop or duplicate edge `(u,v)` is re-wired against a
/// uniformly random good edge `(x,y)` into `(u,x),(v,y)` when that
/// introduces no new loop or duplicate. The expected number of bad pairs
/// is `Θ(d²)` (independent of `n`) and each swap succeeds with
/// probability `1 − O(d/n)`, so the repair is a few dozen cheap
/// operations where whole-graph rejection would discard `Θ(e^{d²/4})`
/// complete pairings. Returns `false` if the per-edge swap budget is
/// exhausted (the caller redraws the pairing).
fn repair_pairing(edges: &mut [(NodeId, NodeId)], rng: &mut SimRng) -> bool {
    use std::collections::HashSet;
    let mut present: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(edges.len());
    let mut bad: Vec<usize> = Vec::new();
    let mut is_bad = vec![false; edges.len()];
    for (i, &(u, v)) in edges.iter().enumerate() {
        if u == v || !present.insert(edge_key(u, v)) {
            bad.push(i);
            is_bad[i] = true;
        }
    }
    const SWAP_BUDGET_PER_EDGE: usize = 400;
    while let Some(i) = bad.pop() {
        let (u, v) = edges[i];
        let mut fixed = false;
        for _ in 0..SWAP_BUDGET_PER_EDGE {
            let j = rng.index(edges.len());
            if j == i || is_bad[j] {
                continue;
            }
            // Randomize the orientation so the swap chain mixes over both
            // rewirings of the 2-switch.
            let (x, y) = if rng.chance(0.5) {
                edges[j]
            } else {
                (edges[j].1, edges[j].0)
            };
            if u == x || v == y {
                continue;
            }
            let k1 = edge_key(u, x);
            let k2 = edge_key(v, y);
            if k1 == k2 || present.contains(&k1) || present.contains(&k2) {
                continue;
            }
            present.remove(&edge_key(x, y));
            present.insert(k1);
            present.insert(k2);
            edges[i] = (u, x);
            edges[j] = (v, y);
            is_bad[i] = false;
            fixed = true;
            break;
        }
        if !fixed {
            return false;
        }
    }
    true
}

/// Random simple `d`-regular graph that is also connected.
///
/// Random regular graphs with `d ≥ 3` are connected (indeed expanders)
/// w.h.p., so the extra rejection loop rarely fires. This is the concrete
/// realization of the paper's "arbitrary 4-regular expander graphs"
/// (Section 4, step 2 of the `H_{k,Δ}` construction).
///
/// # Errors
///
/// As [`random_regular`], plus [`GraphError::GenerationFailed`] when 200
/// connected-rejection rounds fail (practically impossible for `d ≥ 3`).
pub fn random_connected_regular(n: usize, d: usize, rng: &mut SimRng) -> Result<Graph, GraphError> {
    if d < 2 {
        return Err(GraphError::InvalidParameter(format!(
            "connected regular graph needs d >= 2, got {d}"
        )));
    }
    const ATTEMPTS: usize = 200;
    for _ in 0..ATTEMPTS {
        let g = random_regular(n, d, rng)?;
        if connectivity::is_connected(&g) {
            return Ok(g);
        }
    }
    Err(GraphError::GenerationFailed(format!(
        "no connected {d}-regular graph on {n} nodes after {ATTEMPTS} attempts"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn er_extreme_probabilities() {
        let mut rng = SimRng::seed_from_u64(1);
        let empty = erdos_renyi(10, 0.0, &mut rng).unwrap();
        assert_eq!(empty.m(), 0);
        let full = erdos_renyi(10, 1.0, &mut rng).unwrap();
        assert_eq!(full.m(), 45);
    }

    #[test]
    fn er_edge_count_concentrates() {
        let mut rng = SimRng::seed_from_u64(2);
        let n = 100;
        let p = 0.3;
        let g = erdos_renyi(n, p, &mut rng).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.m() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "m = {got}, expected ~{expected}"
        );
    }

    #[test]
    fn er_validates() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(erdos_renyi(1, 0.5, &mut rng).is_err());
        assert!(erdos_renyi(5, 1.5, &mut rng).is_err());
        assert!(erdos_renyi(5, -0.1, &mut rng).is_err());
    }

    #[test]
    fn er_is_the_sampled_backend_materialized() {
        // One code path: the eager generator is exactly the sampled
        // backend seeded with the rng's next u64.
        let mut rng = SimRng::seed_from_u64(31);
        let seed = SimRng::seed_from_u64(31).next_u64();
        let eager = erdos_renyi(64, 0.1, &mut rng).unwrap();
        let sampled = Topology::gnp(64, 0.1, seed).unwrap();
        assert_eq!(eager, sampled.materialize());
    }

    /// The documented equivalence test for the geometric-skip refactor:
    /// the generator no longer draws one `rng.chance(p)` per pair, but the
    /// *distribution* is unchanged — every pair is still an independent
    /// `Bernoulli(p)`. Over many seeds, each individual pair's empirical
    /// edge frequency must match `p`, and so must the mean total edge
    /// count; a per-pair reference scan sampled alongside stays within the
    /// same tolerance bands, so any skip-logic bias (off-by-one in the
    /// geometric jump, row-boundary leakage) shows up as a hard failure.
    #[test]
    fn er_geometric_skip_preserves_the_distribution() {
        let (n, p, rounds) = (24usize, 0.2, 3000u64);
        let pairs = n * (n - 1) / 2;
        // Empirical per-pair hit counts for the skipping generator and for
        // an in-test per-pair Bernoulli scan (the pre-refactor algorithm).
        let mut skip_hits = vec![0u32; pairs];
        let mut scan_hits = vec![0u32; pairs];
        let mut skip_edges = 0u64;
        let mut scan_edges = 0u64;
        let pair_index = |u: usize, v: usize| u * (2 * n - u - 1) / 2 + (v - u - 1);
        for round in 0..rounds {
            let mut rng = SimRng::seed_from_u64(10_000 + round);
            let g = erdos_renyi(n, p, &mut rng).unwrap();
            for u in 0..n {
                for v in (u + 1)..n {
                    if g.has_edge(u as NodeId, v as NodeId) {
                        skip_hits[pair_index(u, v)] += 1;
                        skip_edges += 1;
                    }
                }
            }
            let mut rng = SimRng::seed_from_u64(70_000 + round);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.chance(p) {
                        scan_hits[pair_index(u, v)] += 1;
                        scan_edges += 1;
                    }
                }
            }
        }
        // Mean edge count: both within 2% of p·(n choose 2).
        let expect = p * pairs as f64;
        for (label, total) in [("skip", skip_edges), ("scan", scan_edges)] {
            let mean = total as f64 / rounds as f64;
            assert!(
                (mean - expect).abs() < 0.02 * expect,
                "{label}: mean edge count {mean} vs expected {expect}"
            );
        }
        // Every individual pair's frequency within 5σ of p (σ of a
        // Bernoulli mean over `rounds` draws) — catches positional bias.
        let sigma = (p * (1.0 - p) / rounds as f64).sqrt();
        for hits in [&skip_hits, &scan_hits] {
            for (i, &h) in hits.iter().enumerate() {
                let freq = h as f64 / rounds as f64;
                assert!(
                    (freq - p).abs() < 5.0 * sigma,
                    "pair {i}: frequency {freq} strays from p = {p}"
                );
            }
        }
    }

    #[test]
    fn regular_graph_is_regular_and_simple() {
        let mut rng = SimRng::seed_from_u64(4);
        for (n, d) in [(10usize, 3usize), (20, 4), (15, 4), (8, 7)] {
            let g = random_regular(n, d, &mut rng).unwrap();
            assert_eq!(g.n(), n);
            assert!(g.is_regular(), "not regular: ({n}, {d})");
            assert_eq!(g.degree(0), d);
            assert_eq!(g.m(), n * d / 2);
        }
    }

    #[test]
    fn regular_repair_handles_moderate_degrees() {
        // Whole-graph rejection dies around d = 6 (simplicity probability
        // e^{-d²/4}); the swap repair must shrug at these. 100 draws per
        // configuration so a regression shows up as a hard failure, not a
        // flake.
        for (n, d) in [(64usize, 6usize), (64, 8), (64, 12), (100, 10), (48, 16)] {
            let mut rng = SimRng::seed_from_u64(4_000 + (n * d) as u64);
            for trial in 0..100 {
                let g = random_regular(n, d, &mut rng)
                    .unwrap_or_else(|e| panic!("({n},{d}) trial {trial}: {e}"));
                assert!(g.is_regular());
                assert_eq!(g.degree(0), d);
                assert_eq!(g.m(), n * d / 2);
            }
        }
    }

    #[test]
    fn regular_repair_preserves_simplicity() {
        // The CSR builder would happily store duplicates, so check
        // explicitly: no loops, no repeated neighbor in any adjacency
        // list.
        let mut rng = SimRng::seed_from_u64(4_100);
        let g = random_regular(80, 10, &mut rng).unwrap();
        for u in 0..80u32 {
            let nbrs = g.neighbors(u);
            let mut sorted: Vec<u32> = nbrs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), nbrs.len(), "duplicate edge at node {u}");
            assert!(!nbrs.contains(&u), "self-loop at node {u}");
        }
    }

    #[test]
    fn regular_validates_parity_and_range() {
        let mut rng = SimRng::seed_from_u64(5);
        assert!(random_regular(5, 3, &mut rng).is_err()); // odd product
        assert!(random_regular(4, 4, &mut rng).is_err()); // d >= n
        assert!(random_regular(4, 0, &mut rng).is_err());
    }

    #[test]
    fn connected_regular_connected() {
        let mut rng = SimRng::seed_from_u64(6);
        for n in [10usize, 30, 64, 101] {
            let d = if n % 2 == 0 { 3 } else { 4 };
            let g = random_connected_regular(n, d, &mut rng).unwrap();
            assert!(is_connected(&g), "disconnected ({n}, {d})");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = random_regular(20, 4, &mut SimRng::seed_from_u64(7)).unwrap();
        let g2 = random_regular(20, 4, &mut SimRng::seed_from_u64(7)).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn random_4_regular_is_an_expander() {
        // The paper's substitution: random 4-regular graphs have Φ = Θ(1).
        // Check the spectral Cheeger lower bound is bounded away from 0.
        let mut rng = SimRng::seed_from_u64(8);
        let g = random_connected_regular(200, 4, &mut rng).unwrap();
        let bounds = crate::spectral::spectral_bounds(&g, 5000).unwrap();
        assert!(
            bounds.conductance_lower > 0.02,
            "λ₂/2 = {} too small for an expander",
            bounds.conductance_lower
        );
    }
}
