//! The adversarial `H_{k,Δ}(A, B)` construction of Section 4.
//!
//! Given a partition `V = A ∪ B` (with `n/4 ≤ |A| ≤ 3n/4`), integers
//! `k = O(log n / log log n)` and `Δ = O(√n)`, the construction is:
//!
//! 1. disjoint clusters `S_0 ⊂ A` and `S_1, …, S_k ⊂ B`, each of size `Δ`,
//!    consecutive clusters joined completely bipartitely — a "string" with
//!    `(k+1)·Δ` nodes and `k·Δ²` edges;
//! 2. 4-regular expanders `G1` on `A \ S_0` and `G2` on `B \ ∪S_i`; each
//!    node of `S_0` is stitched to `Δ` distinct nodes of `G1` and each node
//!    of `S_k` to `Δ` distinct nodes of `G2`, spreading the extra degree
//!    evenly (round-robin) so every expander node gains only `O(1)`.
//!
//! Observation 4.1 gives `Φ(H) = Θ(Δ²/(kΔ² + n))` and `ρ(H) = Θ(1/Δ)`.
//! The rumor must traverse the string cluster by cluster, and Lemma 4.2
//! shows one unit of time moves it forward with probability at most
//! `2^k Δ / k!` — the engine of the Theorem 1.2 lower bound.

use crate::{connectivity, Graph, GraphBuilder, GraphError, NodeId};
use gossip_stats::SimRng;

/// Parameters of the `H_{k,Δ}` construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HkDeltaParams {
    /// Number of bipartite hops in the string (clusters are `S_0..S_k`).
    pub k: usize,
    /// Cluster size `Δ` (the paper sets `Δ = ⌈1/ρ⌉`).
    pub delta: usize,
}

/// The built `H_{k,Δ}(A, B)` graph together with its structure, so the
/// dynamic network and the Lemma 4.2 experiments can address clusters
/// directly.
#[derive(Debug, Clone)]
pub struct HkDelta {
    graph: Graph,
    clusters: Vec<Vec<NodeId>>,
    a_rest: Vec<NodeId>,
    b_rest: Vec<NodeId>,
    params: HkDeltaParams,
}

impl HkDelta {
    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the wrapper, returning the graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// The clusters `S_0, …, S_k` in order.
    pub fn clusters(&self) -> &[Vec<NodeId>] {
        &self.clusters
    }

    /// Nodes of the `A`-side expander `G1` (i.e. `A \ S_0`).
    pub fn a_rest(&self) -> &[NodeId] {
        &self.a_rest
    }

    /// Nodes of the `B`-side expander `G2` (i.e. `B \ ∪S_i`).
    pub fn b_rest(&self) -> &[NodeId] {
        &self.b_rest
    }

    /// The construction parameters.
    pub fn params(&self) -> HkDeltaParams {
        self.params
    }

    /// Observation 4.1 conductance estimate `Δ²/(kΔ² + n)` (a Θ-order
    /// value, not the exact minimum).
    pub fn conductance_estimate(&self) -> f64 {
        let d2 = (self.params.delta * self.params.delta) as f64;
        d2 / (self.params.k as f64 * d2 + self.graph.n() as f64)
    }

    /// Observation 4.1 diligence estimate `1/Δ` (Θ-order).
    pub fn diligence_estimate(&self) -> f64 {
        1.0 / self.params.delta as f64
    }
}

/// Builds `H_{k,Δ}(A, B)` over the node set `0..n` partitioned into `a`
/// and `b`.
///
/// `S_0` takes the first `Δ` entries of `a`; `S_1..S_k` take consecutive
/// `Δ`-chunks of `b`. The expanders are random connected 4-regular graphs
/// (expanders w.h.p. — the workspace's substitution for the paper's
/// "arbitrary 4-regular expander"); sets smaller than 5 fall back to a
/// complete graph.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `a`/`b` fail to partition `0..n`,
/// when `k == 0` or `Δ == 0`, or when either side is too small
/// (`|A| ≥ Δ + max(5, Δ)` and `|B| ≥ kΔ + max(5, Δ)` are required);
/// [`GraphError::GenerationFailed`] if expander generation fails.
pub fn h_k_delta(
    n: usize,
    a: &[NodeId],
    b: &[NodeId],
    params: HkDeltaParams,
    rng: &mut SimRng,
) -> Result<HkDelta, GraphError> {
    let HkDeltaParams { k, delta } = params;
    if k == 0 || delta == 0 {
        return Err(GraphError::InvalidParameter(format!(
            "h_k_delta needs k >= 1 and delta >= 1, got k={k}, delta={delta}"
        )));
    }
    validate_partition(n, a, b)?;
    let side_min = delta.max(5);
    if a.len() < delta + side_min {
        return Err(GraphError::InvalidParameter(format!(
            "|A| = {} too small for delta {delta} (need at least {})",
            a.len(),
            delta + side_min
        )));
    }
    if b.len() < k * delta + side_min {
        return Err(GraphError::InvalidParameter(format!(
            "|B| = {} too small for k={k}, delta={delta} (need at least {})",
            b.len(),
            k * delta + side_min
        )));
    }

    let mut builder = GraphBuilder::new(n);

    // Clusters: S_0 from A, S_1..S_k from B.
    let mut clusters: Vec<Vec<NodeId>> = Vec::with_capacity(k + 1);
    clusters.push(a[..delta].to_vec());
    for i in 0..k {
        clusters.push(b[i * delta..(i + 1) * delta].to_vec());
    }
    // Step 1: complete bipartite joins between consecutive clusters.
    for w in clusters.windows(2) {
        for &u in &w[0] {
            for &v in &w[1] {
                builder.add_edge(u, v)?;
            }
        }
    }

    // Step 2: expanders on the remainders plus even stitching.
    let a_rest: Vec<NodeId> = a[delta..].to_vec();
    let b_rest: Vec<NodeId> = b[k * delta..].to_vec();
    add_expander(&mut builder, &a_rest, rng)?;
    add_expander(&mut builder, &b_rest, rng)?;
    stitch(&mut builder, &clusters[0], &a_rest, delta)?;
    stitch(&mut builder, &clusters[k], &b_rest, delta)?;

    let graph = builder.build();
    debug_assert!(
        connectivity::is_connected(&graph),
        "H_k_delta must be connected"
    );
    Ok(HkDelta {
        graph,
        clusters,
        a_rest,
        b_rest,
        params,
    })
}

/// Adds a random connected 4-regular graph on `nodes` (complete graph when
/// `|nodes| < 5`).
fn add_expander(
    builder: &mut GraphBuilder,
    nodes: &[NodeId],
    rng: &mut SimRng,
) -> Result<(), GraphError> {
    let m = nodes.len();
    if m < 5 {
        for i in 0..m {
            for j in (i + 1)..m {
                builder.add_edge(nodes[i], nodes[j])?;
            }
        }
        return Ok(());
    }
    let expander = crate::generators::random_connected_regular(m, 4, rng)?;
    for (u, v) in expander.edges() {
        builder.add_edge(nodes[u as usize], nodes[v as usize])?;
    }
    Ok(())
}

/// Connects the `x`-th cluster node to `delta` distinct targets
/// round-robin, so each target gains at most `⌈Δ²/|targets|⌉` edges.
fn stitch(
    builder: &mut GraphBuilder,
    cluster: &[NodeId],
    targets: &[NodeId],
    delta: usize,
) -> Result<(), GraphError> {
    debug_assert!(
        targets.len() >= delta,
        "stitching needs at least delta targets"
    );
    for (x, &u) in cluster.iter().enumerate() {
        for j in 0..delta {
            let t = targets[(x * delta + j) % targets.len()];
            builder.add_edge(u, t)?;
        }
    }
    Ok(())
}

fn validate_partition(n: usize, a: &[NodeId], b: &[NodeId]) -> Result<(), GraphError> {
    if a.len() + b.len() != n {
        return Err(GraphError::InvalidParameter(format!(
            "|A| + |B| = {} does not equal n = {n}",
            a.len() + b.len()
        )));
    }
    let mut seen = vec![false; n];
    for &v in a.iter().chain(b.iter()) {
        let vu = v as usize;
        if vu >= n {
            return Err(GraphError::NodeOutOfRange { node: v, n });
        }
        if seen[vu] {
            return Err(GraphError::InvalidParameter(format!(
                "node {v} appears twice in A ∪ B"
            )));
        }
        seen[vu] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use crate::diligence::absolute_diligence;

    fn split(n: usize, a_size: usize) -> (Vec<NodeId>, Vec<NodeId>) {
        let a: Vec<NodeId> = (0..a_size as NodeId).collect();
        let b: Vec<NodeId> = (a_size as NodeId..n as NodeId).collect();
        (a, b)
    }

    #[test]
    fn cluster_degrees_are_2_delta() {
        let n = 200;
        let (a, b) = split(n, 50);
        let params = HkDeltaParams { k: 3, delta: 6 };
        let h = h_k_delta(n, &a, &b, params, &mut SimRng::seed_from_u64(1)).unwrap();
        for cluster in h.clusters() {
            assert_eq!(cluster.len(), 6);
            for &v in cluster {
                assert_eq!(h.graph().degree(v), 12, "cluster node {v}");
            }
        }
    }

    #[test]
    fn expander_nodes_gain_bounded_degree() {
        let n = 200;
        let (a, b) = split(n, 50);
        let params = HkDeltaParams { k: 3, delta: 6 };
        let h = h_k_delta(n, &a, &b, params, &mut SimRng::seed_from_u64(2)).unwrap();
        // Δ² = 36 extra edges spread over |a_rest| = 44 targets: max +1 each.
        for &v in h.a_rest() {
            let d = h.graph().degree(v);
            assert!((4..=6).contains(&d), "a_rest node {v} has degree {d}");
        }
        for &v in h.b_rest() {
            let d = h.graph().degree(v);
            assert!((4..=6).contains(&d), "b_rest node {v} has degree {d}");
        }
    }

    #[test]
    fn connected_and_correct_size() {
        let n = 150;
        let (a, b) = split(n, 40);
        let params = HkDeltaParams { k: 2, delta: 5 };
        let h = h_k_delta(n, &a, &b, params, &mut SimRng::seed_from_u64(3)).unwrap();
        assert_eq!(h.graph().n(), n);
        assert!(is_connected(h.graph()));
    }

    #[test]
    fn string_edge_count() {
        // The string alone contributes k·Δ² edges; stitching adds 2·Δ² and
        // the expanders 2·|rest| each (4-regular).
        let n = 300;
        let (a, b) = split(n, 100);
        let params = HkDeltaParams { k: 4, delta: 7 };
        let h = h_k_delta(n, &a, &b, params, &mut SimRng::seed_from_u64(4)).unwrap();
        let d2 = 49;
        let a_rest = 100 - 7;
        let b_rest = 200 - 28;
        let expected = 4 * d2 + 2 * d2 + 2 * a_rest + 2 * b_rest;
        assert_eq!(h.graph().m(), expected);
    }

    #[test]
    fn absolute_diligence_order_one_over_delta() {
        // Cut edges inside the string have both endpoints of degree 2Δ,
        // so ρ̄ ≤ 1/(2Δ); expander edges give at most 1/4.
        let n = 200;
        let (a, b) = split(n, 50);
        let params = HkDeltaParams { k: 3, delta: 6 };
        let h = h_k_delta(n, &a, &b, params, &mut SimRng::seed_from_u64(5)).unwrap();
        let rho_abs = absolute_diligence(h.graph());
        assert!((rho_abs - 1.0 / 12.0).abs() < 1e-12, "rho_abs = {rho_abs}");
    }

    #[test]
    fn estimates_match_observation_4_1() {
        let n = 400;
        let (a, b) = split(n, 100);
        let params = HkDeltaParams { k: 5, delta: 8 };
        let h = h_k_delta(n, &a, &b, params, &mut SimRng::seed_from_u64(6)).unwrap();
        let phi_est = h.conductance_estimate();
        assert!((phi_est - 64.0 / (5.0 * 64.0 + 400.0)).abs() < 1e-12);
        assert!((h.diligence_estimate() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn validates_sizes_and_partition() {
        let mut rng = SimRng::seed_from_u64(7);
        let params = HkDeltaParams { k: 2, delta: 5 };
        // Overlapping partition.
        let a: Vec<NodeId> = (0..30).collect();
        let bad_b: Vec<NodeId> = (29..60).collect();
        assert!(h_k_delta(60, &a, &bad_b, params, &mut rng).is_err());
        // Wrong total.
        let b: Vec<NodeId> = (30..59).collect();
        assert!(h_k_delta(60, &a, &b, params, &mut rng).is_err());
        // A too small.
        let (a2, b2) = {
            let a: Vec<NodeId> = (0..8).collect();
            let b: Vec<NodeId> = (8..60).collect();
            (a, b)
        };
        assert!(h_k_delta(60, &a2, &b2, params, &mut rng).is_err());
        // Zero parameters.
        let (a3, b3) = {
            let a: Vec<NodeId> = (0..30).collect();
            let b: Vec<NodeId> = (30..60).collect();
            (a, b)
        };
        assert!(h_k_delta(60, &a3, &b3, HkDeltaParams { k: 0, delta: 5 }, &mut rng).is_err());
        assert!(h_k_delta(60, &a3, &b3, HkDeltaParams { k: 2, delta: 0 }, &mut rng).is_err());
    }

    #[test]
    fn tiny_rest_falls_back_to_complete() {
        // |a_rest| = 5 exactly uses the expander; make |a| = delta + 5.
        let n = 60;
        let (a, b) = split(n, 10);
        let params = HkDeltaParams { k: 2, delta: 5 };
        let h = h_k_delta(n, &a, &b, params, &mut SimRng::seed_from_u64(8)).unwrap();
        assert!(is_connected(h.graph()));
    }

    #[test]
    fn deterministic_for_seed() {
        let n = 120;
        let (a, b) = split(n, 40);
        let params = HkDeltaParams { k: 2, delta: 6 };
        let h1 = h_k_delta(n, &a, &b, params, &mut SimRng::seed_from_u64(9)).unwrap();
        let h2 = h_k_delta(n, &a, &b, params, &mut SimRng::seed_from_u64(9)).unwrap();
        assert_eq!(h1.graph(), h2.graph());
    }
}
