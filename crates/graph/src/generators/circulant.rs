//! Circulant graphs and the near-regular hub construction of Section 5.1.
//!
//! The paper's absolutely-`ρ`-diligent dynamic network joins
//! `G(A, 4, Δ)` — a connected graph where every node has degree 4 except one
//! hub of degree `Δ` — to a `Δ`-regular graph `G(B, Δ)` by a single bridge
//! edge. The paper only asserts such graphs exist for even degrees; this
//! module constructs them explicitly:
//!
//! * [`regular_circulant`] gives connected `Δ`-regular graphs (offsets
//!   `1..Δ/2`);
//! * [`near_regular_with_hub`] starts from the 4-regular circulant
//!   `C(m; 1, 2)` and re-routes `(Δ−4)/2` distance-2 chords through the hub,
//!   which raises the hub's degree by 2 per re-route while every other
//!   degree is unchanged and the base cycle keeps the graph connected.

use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Circulant graph `C(n; offsets)`: node `i` is adjacent to `i ± o (mod n)`
/// for each offset `o`.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `n < 3`, offsets are empty,
/// repeated, zero, or exceed `n/2`.
///
/// # Example
///
/// ```
/// // C(8; 1, 2) is the 4-regular "squared cycle".
/// let g = gossip_graph::generators::circulant(8, &[1, 2]).unwrap();
/// assert!(g.is_regular());
/// assert_eq!(g.degree(0), 4);
/// ```
pub fn circulant(n: usize, offsets: &[usize]) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter(format!(
            "circulant needs n >= 3, got {n}"
        )));
    }
    if offsets.is_empty() {
        return Err(GraphError::InvalidParameter(
            "circulant needs at least one offset".into(),
        ));
    }
    let mut sorted = offsets.to_vec();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(GraphError::InvalidParameter(format!(
                "repeated offset {}",
                w[0]
            )));
        }
    }
    for &o in offsets {
        if o == 0 || o > n / 2 {
            return Err(GraphError::InvalidParameter(format!(
                "offset {o} outside 1..={} for n = {n}",
                n / 2
            )));
        }
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for &o in offsets {
            let j = (i + o) % n;
            if i != j {
                b.add_edge(i as NodeId, j as NodeId)?;
            }
        }
    }
    Ok(b.build())
}

/// Connected `d`-regular circulant on `m` nodes (offsets `1..=d/2`) — the
/// paper's `G(A, d)` building block (Section 5.1).
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `d` is odd, zero, or too large
/// (`d/2` must not exceed `(m−1)/2`, so every offset contributes degree 2).
pub fn regular_circulant(m: usize, d: usize) -> Result<Graph, GraphError> {
    if d == 0 || !d.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter(format!(
            "regular circulant needs even positive degree, got {d}"
        )));
    }
    if d / 2 > (m.saturating_sub(1)) / 2 {
        return Err(GraphError::InvalidParameter(format!(
            "degree {d} too large for {m} nodes (need d/2 <= (m-1)/2)"
        )));
    }
    let offsets: Vec<usize> = (1..=d / 2).collect();
    circulant(m, &offsets)
}

/// The Section 5.1 construction `G(A, 4, Δ)`: a connected simple graph on
/// `m` nodes where every node has degree 4 except node `0`, the *hub*, of
/// degree `hub_degree`.
///
/// Built from the 4-regular circulant `C(m; 1, 2)` by re-routing
/// `(hub_degree − 4)/2` distance-2 chords `{a, a+2}` (chosen disjoint and
/// away from the hub's neighborhood) into the pair `{0, a}, {0, a+2}`: the
/// chord endpoints keep degree 4 while the hub gains 2 per re-route.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when `hub_degree` is odd or `< 4`, or
/// when `m` is too small to host the required number of disjoint chords
/// (roughly `m ≥ 2·hub_degree + 9`).
///
/// # Example
///
/// ```
/// let g = gossip_graph::generators::near_regular_with_hub(40, 10).unwrap();
/// assert_eq!(g.degree(0), 10);
/// assert!((1..40).all(|v| g.degree(v) == 4));
/// ```
pub fn near_regular_with_hub(m: usize, hub_degree: usize) -> Result<Graph, GraphError> {
    if hub_degree < 4 || !hub_degree.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter(format!(
            "hub degree must be even and >= 4, got {hub_degree}"
        )));
    }
    let extra = (hub_degree - 4) / 2;
    // Chords {a, a+2} for a = 4, 8, 12, ..., all endpoints within 3..m-3 so
    // they avoid the hub's circulant neighborhood {1, 2, m-2, m-1}.
    let last_start = 4 + 4 * extra.saturating_sub(1);
    if extra > 0 && last_start + 2 > m.saturating_sub(3) {
        return Err(GraphError::InvalidParameter(format!(
            "{m} nodes cannot host {extra} disjoint re-routed chords for hub degree {hub_degree}"
        )));
    }
    if m < 5 {
        return Err(GraphError::InvalidParameter(format!(
            "near-regular hub graph needs m >= 5, got {m}"
        )));
    }
    let base = circulant(m, &[1, 2])?;
    let mut b = GraphBuilder::new(m);
    for (u, v) in base.edges() {
        b.add_edge(u, v)?;
    }
    for i in 0..extra {
        let a = (4 + 4 * i) as NodeId;
        let removed = b.remove_edge(a, a + 2);
        debug_assert!(removed, "chord {{{a}, {}}} missing from C(m;1,2)", a + 2);
        b.add_edge(0, a)?;
        b.add_edge(0, a + 2)?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use crate::diligence::absolute_diligence;

    #[test]
    fn circulant_validates() {
        assert!(circulant(2, &[1]).is_err());
        assert!(circulant(8, &[]).is_err());
        assert!(circulant(8, &[0]).is_err());
        assert!(circulant(8, &[5]).is_err());
        assert!(circulant(8, &[1, 1]).is_err());
    }

    #[test]
    fn circulant_degrees() {
        let g = circulant(9, &[1, 2, 3]).unwrap();
        assert!(g.is_regular());
        assert_eq!(g.degree(0), 6);
        // Half-offset on even n gives degree contribution 1.
        let h = circulant(8, &[1, 4]).unwrap();
        assert!(h.is_regular());
        assert_eq!(h.degree(0), 3);
    }

    #[test]
    fn regular_circulant_matches_degree() {
        for (m, d) in [(11usize, 4usize), (20, 6), (9, 2), (50, 12)] {
            let g = regular_circulant(m, d).unwrap();
            assert!(g.is_regular(), "({m},{d})");
            assert_eq!(g.degree(0), d);
            assert!(is_connected(&g));
        }
        assert!(regular_circulant(10, 3).is_err()); // odd
        assert!(regular_circulant(10, 10).is_err()); // too large
    }

    #[test]
    fn regular_circulant_absolute_diligence() {
        // Δ-regular => ρ̄ = 1/Δ (paper Section 5.1 uses exactly this).
        let g = regular_circulant(30, 6).unwrap();
        assert!((absolute_diligence(&g) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn hub_graph_degree_sequence() {
        for (m, hub) in [(40usize, 10usize), (25, 4), (100, 20), (29, 8)] {
            let g = near_regular_with_hub(m, hub).unwrap();
            assert_eq!(g.degree(0), hub, "hub degree ({m},{hub})");
            for v in 1..m as NodeId {
                assert_eq!(g.degree(v), 4, "node {v} in ({m},{hub})");
            }
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn hub_graph_validates() {
        assert!(near_regular_with_hub(40, 5).is_err()); // odd
        assert!(near_regular_with_hub(40, 2).is_err()); // < 4
        assert!(near_regular_with_hub(10, 20).is_err()); // too many chords
        assert!(near_regular_with_hub(4, 4).is_err()); // m too small
    }

    #[test]
    fn hub_graph_stays_simple() {
        let g = near_regular_with_hub(60, 16).unwrap();
        // Volume = 59*4 + 16.
        assert_eq!(g.volume(), 59 * 4 + 16);
        // No duplicate edges: m = volume/2 exactly.
        assert_eq!(g.m(), (59 * 4 + 16) / 2);
    }

    #[test]
    fn hub_degree_4_is_plain_circulant() {
        let g = near_regular_with_hub(12, 4).unwrap();
        let c = circulant(12, &[1, 2]).unwrap();
        assert_eq!(g, c);
    }
}
