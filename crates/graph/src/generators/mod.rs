//! Graph generators: every family the paper builds on.
//!
//! * `basic` — deterministic families (complete, star, path, cycle,
//!   complete bipartite, barbell, hypercube, torus);
//! * `random` — Erdős–Rényi and random regular graphs (the paper's
//!   "arbitrary 4-regular expanders" are random 4-regular graphs, which are
//!   expanders w.h.p.);
//! * `circulant` — circulant graphs and the near-regular `G(A, d₁, d₂)`
//!   construction of Section 5.1 (all nodes degree 4, one hub of degree Δ);
//! * `paper` — the adversarial `H_{k,Δ}(A, B)` construction of Section 4
//!   (a string of complete bipartite clusters bridging two expanders), with
//!   its Observation 4.1 closed-form profile.

mod basic;
mod circulant;
mod paper;
mod random;

pub use basic::{
    barbell, complete, complete_bipartite, cycle, hypercube, path, star, star_with_center, torus,
};
pub use circulant::{circulant, near_regular_with_hub, regular_circulant};
pub use paper::{h_k_delta, HkDelta, HkDeltaParams};
pub use random::{erdos_renyi, random_connected_regular, random_regular};
