//! Spectral conductance estimation for graphs too large to enumerate.
//!
//! Cheeger's inequality bounds conductance by the second-smallest eigenvalue
//! `λ₂` of the normalized Laplacian: `λ₂/2 ≤ Φ(G) ≤ sqrt(2·λ₂)`. This module
//! computes `λ₂` by deflated power iteration on the normalized adjacency
//! operator — pure Rust, no linear-algebra dependency — and derives sweep-cut
//! upper bounds from the Fiedler ordering.
//!
//! The reproduction uses these estimates only as *cross-checks*: the bound
//! calculators consume exact small-graph values or the paper's closed forms
//! (Observation 4.1) for the adversarial families.

use crate::{connectivity, Graph, GraphError, NodeId};

/// Result of a spectral analysis of a connected graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralBounds {
    /// Second-smallest eigenvalue of the normalized Laplacian.
    pub lambda2: f64,
    /// Cheeger lower bound `λ₂ / 2 ≤ Φ`.
    pub conductance_lower: f64,
    /// Cheeger upper bound `Φ ≤ sqrt(2 λ₂)`.
    pub conductance_upper: f64,
}

/// Estimates `λ₂` of the normalized Laplacian by deflated power iteration
/// and returns the Cheeger bounds on conductance.
///
/// # Errors
///
/// [`GraphError::EmptyGraph`] when the graph has no edges;
/// [`GraphError::InvalidParameter`] when it is disconnected (λ₂ = 0 exactly;
/// callers should treat Φ as 0) or has an isolated node.
///
/// # Example
///
/// ```
/// use gossip_graph::{generators, spectral, conductance};
///
/// let g = generators::complete(12).unwrap();
/// let bounds = spectral::spectral_bounds(&g, 2000).unwrap();
/// let phi = conductance::exact_conductance(&g).unwrap();
/// assert!(bounds.conductance_lower <= phi + 1e-6);
/// assert!(phi <= bounds.conductance_upper + 1e-6);
/// ```
pub fn spectral_bounds(g: &Graph, iterations: usize) -> Result<SpectralBounds, GraphError> {
    let lambda2 = normalized_lambda2(g, iterations)?;
    Ok(SpectralBounds {
        lambda2,
        conductance_lower: lambda2 / 2.0,
        conductance_upper: (2.0 * lambda2).sqrt(),
    })
}

/// Second-smallest eigenvalue of the normalized Laplacian
/// `L = I − D^{-1/2} A D^{-1/2}`.
///
/// # Errors
///
/// See [`spectral_bounds`].
pub fn normalized_lambda2(g: &Graph, iterations: usize) -> Result<f64, GraphError> {
    let (_, mu2) = second_adjacency_eigenpair(g, iterations)?;
    Ok((1.0 - mu2).max(0.0))
}

/// Orders nodes by their Fiedler-vector coordinate (`D^{-1/2}`-scaled second
/// eigenvector); feeding this into
/// [`crate::conductance::sweep_conductance`] yields the classic spectral
/// partitioning upper bound on `Φ`.
///
/// # Errors
///
/// See [`spectral_bounds`].
pub fn fiedler_ordering(g: &Graph, iterations: usize) -> Result<Vec<NodeId>, GraphError> {
    let (vec2, _) = second_adjacency_eigenpair(g, iterations)?;
    let mut order: Vec<NodeId> = (0..g.n() as NodeId).collect();
    // Scale by D^{-1/2} to go from the symmetric operator's eigenvector to
    // the random-walk embedding.
    let coord = |v: NodeId| vec2[v as usize] / (g.degree(v) as f64).sqrt();
    order.sort_by(|&a, &b| {
        coord(a)
            .partial_cmp(&coord(b))
            .expect("NaN fiedler coordinate")
    });
    Ok(order)
}

/// Computes the second eigenpair `(v₂, μ₂)` of the normalized adjacency
/// `M = D^{-1/2} A D^{-1/2}` (whose top eigenpair is
/// `(D^{1/2} 1, 1)` for connected graphs).
fn second_adjacency_eigenpair(g: &Graph, iterations: usize) -> Result<(Vec<f64>, f64), GraphError> {
    let n = g.n();
    if g.is_empty_graph() || n < 2 {
        return Err(GraphError::EmptyGraph);
    }
    if g.min_degree() == 0 || !connectivity::is_connected(g) {
        return Err(GraphError::InvalidParameter(
            "spectral bounds require a connected graph with no isolated nodes".into(),
        ));
    }
    let sqrt_deg: Vec<f64> = (0..n)
        .map(|v| (g.degree(v as NodeId) as f64).sqrt())
        .collect();
    // Top eigenvector of M, normalized.
    let norm1: f64 = sqrt_deg.iter().map(|x| x * x).sum::<f64>().sqrt();
    let v1: Vec<f64> = sqrt_deg.iter().map(|x| x / norm1).collect();

    // Deterministic pseudo-random start vector (no RNG dependency needed).
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
            (h as f64 / (1u64 << 31) as f64) - 0.5
        })
        .collect();
    deflate(&mut x, &v1);
    normalize(&mut x);

    let mut y = vec![0.0; n];
    let mut mu_shifted = 0.0;
    for _ in 0..iterations.max(8) {
        // y = (M + I)/2 · x, keeping the spectrum in [0, 1] so the dominant
        // remaining eigenvalue is (μ₂+1)/2 even for bipartite graphs.
        for v in 0..n {
            let mut acc = 0.0;
            for &u in g.neighbors(v as NodeId) {
                acc += x[u as usize] / (sqrt_deg[v] * sqrt_deg[u as usize]);
            }
            y[v] = 0.5 * (acc + x[v]);
        }
        deflate(&mut y, &v1);
        mu_shifted = norm(&y);
        if mu_shifted < 1e-300 {
            // x was (numerically) entirely in the top eigenspace: λ2 ≈ large.
            return Ok((x, 0.0));
        }
        for v in 0..n {
            x[v] = y[v] / mu_shifted;
        }
    }
    let mu2 = 2.0 * mu_shifted - 1.0;
    Ok((x, mu2.clamp(-1.0, 1.0)))
}

fn deflate(x: &mut [f64], v1: &[f64]) {
    let proj: f64 = x.iter().zip(v1).map(|(a, b)| a * b).sum();
    for (xi, v1i) in x.iter_mut().zip(v1) {
        *xi -= proj * v1i;
    }
}

fn norm(x: &[f64]) -> f64 {
    x.iter().map(|a| a * a).sum::<f64>().sqrt()
}

fn normalize(x: &mut [f64]) {
    let nm = norm(x);
    if nm > 0.0 {
        x.iter_mut().for_each(|a| *a /= nm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conductance::{exact_conductance, sweep_conductance};
    use crate::generators;

    #[test]
    fn complete_graph_lambda2() {
        // Normalized Laplacian of K_n has λ₂ = n/(n-1).
        for n in [4usize, 8, 16] {
            let g = generators::complete(n).unwrap();
            let l2 = normalized_lambda2(&g, 4000).unwrap();
            let expected = n as f64 / (n - 1) as f64;
            assert!((l2 - expected).abs() < 1e-3, "n={n}: {l2} vs {expected}");
        }
    }

    #[test]
    fn cycle_lambda2() {
        // Normalized Laplacian of C_n has λ₂ = 1 − cos(2π/n).
        for n in [6usize, 12, 24] {
            let g = generators::cycle(n).unwrap();
            let l2 = normalized_lambda2(&g, 20_000).unwrap();
            let expected = 1.0 - (2.0 * std::f64::consts::PI / n as f64).cos();
            assert!((l2 - expected).abs() < 1e-3, "n={n}: {l2} vs {expected}");
        }
    }

    #[test]
    fn cheeger_bounds_sandwich_exact_phi() {
        for g in [
            generators::complete(10).unwrap(),
            generators::cycle(10).unwrap(),
            generators::barbell(5).unwrap(),
            generators::star(9).unwrap(),
            generators::complete_bipartite(4, 5).unwrap(),
        ] {
            let phi = exact_conductance(&g).unwrap();
            let b = spectral_bounds(&g, 20_000).unwrap();
            assert!(
                b.conductance_lower <= phi + 1e-4,
                "lower {l} > phi {phi}",
                l = b.conductance_lower
            );
            assert!(
                phi <= b.conductance_upper + 1e-4,
                "phi {phi} > upper {u}",
                u = b.conductance_upper
            );
        }
    }

    #[test]
    fn bipartite_handled_despite_negative_spectrum() {
        // K_{a,b} has eigenvalue −1; the shifted iteration must not lock
        // onto it.
        let g = generators::complete_bipartite(5, 5).unwrap();
        let l2 = normalized_lambda2(&g, 20_000).unwrap();
        // λ₂(K_{n,n}) = 1.
        assert!((l2 - 1.0).abs() < 1e-3, "λ₂ = {l2}");
    }

    #[test]
    fn fiedler_sweep_finds_barbell_bottleneck() {
        let g = generators::barbell(6).unwrap();
        let order = fiedler_ordering(&g, 20_000).unwrap();
        let sweep = sweep_conductance(&g, &order).unwrap();
        let exact = exact_conductance(&g).unwrap();
        // The Fiedler sweep should find the bridge cut exactly here.
        assert!(
            (sweep - exact).abs() < 1e-9,
            "sweep {sweep} vs exact {exact}"
        );
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(spectral_bounds(&g, 100).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(spectral_bounds(&Graph::empty(3), 100).is_err());
    }

    use crate::Graph;
}
