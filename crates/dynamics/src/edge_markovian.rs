//! Edge-Markovian evolving graphs (Clementi et al. \[7\], related work).
//!
//! Given birth probability `p` and death probability `q`, each non-edge
//! appears independently with probability `p` and each edge disappears with
//! probability `q` at every step. For `p = Ω(1/n)` and constant `q`, the
//! synchronous push algorithm spreads a rumor in `O(log n)` rounds w.h.p. —
//! reproduced as extension experiment X1.

use crate::{DynamicNetwork, EdgeDelta};
use gossip_graph::{Graph, GraphBuilder, GraphError, NodeId, NodeSet, Topology};
use gossip_stats::{Geometric, SimRng};

/// The edge-Markovian evolving network.
///
/// The graph evolves exactly once per increasing `t`; calling
/// [`DynamicNetwork::topology`] repeatedly with the same `t` returns the
/// same graph.
///
/// # Example
///
/// ```
/// use gossip_dynamics::{DynamicNetwork, EdgeMarkovian};
/// use gossip_graph::{Graph, NodeSet};
/// use gossip_stats::SimRng;
///
/// let initial = Graph::empty(30);
/// let mut net = EdgeMarkovian::new(initial, 0.1, 0.3).unwrap();
/// let mut rng = SimRng::seed_from_u64(5);
/// let informed = NodeSet::new(30);
/// let g1 = net.topology(1, &informed, &mut rng);
/// assert!(g1.m() > 0); // births happened
/// ```
#[derive(Debug, Clone)]
pub struct EdgeMarkovian {
    initial: Graph,
    current: Topology,
    p: f64,
    q: f64,
    last_step: Option<u64>,
}

impl EdgeMarkovian {
    /// Creates the process from an initial graph and transition
    /// probabilities.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `p` or `q` is outside
    /// `\[0, 1\]`.
    pub fn new(initial: Graph, p: f64, q: f64) -> Result<Self, GraphError> {
        if !(0.0..=1.0).contains(&p) || !(0.0..=1.0).contains(&q) {
            return Err(GraphError::InvalidParameter(format!(
                "birth/death probabilities must lie in [0,1], got p={p}, q={q}"
            )));
        }
        let current = Topology::materialized(initial.clone());
        Ok(EdgeMarkovian {
            initial,
            current,
            p,
            q,
            last_step: None,
        })
    }

    /// Birth probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Death probability `q`.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The stationary edge density `p/(p+q)` of the per-edge two-state
    /// chain (when `p + q > 0`).
    pub fn stationary_density(&self) -> f64 {
        if self.p + self.q > 0.0 {
            self.p / (self.p + self.q)
        } else {
            0.0
        }
    }

    fn evolve(&mut self, rng: &mut SimRng) {
        let _ = self.evolve_delta(rng);
    }

    /// Advances one step and returns the exact edge diff.
    ///
    /// Deaths cost one Bernoulli draw per current edge; births are sampled
    /// by geometric skipping over the pair universe (each pair is hit
    /// independently with probability `p`, and hits on existing edges are
    /// ignored because their fate is the death draw). Per-pair behavior is
    /// identical to a full scan, but the work drops from `Θ(n²)` RNG draws
    /// to `O(m + p·n²)` — the sparse regime (`p = Θ(1/n)`) the related-work
    /// experiments sweep runs in `O(n)` per step.
    fn evolve_delta(&mut self, rng: &mut SimRng) -> EdgeDelta {
        let current = self
            .current
            .as_graph()
            .expect("edge-Markovian graphs are materialized");
        let n = current.n();
        let mut removed = Vec::new();
        let mut survivors: Vec<(NodeId, NodeId)> = Vec::new();
        for (u, v) in current.edges() {
            if rng.chance(self.q) {
                removed.push((u, v));
            } else {
                survivors.push((u, v));
            }
        }
        let mut added = Vec::new();
        if self.p > 0.0 && n >= 2 {
            let total_pairs = (n as u64) * (n as u64 - 1) / 2;
            let geo = Geometric::new(self.p).expect("validated in new()");
            let mut idx = geo.sample(rng) - 1;
            while idx < total_pairs {
                let (u, v) = unrank_pair(idx, n);
                if !current.has_edge(u, v) {
                    added.push((u, v));
                }
                idx += geo.sample(rng);
            }
        }
        let mut b = GraphBuilder::new(n);
        for &(u, v) in survivors.iter().chain(added.iter()) {
            b.add_edge(u, v).expect("in range");
        }
        self.current = Topology::materialized(b.build());
        EdgeDelta::new(added, removed)
    }
}

/// Maps a lexicographic rank over `{(u, v) : u < v < n}` back to the pair.
fn unrank_pair(idx: u64, n: usize) -> (NodeId, NodeId) {
    let n = n as u64;
    // base(u) = Σ_{i<u} (n-1-i) = u(2n-u-1)/2; find the largest u with
    // base(u) <= idx via the quadratic formula, then fix up float rounding.
    let disc = ((2 * n - 1) * (2 * n - 1) - 8 * idx) as f64;
    let mut u = (((2 * n - 1) as f64 - disc.sqrt()) / 2.0).floor() as u64;
    let base = |u: u64| u * (2 * n - u - 1) / 2;
    while u > 0 && base(u) > idx {
        u -= 1;
    }
    while u + 1 < n && base(u + 1) <= idx {
        u += 1;
    }
    let v = u + 1 + (idx - base(u));
    debug_assert!(v < n, "unranked pair out of range: idx {idx}, n {n}");
    (u as NodeId, v as NodeId)
}

impl DynamicNetwork for EdgeMarkovian {
    fn n(&self) -> usize {
        self.current.n()
    }

    fn topology(&mut self, t: u64, _informed: &NodeSet, rng: &mut SimRng) -> &Topology {
        match self.last_step {
            None => {
                // First exposure: evolve (t - 0) times from the initial graph
                // if the caller starts late; normally t == 0 and we expose
                // the initial graph unchanged.
                for _ in 0..t {
                    self.evolve(rng);
                }
            }
            Some(prev) if t > prev => {
                for _ in 0..(t - prev) {
                    self.evolve(rng);
                }
            }
            _ => {}
        }
        self.last_step = Some(t);
        &self.current
    }

    fn reset(&mut self) {
        self.current = Topology::materialized(self.initial.clone());
        self.last_step = None;
    }

    fn name(&self) -> &str {
        "edge-Markovian [7]"
    }

    /// Single-step advances report the exact flip set; multi-window jumps
    /// fall back to `None` (the engine rebuilds after `topology` catches
    /// up).
    fn edges_changed(
        &mut self,
        t: u64,
        _informed: &NodeSet,
        rng: &mut SimRng,
    ) -> Option<EdgeDelta> {
        match self.last_step {
            None if t == 0 => {
                self.last_step = Some(0);
                Some(EdgeDelta::empty())
            }
            Some(prev) if t == prev => Some(EdgeDelta::empty()),
            Some(prev) if t == prev + 1 => {
                let delta = self.evolve_delta(rng);
                self.last_step = Some(t);
                Some(delta)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn t0_exposes_initial() {
        let init = generators::cycle(10).unwrap();
        let mut net = EdgeMarkovian::new(init.clone(), 0.2, 0.2).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        let informed = NodeSet::new(10);
        assert_eq!(net.topology(0, &informed, &mut rng).as_graph(), Some(&init));
        // Repeated call with the same t: unchanged.
        assert_eq!(net.topology(0, &informed, &mut rng).as_graph(), Some(&init));
    }

    #[test]
    fn all_die_all_born_extremes() {
        let init = generators::complete(8).unwrap();
        let mut net = EdgeMarkovian::new(init, 0.0, 1.0).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        let informed = NodeSet::new(8);
        assert_eq!(net.topology(1, &informed, &mut rng).m(), 0);

        let mut net = EdgeMarkovian::new(Graph::empty(8), 1.0, 0.0).unwrap();
        assert_eq!(net.topology(1, &informed, &mut rng).m(), 28);
    }

    #[test]
    fn density_approaches_stationary() {
        let n = 40;
        let mut net = EdgeMarkovian::new(Graph::empty(n), 0.3, 0.3).unwrap();
        assert!((net.stationary_density() - 0.5).abs() < 1e-12);
        let mut rng = SimRng::seed_from_u64(3);
        let informed = NodeSet::new(n);
        let g = net.topology(50, &informed, &mut rng);
        let pairs = (n * (n - 1) / 2) as f64;
        let density = g.m() as f64 / pairs;
        assert!((density - 0.5).abs() < 0.1, "density {density}");
    }

    #[test]
    fn reset_restores_initial() {
        let init = generators::star(9).unwrap();
        let mut net = EdgeMarkovian::new(init.clone(), 0.5, 0.5).unwrap();
        let mut rng = SimRng::seed_from_u64(4);
        let informed = NodeSet::new(9);
        let _ = net.topology(3, &informed, &mut rng);
        net.reset();
        assert_eq!(net.topology(0, &informed, &mut rng).as_graph(), Some(&init));
    }

    #[test]
    fn validates_probabilities() {
        assert!(EdgeMarkovian::new(Graph::empty(5), 1.5, 0.2).is_err());
        assert!(EdgeMarkovian::new(Graph::empty(5), 0.2, -0.1).is_err());
    }

    use gossip_graph::Graph;
}
