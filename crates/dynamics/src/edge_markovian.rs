//! Edge-Markovian evolving graphs (Clementi et al. \[7\], related work).
//!
//! Given birth probability `p` and death probability `q`, each non-edge
//! appears independently with probability `p` and each edge disappears with
//! probability `q` at every step. For `p = Ω(1/n)` and constant `q`, the
//! synchronous push algorithm spreads a rumor in `O(log n)` rounds w.h.p. —
//! reproduced as extension experiment X1.

use crate::DynamicNetwork;
use gossip_graph::{Graph, GraphBuilder, GraphError, NodeId, NodeSet};
use gossip_stats::SimRng;

/// The edge-Markovian evolving network.
///
/// The graph evolves exactly once per increasing `t`; calling
/// [`DynamicNetwork::topology`] repeatedly with the same `t` returns the
/// same graph.
///
/// # Example
///
/// ```
/// use gossip_dynamics::{DynamicNetwork, EdgeMarkovian};
/// use gossip_graph::{Graph, NodeSet};
/// use gossip_stats::SimRng;
///
/// let initial = Graph::empty(30);
/// let mut net = EdgeMarkovian::new(initial, 0.1, 0.3).unwrap();
/// let mut rng = SimRng::seed_from_u64(5);
/// let informed = NodeSet::new(30);
/// let g1 = net.topology(1, &informed, &mut rng);
/// assert!(g1.m() > 0); // births happened
/// ```
#[derive(Debug, Clone)]
pub struct EdgeMarkovian {
    initial: Graph,
    current: Graph,
    p: f64,
    q: f64,
    last_step: Option<u64>,
}

impl EdgeMarkovian {
    /// Creates the process from an initial graph and transition
    /// probabilities.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `p` or `q` is outside
    /// `\[0, 1\]`.
    pub fn new(initial: Graph, p: f64, q: f64) -> Result<Self, GraphError> {
        if !(0.0..=1.0).contains(&p) || !(0.0..=1.0).contains(&q) {
            return Err(GraphError::InvalidParameter(format!(
                "birth/death probabilities must lie in [0,1], got p={p}, q={q}"
            )));
        }
        let current = initial.clone();
        Ok(EdgeMarkovian { initial, current, p, q, last_step: None })
    }

    /// Birth probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Death probability `q`.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The stationary edge density `p/(p+q)` of the per-edge two-state
    /// chain (when `p + q > 0`).
    pub fn stationary_density(&self) -> f64 {
        if self.p + self.q > 0.0 {
            self.p / (self.p + self.q)
        } else {
            0.0
        }
    }

    fn evolve(&mut self, rng: &mut SimRng) {
        let n = self.current.n();
        let mut b = GraphBuilder::new(n);
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                let alive = if self.current.has_edge(u, v) {
                    !rng.chance(self.q)
                } else {
                    rng.chance(self.p)
                };
                if alive {
                    b.add_edge(u, v).expect("in range");
                }
            }
        }
        self.current = b.build();
    }
}

impl DynamicNetwork for EdgeMarkovian {
    fn n(&self) -> usize {
        self.current.n()
    }

    fn topology(&mut self, t: u64, _informed: &NodeSet, rng: &mut SimRng) -> &Graph {
        match self.last_step {
            None => {
                // First exposure: evolve (t - 0) times from the initial graph
                // if the caller starts late; normally t == 0 and we expose
                // the initial graph unchanged.
                for _ in 0..t {
                    self.evolve(rng);
                }
            }
            Some(prev) if t > prev => {
                for _ in 0..(t - prev) {
                    self.evolve(rng);
                }
            }
            _ => {}
        }
        self.last_step = Some(t);
        &self.current
    }

    fn reset(&mut self) {
        self.current = self.initial.clone();
        self.last_step = None;
    }

    fn name(&self) -> &str {
        "edge-Markovian [7]"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn t0_exposes_initial() {
        let init = generators::cycle(10).unwrap();
        let mut net = EdgeMarkovian::new(init.clone(), 0.2, 0.2).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        let informed = NodeSet::new(10);
        assert_eq!(net.topology(0, &informed, &mut rng), &init);
        // Repeated call with the same t: unchanged.
        assert_eq!(net.topology(0, &informed, &mut rng), &init);
    }

    #[test]
    fn all_die_all_born_extremes() {
        let init = generators::complete(8).unwrap();
        let mut net = EdgeMarkovian::new(init, 0.0, 1.0).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        let informed = NodeSet::new(8);
        assert_eq!(net.topology(1, &informed, &mut rng).m(), 0);

        let mut net = EdgeMarkovian::new(Graph::empty(8), 1.0, 0.0).unwrap();
        assert_eq!(net.topology(1, &informed, &mut rng).m(), 28);
    }

    #[test]
    fn density_approaches_stationary() {
        let n = 40;
        let mut net = EdgeMarkovian::new(Graph::empty(n), 0.3, 0.3).unwrap();
        assert!((net.stationary_density() - 0.5).abs() < 1e-12);
        let mut rng = SimRng::seed_from_u64(3);
        let informed = NodeSet::new(n);
        let g = net.topology(50, &informed, &mut rng);
        let pairs = (n * (n - 1) / 2) as f64;
        let density = g.m() as f64 / pairs;
        assert!((density - 0.5).abs() < 0.1, "density {density}");
    }

    #[test]
    fn reset_restores_initial() {
        let init = generators::star(9).unwrap();
        let mut net = EdgeMarkovian::new(init.clone(), 0.5, 0.5).unwrap();
        let mut rng = SimRng::seed_from_u64(4);
        let informed = NodeSet::new(9);
        let _ = net.topology(3, &informed, &mut rng);
        net.reset();
        assert_eq!(net.topology(0, &informed, &mut rng), &init);
    }

    #[test]
    fn validates_probabilities() {
        assert!(EdgeMarkovian::new(Graph::empty(5), 1.5, 0.2).is_err());
        assert!(EdgeMarkovian::new(Graph::empty(5), 0.2, -0.1).is_err());
    }

    use gossip_graph::Graph;
}
