//! Per-step graph profiles feeding the spread-time bound calculators.
//!
//! Theorem 1.1 accumulates `Φ(G(t)) · ρ(t)` and Theorem 1.3 accumulates
//! `⌈Φ(G(t))⌉ · ρ̄(t)`; a [`StepProfile`] carries exactly those per-step
//! quantities. Profiles come from three sources:
//!
//! * [`exact_profile`] — exact enumeration, small graphs only;
//! * [`conservative_profile`] — sound *lower* bounds on `Φ` and `ρ` at any
//!   scale (spectral Cheeger bound for `Φ`; `ρ ≥ ρ̄` for connected graphs,
//!   see below). Lower bounds keep the Theorem 1.1/1.3 stopping times valid
//!   upper bounds on the spread time — they can only make the predicted `T`
//!   later, never earlier;
//! * closed forms on the [`ProfiledNetwork`] implementations (e.g.
//!   Observation 4.1 for `H_{k,Δ}`).
//!
//! Why `ρ(G) ≥ ρ̄(G)` for connected graphs: for any valid cut side `S`,
//! `d̄(S) ≥ 1`, so
//! `ρ(S) = min_e max(d̄/d_u, d̄/d_v) ≥ d̄(S) · min_e max(1/d_u, 1/d_v) ≥ ρ̄(G)`.

use crate::DynamicNetwork;
use gossip_graph::{conductance, connectivity, diligence, spectral, Graph, GraphError};
use serde::{Deserialize, Serialize};

/// The per-step quantities the paper's bounds consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepProfile {
    /// Conductance `Φ(G(t))` (or a lower bound on it).
    pub phi: f64,
    /// Diligence `ρ(G(t))` (or a lower bound on it); 0 when disconnected.
    pub rho: f64,
    /// Absolute diligence `ρ̄(G(t))`.
    pub rho_abs: f64,
    /// Whether `G(t)` is connected (`⌈Φ⌉` in Theorem 1.3).
    pub connected: bool,
}

impl StepProfile {
    /// The Theorem 1.1 per-step increment `Φ · ρ`.
    pub fn theorem_1_1_increment(&self) -> f64 {
        self.phi * self.rho
    }

    /// The Theorem 1.3 per-step increment `⌈Φ⌉ · ρ̄`.
    pub fn theorem_1_3_increment(&self) -> f64 {
        if self.connected {
            self.rho_abs
        } else {
            0.0
        }
    }

    /// A profile for a disconnected step (all increments zero).
    pub fn disconnected() -> Self {
        StepProfile {
            phi: 0.0,
            rho: 0.0,
            rho_abs: 0.0,
            connected: false,
        }
    }
}

/// Exact profile by exhaustive enumeration (small graphs; see
/// [`gossip_graph::EXACT_ENUMERATION_LIMIT`]).
///
/// # Errors
///
/// Propagates [`GraphError::TooLargeForExact`] / [`GraphError::EmptyGraph`]
/// from the exact measures. Edgeless graphs yield the disconnected profile
/// rather than an error when `n ≥ 2`.
pub fn exact_profile(g: &Graph) -> Result<StepProfile, GraphError> {
    if g.is_empty_graph() {
        return Ok(StepProfile::disconnected());
    }
    let connected = connectivity::is_connected(g);
    Ok(StepProfile {
        phi: conductance::exact_conductance(g)?,
        rho: diligence::exact_diligence(g)?,
        rho_abs: diligence::absolute_diligence(g),
        connected,
    })
}

/// Conservative profile at any scale: `phi` is the spectral Cheeger lower
/// bound `λ₂/2`, `rho` is `max(ρ̄, 1/(n−1))` (both valid lower bounds on
/// the true values for connected graphs), `rho_abs` is exact.
///
/// Feeding conservative profiles into the Theorem 1.1 calculator yields a
/// *later* stopping time than the true `T(G,c)`, which is still a valid
/// spread-time upper bound.
pub fn conservative_profile(g: &Graph, spectral_iters: usize) -> StepProfile {
    if g.is_empty_graph() || !connectivity::is_connected(g) {
        return StepProfile {
            phi: 0.0,
            rho: 0.0,
            rho_abs: diligence::absolute_diligence(g),
            connected: false,
        };
    }
    let rho_abs = diligence::absolute_diligence(g);
    let phi = spectral::spectral_bounds(g, spectral_iters)
        .map(|b| b.conductance_lower.max(0.0))
        .unwrap_or(0.0);
    let rho = rho_abs.max(diligence::diligence_floor(g.n()));
    StepProfile {
        phi,
        rho,
        rho_abs,
        connected: true,
    }
}

/// A dynamic network that can report the profile of its current graph in
/// closed form (no exponential enumeration), enabling the bound
/// calculators at paper scale.
///
/// `current_profile` refers to the graph most recently returned by
/// [`DynamicNetwork::topology`].
pub trait ProfiledNetwork: DynamicNetwork {
    /// Profile of the currently exposed graph.
    fn current_profile(&self) -> StepProfile;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn exact_profile_star() {
        let g = generators::star(6).unwrap();
        let p = exact_profile(&g).unwrap();
        assert!((p.phi - 1.0).abs() < 1e-12);
        assert!((p.rho - 1.0).abs() < 1e-12);
        assert_eq!(p.rho_abs, 1.0);
        assert!(p.connected);
        assert!((p.theorem_1_1_increment() - 1.0).abs() < 1e-12);
        assert_eq!(p.theorem_1_3_increment(), 1.0);
    }

    #[test]
    fn exact_profile_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let p = exact_profile(&g).unwrap();
        assert_eq!(p.phi, 0.0);
        assert_eq!(p.rho, 0.0);
        assert!(!p.connected);
        assert_eq!(p.theorem_1_1_increment(), 0.0);
        assert_eq!(p.theorem_1_3_increment(), 0.0);
        // Absolute diligence is still defined edge-wise.
        assert!(p.rho_abs > 0.0);
    }

    #[test]
    fn edgeless_profile() {
        let p = exact_profile(&Graph::empty(5)).unwrap();
        assert_eq!(p, StepProfile::disconnected());
    }

    #[test]
    fn conservative_lower_bounds_exact() {
        for g in [
            generators::complete(10).unwrap(),
            generators::cycle(9).unwrap(),
            generators::barbell(5).unwrap(),
            generators::star(7).unwrap(),
            generators::complete_bipartite(4, 6).unwrap(),
        ] {
            let exact = exact_profile(&g).unwrap();
            let cons = conservative_profile(&g, 20_000);
            assert!(
                cons.phi <= exact.phi + 1e-4,
                "phi: {} vs {}",
                cons.phi,
                exact.phi
            );
            assert!(
                cons.rho <= exact.rho + 1e-9,
                "rho: {} vs {}",
                cons.rho,
                exact.rho
            );
            assert_eq!(cons.rho_abs, exact.rho_abs);
            assert_eq!(cons.connected, exact.connected);
            assert!(cons.phi > 0.0);
            assert!(cons.rho > 0.0);
        }
    }

    #[test]
    fn conservative_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let p = conservative_profile(&g, 100);
        assert_eq!(p.phi, 0.0);
        assert_eq!(p.rho, 0.0);
        assert!(!p.connected);
    }

    use gossip_graph::Graph;
}
