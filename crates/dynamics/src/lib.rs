//! # gossip-dynamics
//!
//! Dynamic evolving networks for the `dynamic-rumor` workspace, the Rust
//! reproduction of *Tight Analysis of Asynchronous Rumor Spreading in
//! Dynamic Networks* (Pourmiri & Mans, PODC 2020).
//!
//! A dynamic evolving network `G = {G(t)}_{t=0,1,…}` is a sequence of graphs
//! on a fixed node set, exposed at integer times; all continuous-time
//! activity in `[t, t+1)` happens on `G(t)`. The paper's lower-bound
//! constructions are *adaptive adversaries*: the next graph may depend on
//! which nodes are currently informed. The [`DynamicNetwork`] trait models
//! exactly that interface. Windows are exposed as
//! [`gossip_graph::Topology`] views, so structured families
//! ([`StaticNetwork`] over an implicit backend, [`DynamicStar`],
//! [`CliquePendant`]) never materialize `O(n²)` adjacency lists.
//!
//! Implementations:
//!
//! * [`StaticNetwork`], [`SequenceNetwork`] — degenerate/scheduled dynamics;
//! * [`CliquePendant`] — `G1` of Figure 1(a) (Theorem 1.7(i): asynchrony
//!   loses);
//! * [`DynamicStar`] — `G2` of Figure 1(b) (Theorem 1.7(ii)/(iii):
//!   asynchrony wins);
//! * [`DiligentNetwork`] — the `ρ`-diligent family `G(n, ρ)` of Section 4
//!   built from `H_{k,Δ}(A_t, B_t)` (Theorem 1.2 lower bound);
//! * [`AbsoluteDiligentNetwork`] — the absolutely-`ρ`-diligent family of
//!   Section 5.1 (Theorem 1.5 lower bound, `Θ(n²)` worst case);
//! * [`AlternatingRegular`] — the Section 1.2 example separating this
//!   paper's bound from Giakkoupis et al. \[17\];
//! * [`EdgeMarkovian`] — the related-work random evolving model \[7\];
//! * [`ResampledGnp`] — dynamic Erdős–Rényi: an independent sampled
//!   `G(n, p)` ([`gossip_graph::Topology::gnp`]) every window, with exact
//!   [`DynamicNetwork::edges_changed`] diffs;
//! * [`MobileAgents`] — random-walk agents on a torus (related work
//!   \[20, 22\]).
//!
//! # Example
//!
//! ```
//! use gossip_dynamics::{DynamicNetwork, DynamicStar};
//! use gossip_graph::NodeSet;
//! use gossip_stats::SimRng;
//!
//! let mut net = DynamicStar::new(8).unwrap();
//! let mut rng = SimRng::seed_from_u64(3);
//! let mut informed = NodeSet::new(net.n());
//! informed.insert(1);
//! let g = net.topology(0, &informed, &mut rng);
//! // The center is the lowest uninformed node: node 0.
//! assert_eq!(g.degree(0), net.n() - 1);
//! ```

//!
//! See the workspace `README.md` (repo root) for the crate map and the
//! window / event-stream engine duality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod absolute;
mod alternating;
mod clique_pendant;
mod delta;
mod diligent;
mod dynamic_star;
mod edge_markovian;
mod mobile;
mod network;
pub mod profile;
mod resampled;

pub use absolute::AbsoluteDiligentNetwork;
pub use alternating::AlternatingRegular;
pub use clique_pendant::CliquePendant;
pub use delta::EdgeDelta;
pub use diligent::DiligentNetwork;
pub use dynamic_star::DynamicStar;
pub use edge_markovian::EdgeMarkovian;
pub use mobile::MobileAgents;
pub use network::{DynamicNetwork, SequenceNetwork, StaticNetwork};
pub use profile::{ProfiledNetwork, StepProfile};
pub use resampled::ResampledGnp;
