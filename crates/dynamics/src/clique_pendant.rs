//! The dynamic network `G1` of Figure 1(a) — Theorem 1.7(i).
//!
//! `G(0)` is an `n`-node clique with a pendant edge to node `n+1` (the
//! rumor's source). For every `t ≥ 1`, `G(t)` consists of two equally-sized
//! cliques joined by a single bridge edge; the pendant-attachment node sits
//! in the left clique and the source in the right clique.
//!
//! Why it separates the algorithms: in the synchronous algorithm the
//! pendant node pushes to its unique neighbor with probability 1 in round
//! 0, so from `t = 1` both cliques contain an informed node and finish in
//! `Θ(log n)` rounds. Asynchronously, with constant probability the pendant
//! edge never fires during `[0, 1)`; afterwards the left clique can only be
//! reached over the bridge, which fires at rate `Θ(1/n)` — so
//! `Ta(G1) = Ω(n)`.
//!
//! Both phases are instances of the implicit [`Topology::two_cliques`]
//! backend (`G(0)` is the degenerate split whose right "clique" is the lone
//! pendant node), so the family holds O(1) state instead of two `Θ(n²)`
//! CSR graphs and scales to the sizes where the `Ω(n)` asynchronous lower
//! bound separates cleanly from `Θ(log n)`.

use crate::{DynamicNetwork, EdgeDelta};
use gossip_graph::{GraphError, NodeId, NodeSet, Topology};
use gossip_stats::SimRng;

/// Figure 1(a): clique with a pendant source, then two bridged cliques.
///
/// Node layout (total `N = clique_size + 1` nodes):
/// * node `0` — the pendant's attachment point ("node 1" in the figure),
///   ends up in the left clique;
/// * node `N−1` — the pendant source ("node n+1"), ends up in the right
///   clique;
/// * the bridge at every step is the edge `{0, N−1}`.
///
/// # Example
///
/// ```
/// use gossip_dynamics::{CliquePendant, DynamicNetwork};
/// use gossip_graph::NodeSet;
/// use gossip_stats::SimRng;
///
/// let mut net = CliquePendant::new(10).unwrap();
/// let start = net.suggested_start();
/// assert_eq!(start, 10); // the pendant node
/// let mut rng = SimRng::seed_from_u64(1);
/// let informed = NodeSet::new(net.n());
/// assert_eq!(net.topology(0, &informed, &mut rng).degree(start), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CliquePendant {
    initial: Topology,
    later: Topology,
    current_is_initial: bool,
}

impl CliquePendant {
    /// Builds `G1` with an `clique_size`-node initial clique (so
    /// `clique_size + 1` nodes in total).
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `clique_size < 4` (each of the
    /// two later cliques needs at least 2 nodes).
    pub fn new(clique_size: usize) -> Result<Self, GraphError> {
        if clique_size < 4 {
            return Err(GraphError::InvalidParameter(format!(
                "clique-pendant network needs clique_size >= 4, got {clique_size}"
            )));
        }
        let n_total = clique_size + 1;
        let pendant = (n_total - 1) as NodeId;

        // G(0): the full clique on the left, the pendant alone on the
        // right, joined by the pendant edge {0, N-1}.
        let initial = Topology::two_cliques(n_total, clique_size, (0, pendant))?;
        // G(t >= 1): two equally-sized cliques partitioning all N nodes;
        // node 0 left, node N-1 right, bridge {0, N-1}.
        let later = Topology::two_cliques(n_total, n_total / 2, (0, pendant))?;

        Ok(CliquePendant {
            initial,
            later,
            current_is_initial: true,
        })
    }

    /// The topology used from `t = 1` on (two bridged cliques).
    pub fn later_topology(&self) -> &Topology {
        &self.later
    }
}

impl DynamicNetwork for CliquePendant {
    fn n(&self) -> usize {
        self.initial.n()
    }

    fn topology(&mut self, t: u64, _informed: &NodeSet, _rng: &mut SimRng) -> &Topology {
        self.current_is_initial = t == 0;
        if t == 0 {
            &self.initial
        } else {
            &self.later
        }
    }

    fn reset(&mut self) {
        self.current_is_initial = true;
    }

    fn name(&self) -> &str {
        "clique-pendant (G1, Fig. 1a)"
    }

    /// The pendant node `n+1` — where the paper injects the rumor.
    fn suggested_start(&self) -> NodeId {
        (self.n() - 1) as NodeId
    }

    /// One topology change, ever: the `t = 1` switch from clique+pendant to
    /// two bridged cliques. The switch rewires `Θ(n²)` edges, so the diff
    /// is declined (`None` — the engine rebuilds once); every later window
    /// reports the empty delta.
    fn edges_changed(
        &mut self,
        t: u64,
        _informed: &NodeSet,
        _rng: &mut SimRng,
    ) -> Option<EdgeDelta> {
        if t == 1 {
            self.current_is_initial = false;
            None
        } else {
            self.current_is_initial = t == 0;
            Some(EdgeDelta::empty())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_graph_shape() {
        let mut net = CliquePendant::new(8).unwrap();
        let informed = NodeSet::new(9);
        let mut rng = SimRng::seed_from_u64(0);
        let g0 = net.topology(0, &informed, &mut rng);
        assert_eq!(g0.n(), 9);
        // Pendant has degree 1, its attachment has clique degree + 1.
        assert_eq!(g0.degree(8), 1);
        assert_eq!(g0.degree(0), 8);
        assert_eq!(g0.degree(3), 7);
        assert_eq!(g0.m(), 8 * 7 / 2 + 1);
        assert!(g0.is_implicit());
    }

    #[test]
    fn later_graph_two_bridged_cliques() {
        let mut net = CliquePendant::new(8).unwrap();
        let informed = NodeSet::new(9);
        let mut rng = SimRng::seed_from_u64(0);
        let g1 = net.topology(1, &informed, &mut rng).clone();
        // left = {0..3}, right = {4..8}: sizes 4 and 5 for N=9.
        assert!(g1.has_edge(0, 8));
        assert!(g1.has_edge(0, 1));
        assert!(g1.has_edge(4, 8));
        assert!(!g1.has_edge(1, 4));
        // Same graph forever after.
        let g5 = net.topology(5, &informed, &mut rng);
        assert_eq!(&g1, g5);
    }

    #[test]
    fn equal_sized_cliques_for_odd_total() {
        // clique_size = 9 -> N = 10 -> two cliques of 5.
        let mut net = CliquePendant::new(9).unwrap();
        let informed = NodeSet::new(10);
        let mut rng = SimRng::seed_from_u64(0);
        let g1 = net.topology(1, &informed, &mut rng);
        // Node 4 in left clique: degree 4; node 5 in right: degree 4;
        // bridge endpoints have +1.
        assert_eq!(g1.degree(4), 4);
        assert_eq!(g1.degree(5), 4);
        assert_eq!(g1.degree(0), 5);
        assert_eq!(g1.degree(9), 5);
    }

    #[test]
    fn start_is_pendant() {
        let net = CliquePendant::new(6).unwrap();
        assert_eq!(net.suggested_start(), 6);
    }

    #[test]
    fn reset_restores_initial() {
        let mut net = CliquePendant::new(6).unwrap();
        let informed = NodeSet::new(7);
        let mut rng = SimRng::seed_from_u64(0);
        net.topology(3, &informed, &mut rng);
        net.reset();
        let g = net.topology(0, &informed, &mut rng);
        assert_eq!(g.degree(6), 1);
    }

    #[test]
    fn switch_declines_delta_then_reports_empty() {
        let mut net = CliquePendant::new(6).unwrap();
        let informed = NodeSet::new(7);
        let mut rng = SimRng::seed_from_u64(0);
        assert!(net.edges_changed(0, &informed, &mut rng).is_some());
        assert!(net.edges_changed(1, &informed, &mut rng).is_none());
        assert!(net
            .edges_changed(2, &informed, &mut rng)
            .is_some_and(|d| d.is_empty()));
    }

    #[test]
    fn validates_size() {
        assert!(CliquePendant::new(3).is_err());
        assert!(CliquePendant::new(4).is_ok());
    }
}
