//! The `ρ`-diligent dynamic network `G(n, ρ)` of Section 4 — the family on
//! which the Theorem 1.1 upper bound is almost tight (Theorem 1.2).
//!
//! `G(t) = H_{k,Δ}(A_t, B_t)` with `Δ = ⌈1/ρ⌉` and
//! `k = Θ(log n / log log n)`. The adversary watches the informed set and
//! moves every informed `B`-node over to the `A` side at each step
//! (`B_{t+1} = B_t \ I_{t+1}`), rebuilding the graph while
//! `n/4 ≤ |B_{t+1}| < |B_t|`; once `|B|` would drop below `n/4` the network
//! stops evolving.
//!
//! The effect: the rumor must re-traverse the `k`-hop bipartite string to
//! reach fresh `B` nodes essentially one "string crossing" at a time, and
//! Lemma 4.2 bounds each unit step's crossing probability by `2^k Δ / k!` —
//! yielding the `Ω(nρ/k)` spread-time lower bound while the graph stays
//! `Θ(ρ)`-diligent with `Φ = Θ(Δ²/(kΔ² + n))` throughout (Observation 4.1).

use crate::{DynamicNetwork, EdgeDelta, ProfiledNetwork, StepProfile};
use gossip_graph::generators::{h_k_delta, HkDeltaParams};
use gossip_graph::{GraphError, NodeId, NodeSet, Topology};
use gossip_stats::SimRng;

/// The Section 4 adaptive network `G(n, ρ)`.
///
/// # Example
///
/// ```
/// use gossip_dynamics::{DiligentNetwork, DynamicNetwork};
/// use gossip_graph::NodeSet;
/// use gossip_stats::SimRng;
///
/// let mut net = DiligentNetwork::new(240, 0.2).unwrap();
/// let mut rng = SimRng::seed_from_u64(1);
/// let mut informed = NodeSet::new(net.n());
/// informed.insert(net.suggested_start());
/// let g = net.topology(0, &informed, &mut rng);
/// assert_eq!(g.n(), 240);
/// ```
#[derive(Debug, Clone)]
pub struct DiligentNetwork {
    n: usize,
    params: HkDeltaParams,
    a_nodes: Vec<NodeId>,
    b_nodes: Vec<NodeId>,
    /// The exposed window (materialized backend over the `H_{k,Δ}` build).
    current: Option<Topology>,
    frozen: bool,
}

impl DiligentNetwork {
    /// Builds `G(n, ρ)` with the paper's parameter choices
    /// `Δ = ⌈1/ρ⌉` and `k = max(1, round(ln n / ln ln n))`.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `ρ ∉ (0, 1]` or `n` is too
    /// small to host the construction (the paper's regime is
    /// `1/√n ≤ ρ ≤ 1`; `|A_0| = n/4` must fit `S_0` plus an expander and
    /// `|B_0| = 3n/4` must fit `k` clusters plus an expander).
    pub fn new(n: usize, rho: f64) -> Result<Self, GraphError> {
        if !(rho > 0.0 && rho <= 1.0) {
            return Err(GraphError::InvalidParameter(format!(
                "rho must be in (0, 1], got {rho}"
            )));
        }
        let delta = (1.0 / rho).ceil() as usize;
        let ln_n = (n.max(3) as f64).ln();
        let k = (ln_n / ln_n.ln().max(1.0)).round().max(1.0) as usize;
        Self::with_params(n, HkDeltaParams { k, delta })
    }

    /// Builds `G(n, ρ)` with explicit `k` and `Δ`.
    ///
    /// # Errors
    ///
    /// As [`DiligentNetwork::new`].
    pub fn with_params(n: usize, params: HkDeltaParams) -> Result<Self, GraphError> {
        let a_size = n / 4;
        let b_size = n - a_size;
        let side_min = params.delta.max(5);
        if a_size < params.delta + side_min || b_size < params.k * params.delta + side_min {
            return Err(GraphError::InvalidParameter(format!(
                "n = {n} too small for H(k={}, delta={}) with |A|=n/4",
                params.k, params.delta
            )));
        }
        let a_nodes: Vec<NodeId> = (0..a_size as NodeId).collect();
        let b_nodes: Vec<NodeId> = (a_size as NodeId..n as NodeId).collect();
        Ok(DiligentNetwork {
            n,
            params,
            a_nodes,
            b_nodes,
            current: None,
            frozen: false,
        })
    }

    /// The construction parameters (`k`, `Δ`).
    pub fn params(&self) -> HkDeltaParams {
        self.params
    }

    /// The current `B_t` (uninformed side), in construction order.
    pub fn b_nodes(&self) -> &[NodeId] {
        &self.b_nodes
    }

    /// The Theorem 1.2 spread-time lower bound for these parameters:
    /// `n / (4·k·Δ)` (the proof's Inequality (11), of order `nρ/k`).
    pub fn lower_bound_time(&self) -> f64 {
        self.n as f64 / (4.0 * self.params.k as f64 * self.params.delta as f64)
    }

    fn rebuild(&mut self, rng: &mut SimRng) {
        let h = h_k_delta(self.n, &self.a_nodes, &self.b_nodes, self.params, rng)
            .expect("sizes validated at construction and |B| only shrinks above n/4");
        self.current = Some(Topology::materialized(h.into_graph()));
    }
}

impl DynamicNetwork for DiligentNetwork {
    fn n(&self) -> usize {
        self.n
    }

    fn topology(&mut self, _t: u64, informed: &NodeSet, rng: &mut SimRng) -> &Topology {
        if self.current.is_none() {
            self.rebuild(rng);
            return self.current.as_ref().expect("just built");
        }
        if !self.frozen {
            let b_new: Vec<NodeId> = self
                .b_nodes
                .iter()
                .copied()
                .filter(|&v| !informed.contains(v))
                .collect();
            if b_new.len() < self.b_nodes.len() {
                if b_new.len() >= self.n / 4 {
                    let moved: Vec<NodeId> = self
                        .b_nodes
                        .iter()
                        .copied()
                        .filter(|&v| informed.contains(v))
                        .collect();
                    self.a_nodes.extend(moved);
                    self.b_nodes = b_new;
                    self.rebuild(rng);
                } else {
                    // |B| would fall below n/4: per the paper, the network
                    // stops evolving (G(t+1) = G(t) from here on).
                    self.frozen = true;
                }
            }
        }
        self.current.as_ref().expect("built on first call")
    }

    fn reset(&mut self) {
        let a_size = self.n / 4;
        self.a_nodes = (0..a_size as NodeId).collect();
        self.b_nodes = (a_size as NodeId..self.n as NodeId).collect();
        self.current = None;
        self.frozen = false;
    }

    fn name(&self) -> &str {
        "rho-diligent H(k,delta) (Sec. 4)"
    }

    /// A node of `A_0` (the paper injects the rumor into the `A` side);
    /// node `0` is in `A_0` but outside `S_0`'s stitched region only for
    /// `Δ > 0` — any `A` node is admissible, the construction's bound holds
    /// regardless.
    fn suggested_start(&self) -> NodeId {
        0
    }

    /// As for the Section 5.1 family: the empty delta whenever the
    /// adversary has no informed `B` node to move (or is frozen), `None`
    /// (rebuild) when it re-stitches the string.
    fn edges_changed(
        &mut self,
        _t: u64,
        informed: &NodeSet,
        _rng: &mut SimRng,
    ) -> Option<EdgeDelta> {
        self.current.as_ref()?;
        if self.frozen || !self.b_nodes.iter().any(|&v| informed.contains(v)) {
            return Some(EdgeDelta::empty());
        }
        None
    }
}

impl ProfiledNetwork for DiligentNetwork {
    /// Observation 4.1 closed forms: `Φ = Δ²/(kΔ² + n)`, `ρ = 1/Δ`; cut
    /// edges interior to the string have both endpoints of degree `2Δ`, so
    /// `ρ̄ = 1/(2Δ)`.
    fn current_profile(&self) -> StepProfile {
        let delta = self.params.delta as f64;
        let d2 = delta * delta;
        StepProfile {
            phi: d2 / (self.params.k as f64 * d2 + self.n as f64),
            rho: 1.0 / delta,
            rho_abs: 1.0 / (2.0 * delta),
            connected: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::connectivity::is_connected;

    #[test]
    fn builds_and_stays_connected() {
        let mut net = DiligentNetwork::new(240, 0.2).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        let informed = NodeSet::new(240);
        let g = net.topology(0, &informed, &mut rng).materialize();
        assert_eq!(g.n(), 240);
        assert!(is_connected(&g));
    }

    #[test]
    fn rebuilds_when_b_nodes_informed() {
        let mut net = DiligentNetwork::with_params(200, HkDeltaParams { k: 2, delta: 5 }).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        let mut informed = NodeSet::new(200);
        informed.insert(0);
        let g0 = net.topology(0, &informed, &mut rng).clone();
        assert_eq!(net.b_nodes().len(), 150);
        // Inform a few B-side nodes (ids >= 50).
        informed.insert(60);
        informed.insert(61);
        let g1 = net.topology(1, &informed, &mut rng).clone();
        assert_eq!(net.b_nodes().len(), 148);
        assert_ne!(g0, g1);
        // 60 and 61 moved to the A side; they must not be in B.
        assert!(!net.b_nodes().contains(&60));
    }

    #[test]
    fn no_rebuild_without_b_progress() {
        let mut net = DiligentNetwork::with_params(200, HkDeltaParams { k: 2, delta: 5 }).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        let mut informed = NodeSet::new(200);
        informed.insert(0);
        let g0 = net.topology(0, &informed, &mut rng).clone();
        // Informing more A-side nodes only must keep the graph identical.
        informed.insert(1);
        informed.insert(2);
        let g1 = net.topology(1, &informed, &mut rng);
        assert_eq!(&g0, g1);
    }

    #[test]
    fn freezes_below_quarter() {
        let n = 200;
        let mut net = DiligentNetwork::with_params(n, HkDeltaParams { k: 2, delta: 5 }).unwrap();
        let mut rng = SimRng::seed_from_u64(4);
        let informed = NodeSet::new(n);
        let _ = net.topology(0, &informed, &mut rng);
        // Inform all but 40 B nodes: |B_new| = 40 < 50 = n/4 -> freeze.
        let mut informed = NodeSet::new(n);
        for v in 50..160u32 {
            informed.insert(v);
        }
        let g1 = net.topology(1, &informed, &mut rng).clone();
        // Further changes keep the same graph.
        let mut informed2 = NodeSet::full(n);
        informed2.remove(199);
        let g2 = net.topology(2, &informed2, &mut rng);
        assert_eq!(&g1, g2);
        assert_eq!(net.b_nodes().len(), 150, "frozen network must not mutate B");
    }

    #[test]
    fn reset_restores_initial_partition() {
        let mut net = DiligentNetwork::with_params(200, HkDeltaParams { k: 2, delta: 5 }).unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        let mut informed = NodeSet::new(200);
        for v in 60..70u32 {
            informed.insert(v);
        }
        let _ = net.topology(0, &informed, &mut rng);
        let _ = net.topology(1, &informed, &mut rng);
        net.reset();
        assert_eq!(net.b_nodes().len(), 150);
        let informed = NodeSet::new(200);
        let g = net.topology(0, &informed, &mut rng);
        assert_eq!(g.n(), 200);
    }

    #[test]
    fn profile_matches_observation_4_1() {
        let net = DiligentNetwork::with_params(400, HkDeltaParams { k: 3, delta: 8 }).unwrap();
        let p = net.current_profile();
        assert!((p.phi - 64.0 / (3.0 * 64.0 + 400.0)).abs() < 1e-12);
        assert!((p.rho - 0.125).abs() < 1e-12);
        assert!((p.rho_abs - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_formula() {
        let net = DiligentNetwork::with_params(400, HkDeltaParams { k: 4, delta: 10 }).unwrap();
        assert!((net.lower_bound_time() - 400.0 / 160.0).abs() < 1e-12);
    }

    #[test]
    fn validates_parameters() {
        assert!(DiligentNetwork::new(100, 0.0).is_err());
        assert!(DiligentNetwork::new(100, 1.5).is_err());
        // delta too large for n/4.
        assert!(DiligentNetwork::with_params(100, HkDeltaParams { k: 2, delta: 20 }).is_err());
    }

    #[test]
    fn paper_parameter_defaults() {
        let net = DiligentNetwork::new(1024, 0.1).unwrap();
        assert_eq!(net.params().delta, 10);
        assert!(net.params().k >= 2);
    }
}
