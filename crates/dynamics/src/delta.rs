//! Edge-level diffs between consecutive windows of a dynamic network.
//!
//! The event-stream engine (`gossip-sim`) maintains per-node cut rates
//! incrementally; when the topology changes it only needs to know *which
//! edges* changed, not the whole new graph. [`EdgeDelta`] carries exactly
//! that, and [`EdgeDelta::between`] computes it for network families whose
//! consecutive graphs are built independently.

use gossip_graph::{Graph, NodeId, Topology};

/// The symmetric difference between the edge sets of `G(t−1)` and `G(t)`.
///
/// An **empty** delta means "the graph did not change" — the cheapest
/// possible answer, letting engines skip all per-window topology work. A
/// non-empty delta lists added and removed edges (each with `u < v`); every
/// node whose degree or incident cut edges changed is an endpoint of some
/// listed edge.
///
/// # Example
///
/// ```
/// use gossip_dynamics::EdgeDelta;
/// use gossip_graph::Graph;
///
/// let old = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
/// let new = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
/// let delta = EdgeDelta::between(&old, &new);
/// assert_eq!(delta.added(), &[(2, 3)]);
/// assert_eq!(delta.removed(), &[(1, 2)]);
/// assert!(!delta.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    added: Vec<(NodeId, NodeId)>,
    removed: Vec<(NodeId, NodeId)>,
}

impl EdgeDelta {
    /// The "nothing changed" delta.
    pub fn empty() -> Self {
        EdgeDelta::default()
    }

    /// Builds a delta from explicit edge lists (endpoints are normalized to
    /// `u < v`).
    pub fn new(added: Vec<(NodeId, NodeId)>, removed: Vec<(NodeId, NodeId)>) -> Self {
        let normalize = |mut edges: Vec<(NodeId, NodeId)>| {
            for e in &mut edges {
                if e.0 > e.1 {
                    *e = (e.1, e.0);
                }
            }
            edges
        };
        EdgeDelta {
            added: normalize(added),
            removed: normalize(removed),
        }
    }

    /// Computes the symmetric difference of two graphs over the same node
    /// set, in `O(vol(old) + vol(new))`.
    ///
    /// # Panics
    ///
    /// Panics if the graphs disagree on node count (dynamic networks keep
    /// the node set fixed).
    pub fn between(old: &Graph, new: &Graph) -> Self {
        assert_eq!(old.n(), new.n(), "dynamic networks have a fixed node set");
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for v in 0..old.n() as NodeId {
            merge_rows(
                v,
                old.neighbors(v),
                new.neighbors(v),
                &mut added,
                &mut removed,
            );
        }
        EdgeDelta { added, removed }
    }

    /// As [`EdgeDelta::between`], over arbitrary [`Topology`] backends —
    /// without materializing either side into a [`Graph`]. Rows come
    /// straight from [`Topology::neighbors_slice`] where the backend holds
    /// (or has realized) sorted adjacency — sampled `G(n, p)` rows in
    /// particular — and fall back to a per-node collect-and-sort for
    /// closed-form backends. `O(n + vol(old) + vol(new))`.
    ///
    /// # Panics
    ///
    /// Panics if the topologies disagree on node count.
    pub fn between_topologies(old: &Topology, new: &Topology) -> Self {
        assert_eq!(old.n(), new.n(), "dynamic networks have a fixed node set");
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let mut buf_a = Vec::new();
        let mut buf_b = Vec::new();
        for v in 0..old.n() as NodeId {
            let a = match old.neighbors_slice(v) {
                Some(row) => row,
                None => {
                    buf_a.clear();
                    old.for_each_neighbor(v, |u| buf_a.push(u));
                    buf_a.sort_unstable();
                    buf_a.as_slice()
                }
            };
            let b = match new.neighbors_slice(v) {
                Some(row) => row,
                None => {
                    buf_b.clear();
                    new.for_each_neighbor(v, |u| buf_b.push(u));
                    buf_b.sort_unstable();
                    buf_b.as_slice()
                }
            };
            merge_rows(v, a, b, &mut added, &mut removed);
        }
        EdgeDelta { added, removed }
    }

    /// Edges present in `G(t)` but not `G(t−1)`, as `(u, v)` with `u < v`.
    pub fn added(&self) -> &[(NodeId, NodeId)] {
        &self.added
    }

    /// Edges present in `G(t−1)` but not `G(t)`, as `(u, v)` with `u < v`.
    pub fn removed(&self) -> &[(NodeId, NodeId)] {
        &self.removed
    }

    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total number of changed edges.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Iterates every endpoint of every changed edge (with repetitions).
    pub fn touched_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.added
            .iter()
            .chain(self.removed.iter())
            .flat_map(|&(u, v)| [u, v])
    }

    /// Reverses direction: the delta from `G(t)` back to `G(t−1)`.
    pub fn inverted(&self) -> Self {
        EdgeDelta {
            added: self.removed.clone(),
            removed: self.added.clone(),
        }
    }
}

/// Merges two sorted neighbor rows of `v`, recording the `u < v`-normalized
/// symmetric difference (each undirected edge is reported once, from its
/// lower endpoint).
fn merge_rows(
    v: NodeId,
    a: &[NodeId],
    b: &[NodeId],
    added: &mut Vec<(NodeId, NodeId)>,
    removed: &mut Vec<(NodeId, NodeId)>,
) {
    let (mut i, mut j) = (0, 0);
    loop {
        match (a.get(i).copied(), b.get(j).copied()) {
            (Some(x), Some(y)) if x == y => {
                i += 1;
                j += 1;
            }
            (Some(x), Some(y)) if x < y => {
                if x > v {
                    removed.push((v, x));
                }
                i += 1;
            }
            (Some(x), None) => {
                if x > v {
                    removed.push((v, x));
                }
                i += 1;
            }
            (_, Some(y)) => {
                if y > v {
                    added.push((v, y));
                }
                j += 1;
            }
            (None, None) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn identical_graphs_empty_delta() {
        let g = generators::cycle(8).unwrap();
        let d = EdgeDelta::between(&g, &g);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn between_is_exact_symmetric_difference() {
        let old = generators::path(6).unwrap(); // 0-1-2-3-4-5
        let new = generators::cycle(6).unwrap(); // path + (5,0)
        let d = EdgeDelta::between(&old, &new);
        assert_eq!(d.added(), &[(0, 5)]);
        assert!(d.removed().is_empty());
        let back = EdgeDelta::between(&new, &old);
        assert_eq!(back, d.inverted());
    }

    #[test]
    fn dense_vs_sparse() {
        let sparse = generators::cycle(5).unwrap();
        let dense = generators::complete(5).unwrap();
        let d = EdgeDelta::between(&sparse, &dense);
        assert_eq!(d.added().len(), dense.m() - sparse.m());
        assert!(d.removed().is_empty());
        // Applying the delta to the sparse edge set gives the dense set.
        let mut edges: Vec<(u32, u32)> = sparse.edges().collect();
        edges.extend_from_slice(d.added());
        let rebuilt = Graph::from_edges(5, &edges).unwrap();
        assert_eq!(rebuilt, dense);
    }

    #[test]
    fn touched_nodes_covers_endpoints() {
        let d = EdgeDelta::new(vec![(3, 1)], vec![(0, 2)]);
        assert_eq!(d.added(), &[(1, 3)]); // normalized
        let mut touched: Vec<u32> = d.touched_nodes().collect();
        touched.sort_unstable();
        assert_eq!(touched, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn mismatched_sizes_panic() {
        let a = generators::path(4).unwrap();
        let b = generators::path(5).unwrap();
        EdgeDelta::between(&a, &b);
    }

    #[test]
    fn between_topologies_matches_graph_diff() {
        // Sampled rows (sorted slices) against each other and against the
        // materialized reference diff.
        let old = Topology::gnp(30, 0.2, 1).unwrap();
        let new = Topology::gnp(30, 0.2, 2).unwrap();
        let d = EdgeDelta::between_topologies(&old, &new);
        assert_eq!(
            d,
            EdgeDelta::between(&old.materialize(), &new.materialize())
        );
        assert!(!d.is_empty());
        // Closed-form backends exercise the collect-and-sort fallback
        // (circulant rows enumerate in jump order, not sorted order).
        let a = Topology::circulant(12, &[1, 3]).unwrap();
        let b = Topology::complete(12).unwrap();
        assert_eq!(
            EdgeDelta::between_topologies(&a, &b),
            EdgeDelta::between(&a.materialize(), &b.materialize())
        );
        let t = Topology::gnp(16, 0.3, 5).unwrap();
        assert!(EdgeDelta::between_topologies(&t, &t.clone()).is_empty());
    }
}
