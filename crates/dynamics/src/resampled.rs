//! Dynamic Erdős–Rényi: a fresh sampled `G(n, p)` every window.
//!
//! The paper's bounds hold for *arbitrary* dynamic graph sequences; the
//! harshest oblivious random sequence is full independence — `G(t)` is a
//! brand-new `G(n, p)` draw each window, with no correlation to `G(t−1)`
//! (the `q = 1 − p`-free limit of the edge-Markovian model \[7\], and the
//! dynamic-graph regime Clementi et al. analyze for flooding). Every
//! window is a seeded sampled [`Topology::gnp`] backend, so a step costs
//! `O(1)` up front and `O(n + np·n)` realized lazily — no `Θ(n²)` scan,
//! no CSR build — and [`ResampledGnp::edges_changed`] hands the engine
//! the exact symmetric difference between consecutive samples
//! (`O(n + m_old + m_new)` straight off the realized rows).

use crate::{DynamicNetwork, EdgeDelta};
use gossip_graph::{GraphError, NodeSet, Topology};
use gossip_stats::SimRng;

/// The independently-resampled `G(n, p)` dynamic network.
///
/// `G(0)` is drawn from the construction seed (so every trial of a sweep
/// starts from the same first window, mirroring [`crate::EdgeMarkovian`]'s
/// shared initial graph); every later window is resampled from the trial
/// RNG, exactly once per increasing `t`.
///
/// # Example
///
/// ```
/// use gossip_dynamics::{DynamicNetwork, ResampledGnp};
/// use gossip_graph::NodeSet;
/// use gossip_stats::SimRng;
///
/// let mut net = ResampledGnp::new(500, 0.02, 7).unwrap();
/// let mut rng = SimRng::seed_from_u64(5);
/// let informed = NodeSet::new(500);
/// let m0 = net.topology(0, &informed, &mut rng).m();
/// let m1 = net.topology(1, &informed, &mut rng).m();
/// assert!(m0 > 0 && m1 > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ResampledGnp {
    n: usize,
    p: f64,
    initial: Topology,
    current: Topology,
    last_step: Option<u64>,
}

impl ResampledGnp {
    /// Creates the process. `seed` fixes the first window's sample.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `n < 2` or `p ∉ (0, 1]`
    /// (as [`Topology::gnp`]).
    pub fn new(n: usize, p: f64, seed: u64) -> Result<Self, GraphError> {
        let initial = Topology::gnp(n, p, SimRng::seed_from_u64(seed).next_u64())?;
        Ok(ResampledGnp {
            n,
            p,
            current: initial.clone(),
            initial,
            last_step: None,
        })
    }

    /// Edge probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The window currently exposed.
    pub fn current(&self) -> &Topology {
        &self.current
    }

    /// Replaces the window with a fresh sample seeded from the trial RNG
    /// and returns the topology it replaced.
    fn resample(&mut self, rng: &mut SimRng) -> Topology {
        let fresh =
            Topology::gnp(self.n, self.p, rng.next_u64()).expect("parameters validated in new()");
        std::mem::replace(&mut self.current, fresh)
    }
}

impl DynamicNetwork for ResampledGnp {
    fn n(&self) -> usize {
        self.n
    }

    fn topology(&mut self, t: u64, _informed: &NodeSet, rng: &mut SimRng) -> &Topology {
        match self.last_step {
            None => {
                for _ in 0..t {
                    self.resample(rng);
                }
            }
            Some(prev) if t > prev => {
                for _ in 0..(t - prev) {
                    self.resample(rng);
                }
            }
            _ => {}
        }
        self.last_step = Some(t);
        &self.current
    }

    fn reset(&mut self) {
        self.current = self.initial.clone();
        self.last_step = None;
    }

    fn name(&self) -> &str {
        "resampled-gnp"
    }

    /// Single-step advances resample and report the exact symmetric
    /// difference between the outgoing and incoming samples, computed
    /// straight off the lazily realized rows (no materialization).
    /// Multi-window jumps fall back to `None` (the engine rebuilds after
    /// `topology` catches up).
    fn edges_changed(
        &mut self,
        t: u64,
        _informed: &NodeSet,
        rng: &mut SimRng,
    ) -> Option<EdgeDelta> {
        match self.last_step {
            None if t == 0 => {
                self.last_step = Some(0);
                Some(EdgeDelta::empty())
            }
            Some(prev) if t == prev => Some(EdgeDelta::empty()),
            Some(prev) if t == prev + 1 => {
                let old = self.resample(rng);
                self.last_step = Some(t);
                Some(EdgeDelta::between_topologies(&old, &self.current))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t0_exposes_the_seeded_initial_sample() {
        let mut net = ResampledGnp::new(40, 0.2, 3).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        let informed = NodeSet::new(40);
        let m0 = net.topology(0, &informed, &mut rng).m();
        // Same t: unchanged; same seed, fresh instance: same sample.
        assert_eq!(net.topology(0, &informed, &mut rng).m(), m0);
        let mut other = ResampledGnp::new(40, 0.2, 3).unwrap();
        assert_eq!(other.topology(0, &informed, &mut rng).m(), m0);
    }

    #[test]
    fn windows_are_resampled() {
        let mut net = ResampledGnp::new(60, 0.15, 9).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        let informed = NodeSet::new(60);
        let g0 = net.topology(0, &informed, &mut rng).materialize();
        let g1 = net.topology(1, &informed, &mut rng).materialize();
        assert_ne!(g0, g1, "consecutive windows should be fresh samples");
    }

    #[test]
    fn delta_is_the_exact_symmetric_difference() {
        let mut net = ResampledGnp::new(50, 0.12, 4).unwrap();
        let mut rng = SimRng::seed_from_u64(7);
        let informed = NodeSet::new(50);
        let before = net.topology(0, &informed, &mut rng).materialize();
        let delta = net.edges_changed(1, &informed, &mut rng).unwrap();
        let after = net.topology(1, &informed, &mut rng).materialize();
        assert_eq!(delta, EdgeDelta::between(&before, &after));
        assert!(!delta.is_empty());
        // Multi-window jumps decline the diff.
        assert!(net.edges_changed(5, &informed, &mut rng).is_none());
    }

    #[test]
    fn reset_restores_the_initial_sample() {
        let mut net = ResampledGnp::new(30, 0.3, 11).unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        let informed = NodeSet::new(30);
        let g0 = net.topology(0, &informed, &mut rng).materialize();
        let _ = net.topology(4, &informed, &mut rng);
        net.reset();
        assert_eq!(net.topology(0, &informed, &mut rng).materialize(), g0);
    }

    #[test]
    fn validates_parameters() {
        assert!(ResampledGnp::new(1, 0.5, 0).is_err());
        assert!(ResampledGnp::new(10, 0.0, 0).is_err());
        assert!(ResampledGnp::new(10, 1.5, 0).is_err());
        assert_eq!(
            ResampledGnp::new(10, 0.5, 0).unwrap().name(),
            "resampled-gnp"
        );
    }
}
