//! The dynamic star `G2` of Figure 1(b) — Theorem 1.7(ii)/(iii).
//!
//! Every `G(t)` is a star over `n+1` nodes whose *center* is re-chosen at
//! each integer step to be an uninformed node (an arbitrary node once all
//! are informed). The rumor starts at a leaf.
//!
//! The synchronous algorithm needs exactly `n` rounds: within a round the
//! fresh center is uninformed at round start, so leaves that pull from it
//! learn nothing, and the only state change is the center itself becoming
//! informed (by a leaf's push or its own pull) — one new node per round.
//! Asynchronously the center is informed within `O(1)` expected time *inside*
//! the window and the remaining leaves then pull from it in parallel, giving
//! `Θ(log n)` total and the `Pr[T > 2k] ≤ e^{−k/2} + e^{−k}` tail of
//! Theorem 1.7(iii).
//!
//! This implementation re-centers on the *lowest-indexed* uninformed node —
//! the paper allows any uninformed choice, and a deterministic rule keeps
//! trials reproducible. The exposed topology is the implicit
//! [`Topology::star`] backend: re-centering costs O(1) and no adjacency is
//! ever materialized, so the family scales to the sizes the `Θ(log n)` vs
//! `n` dichotomy needs.

use crate::{DynamicNetwork, ProfiledNetwork, StepProfile};
use gossip_graph::{GraphError, NodeId, NodeSet, Topology};
use gossip_stats::SimRng;

/// Figure 1(b): a star whose center moves to an uninformed node each step.
///
/// # Example
///
/// ```
/// use gossip_dynamics::{DynamicNetwork, DynamicStar};
/// use gossip_graph::NodeSet;
/// use gossip_stats::SimRng;
///
/// let mut net = DynamicStar::new(6).unwrap(); // 7 nodes total
/// let mut rng = SimRng::seed_from_u64(0);
/// let mut informed = NodeSet::new(7);
/// informed.insert(0);
/// informed.insert(1);
/// let g = net.topology(1, &informed, &mut rng);
/// assert_eq!(g.degree(2), 6); // node 2 is the lowest uninformed node
/// ```
#[derive(Debug, Clone)]
pub struct DynamicStar {
    n_total: usize,
    current: Topology,
    current_center: NodeId,
}

impl DynamicStar {
    /// Builds `G2` with `leaves` leaves (so `leaves + 1` nodes in total).
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `leaves < 2`.
    pub fn new(leaves: usize) -> Result<Self, GraphError> {
        if leaves < 2 {
            return Err(GraphError::InvalidParameter(format!(
                "dynamic star needs at least 2 leaves, got {leaves}"
            )));
        }
        let n_total = leaves + 1;
        let current = Topology::star(n_total, 0)?;
        Ok(DynamicStar {
            n_total,
            current,
            current_center: 0,
        })
    }

    /// The center of the currently exposed star.
    pub fn current_center(&self) -> NodeId {
        self.current_center
    }

    fn recenter(&mut self, center: NodeId) {
        if center != self.current_center {
            self.current =
                Topology::star(self.n_total, center).expect("center is in range by construction");
            self.current_center = center;
        }
    }
}

impl DynamicNetwork for DynamicStar {
    fn n(&self) -> usize {
        self.n_total
    }

    fn topology(&mut self, _t: u64, informed: &NodeSet, _rng: &mut SimRng) -> &Topology {
        // Lowest uninformed node; node 0 when everyone is informed.
        let center = informed.iter_complement().next().unwrap_or(0);
        self.recenter(center);
        &self.current
    }

    fn reset(&mut self) {
        self.recenter(0);
    }

    fn name(&self) -> &str {
        "dynamic star (G2, Fig. 1b)"
    }

    /// A leaf: with center at the lowest uninformed node, starting at node
    /// `n` (the highest id) keeps it a leaf at `t = 0`.
    fn suggested_start(&self) -> NodeId {
        (self.n_total - 1) as NodeId
    }
}

impl ProfiledNetwork for DynamicStar {
    /// Stars are exactly 1-diligent and absolutely 1-diligent with `Φ = 1`
    /// (paper Section 1.1 and the proof of Theorem 1.7(ii), which calls the
    /// dynamic star "an expander graph and 1-diligent").
    fn current_profile(&self) -> StepProfile {
        StepProfile {
            phi: 1.0,
            rho: 1.0,
            rho_abs: 1.0,
            connected: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recenters_on_lowest_uninformed() {
        let mut net = DynamicStar::new(5).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        let mut informed = NodeSet::new(6);
        informed.insert(0);
        let g = net.topology(0, &informed, &mut rng);
        assert_eq!(g.degree(1), 5);
        assert_eq!(net.current_center(), 1);
        informed.insert(1);
        informed.insert(2);
        let g = net.topology(1, &informed, &mut rng);
        assert_eq!(g.degree(3), 5);
    }

    #[test]
    fn all_informed_falls_back_to_zero() {
        let mut net = DynamicStar::new(4).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        let informed = NodeSet::full(5);
        let g = net.topology(7, &informed, &mut rng);
        assert_eq!(g.degree(0), 4);
    }

    #[test]
    fn always_an_implicit_star() {
        let mut net = DynamicStar::new(6).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        let mut informed = NodeSet::new(7);
        for t in 0..7 {
            informed.insert(t as NodeId);
            let g = net.topology(t, &informed, &mut rng);
            assert_eq!(g.m(), 6);
            assert_eq!(g.max_degree(), 6);
            assert!(g.is_implicit());
        }
    }

    #[test]
    fn profile_is_unit() {
        let net = DynamicStar::new(5).unwrap();
        let p = net.current_profile();
        assert_eq!((p.phi, p.rho, p.rho_abs), (1.0, 1.0, 1.0));
        assert!(p.connected);
    }

    #[test]
    fn start_is_a_leaf_initially() {
        let mut net = DynamicStar::new(5).unwrap();
        let start = net.suggested_start();
        let mut rng = SimRng::seed_from_u64(0);
        let mut informed = NodeSet::new(6);
        informed.insert(start);
        let g = net.topology(0, &informed, &mut rng);
        assert_eq!(g.degree(start), 1);
    }

    #[test]
    fn reset_recenters_at_zero() {
        let mut net = DynamicStar::new(5).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        let mut informed = NodeSet::new(6);
        informed.insert(0);
        net.topology(0, &informed, &mut rng);
        assert_eq!(net.current_center(), 1);
        net.reset();
        assert_eq!(net.current_center(), 0);
    }

    #[test]
    fn validates() {
        assert!(DynamicStar::new(1).is_err());
    }
}
