//! The Section 1.2 example separating this paper's bound from the
//! Giakkoupis–Sauerwald–Stauffer bound \[17\].
//!
//! The network alternates between a sparse `d`-regular expander
//! (`d ∈ {3, 4}`) and the complete graph `K_{n}` — both regular, hence
//! 1-diligent, with `Φ = Θ(1)` at every step, so this paper's Theorem 1.1
//! stops after `O(log n)` steps. The \[17\] bound instead accumulates
//! `Σ Φ ≥ c·M(G)·log n` with `M(G) = max_u Δ_u/δ_u = (n−1)/d`, which needs
//! `Ω(n log n)` steps — an `Ω̃(n)` overestimate on this family.

use crate::{DynamicNetwork, EdgeDelta, ProfiledNetwork, StepProfile};
use gossip_graph::{generators, spectral, GraphError, NodeSet, Topology};
use gossip_stats::SimRng;

/// Alternating `{d-regular, K_n}` dynamic network (Section 1.2).
///
/// Even steps expose the sparse regular expander, odd steps the complete
/// graph.
///
/// # Example
///
/// ```
/// use gossip_dynamics::{AlternatingRegular, DynamicNetwork};
/// use gossip_graph::NodeSet;
/// use gossip_stats::SimRng;
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let mut net = AlternatingRegular::new(64, &mut rng).unwrap();
/// let informed = NodeSet::new(64);
/// assert_eq!(net.topology(0, &informed, &mut rng).degree(0), 3);
/// assert_eq!(net.topology(1, &informed, &mut rng).degree(0), 63);
/// ```
#[derive(Debug, Clone)]
pub struct AlternatingRegular {
    sparse: Topology,
    complete: Topology,
    d: usize,
    sparse_phi_lower: f64,
    parity: u64,
    /// Memoized sparse → complete diff; the odd → even diff is its
    /// inverse. Computed on first request.
    densify_delta: Option<EdgeDelta>,
}

impl AlternatingRegular {
    /// Builds the alternating network on `n` nodes. The sparse layer is a
    /// random connected `d`-regular graph with `d = 3` (or `4` when `n` is
    /// odd, for parity), generated from `rng`.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `n < 6`; generation errors
    /// propagate.
    pub fn new(n: usize, rng: &mut SimRng) -> Result<Self, GraphError> {
        if n < 6 {
            return Err(GraphError::InvalidParameter(format!(
                "alternating network needs n >= 6, got {n}"
            )));
        }
        let d = if n.is_multiple_of(2) { 3 } else { 4 };
        let sparse = generators::random_connected_regular(n, d, rng)?;
        // Cache the sparse layer's spectral conductance lower bound once.
        let sparse_phi_lower = spectral::spectral_bounds(&sparse, 3000)
            .map(|b| b.conductance_lower)
            .unwrap_or(0.0);
        let sparse = Topology::materialized(sparse);
        let complete = Topology::materialized(generators::complete(n)?);
        Ok(AlternatingRegular {
            sparse,
            complete,
            d,
            sparse_phi_lower,
            parity: 0,
            densify_delta: None,
        })
    }

    /// Degree of the sparse layer (3 or 4).
    pub fn sparse_degree(&self) -> usize {
        self.d
    }

    /// The \[17\] degree-variation factor `M(G) = max_u Δ_u/δ_u = (n−1)/d`.
    pub fn degree_variation(&self) -> f64 {
        (self.complete.n() as f64 - 1.0) / self.d as f64
    }

    /// Conductance of `K_n` at the balanced cut:
    /// `⌈n/2⌉·⌊n/2⌋ / (⌊n/2⌋·(n−1))`.
    pub fn complete_phi(&self) -> f64 {
        let n = self.complete.n();
        let s = n / 2;
        (s * (n - s)) as f64 / (s * (n - 1)) as f64
    }
}

impl DynamicNetwork for AlternatingRegular {
    fn n(&self) -> usize {
        self.sparse.n()
    }

    fn topology(&mut self, t: u64, _informed: &NodeSet, _rng: &mut SimRng) -> &Topology {
        self.parity = t % 2;
        if self.parity == 0 {
            &self.sparse
        } else {
            &self.complete
        }
    }

    fn reset(&mut self) {
        self.parity = 0;
    }

    fn name(&self) -> &str {
        "alternating {d-regular, K_n} (Sec. 1.2)"
    }

    /// The alternation replays one memoized diff (and its inverse), so the
    /// two symmetric differences are computed once per network lifetime
    /// instead of the graphs being re-scanned every window.
    fn edges_changed(
        &mut self,
        t: u64,
        _informed: &NodeSet,
        _rng: &mut SimRng,
    ) -> Option<EdgeDelta> {
        self.parity = t % 2;
        if t == 0 {
            return Some(EdgeDelta::empty());
        }
        if self.densify_delta.is_none() {
            self.densify_delta = Some(EdgeDelta::between(
                self.sparse.as_graph().expect("materialized"),
                self.complete.as_graph().expect("materialized"),
            ));
        }
        let densify = self.densify_delta.as_ref().expect("just memoized");
        if self.parity == 1 {
            Some(densify.clone())
        } else {
            Some(densify.inverted())
        }
    }
}

impl ProfiledNetwork for AlternatingRegular {
    /// Both layers are regular, hence 1-diligent; `Φ` is the cached
    /// spectral lower bound for the sparse layer and the balanced-cut value
    /// for `K_n`; `ρ̄` is `1/d` resp. `1/(n−1)`.
    fn current_profile(&self) -> StepProfile {
        if self.parity == 0 {
            StepProfile {
                phi: self.sparse_phi_lower,
                rho: 1.0,
                rho_abs: 1.0 / self.d as f64,
                connected: true,
            }
        } else {
            StepProfile {
                phi: self.complete_phi(),
                rho: 1.0,
                rho_abs: 1.0 / (self.complete.n() as f64 - 1.0),
                connected: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut net = AlternatingRegular::new(20, &mut rng).unwrap();
        let informed = NodeSet::new(20);
        for t in 0..6 {
            let g = net.topology(t, &informed, &mut rng);
            if t % 2 == 0 {
                assert_eq!(g.degree(0), 3, "t={t}");
            } else {
                assert_eq!(g.degree(0), 19, "t={t}");
            }
        }
    }

    #[test]
    fn odd_n_uses_degree_4() {
        let mut rng = SimRng::seed_from_u64(2);
        let net = AlternatingRegular::new(21, &mut rng).unwrap();
        assert_eq!(net.sparse_degree(), 4);
        assert!((net.degree_variation() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degree_variation_matches_17() {
        let mut rng = SimRng::seed_from_u64(3);
        let net = AlternatingRegular::new(30, &mut rng).unwrap();
        assert!((net.degree_variation() - 29.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn profiles_both_layers() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut net = AlternatingRegular::new(24, &mut rng).unwrap();
        let informed = NodeSet::new(24);
        net.topology(0, &informed, &mut rng);
        let sparse = net.current_profile();
        assert_eq!(sparse.rho, 1.0);
        assert!(sparse.phi > 0.0);
        assert!((sparse.rho_abs - 1.0 / 3.0).abs() < 1e-12);
        net.topology(1, &informed, &mut rng);
        let dense = net.current_profile();
        assert_eq!(dense.rho, 1.0);
        assert!(dense.phi > 0.5);
        assert!((dense.rho_abs - 1.0 / 23.0).abs() < 1e-12);
    }

    #[test]
    fn validates() {
        let mut rng = SimRng::seed_from_u64(5);
        assert!(AlternatingRegular::new(4, &mut rng).is_err());
    }
}
