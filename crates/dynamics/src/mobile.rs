//! Mobile agents performing random walks on a torus (related work
//! \[20, 22\]) — extension experiment X2.
//!
//! `n` agents occupy cells of an `rows × cols` torus; at each step every
//! agent moves to one of its four neighboring cells (or stays put, five
//! equally likely choices). The exposed graph connects agents within
//! L∞ distance `radius` — information is transmitted "when they are
//! sufficiently close". The graph is frequently disconnected, which is
//! exactly the regime where the paper's `Σ Φ·ρ` accumulation stalls.

use crate::DynamicNetwork;
use gossip_graph::{Graph, GraphBuilder, GraphError, NodeId, NodeSet, Topology};
use gossip_stats::SimRng;

/// Random-walking agents on a torus with a proximity graph.
///
/// # Example
///
/// ```
/// use gossip_dynamics::{DynamicNetwork, MobileAgents};
/// use gossip_graph::NodeSet;
/// use gossip_stats::SimRng;
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let mut net = MobileAgents::new(20, 10, 10, 1, &mut rng).unwrap();
/// let informed = NodeSet::new(20);
/// let g = net.topology(0, &informed, &mut rng);
/// assert_eq!(g.n(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct MobileAgents {
    rows: usize,
    cols: usize,
    radius: usize,
    positions: Vec<(usize, usize)>,
    initial_positions: Vec<(usize, usize)>,
    current: Topology,
    last_step: Option<u64>,
}

impl MobileAgents {
    /// Places `agents` agents uniformly at random on the torus.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `agents < 2`, the torus is
    /// smaller than `2×2`, or `radius` reaches half the smaller dimension
    /// (at which point everything is adjacent and motion is meaningless).
    pub fn new(
        agents: usize,
        rows: usize,
        cols: usize,
        radius: usize,
        rng: &mut SimRng,
    ) -> Result<Self, GraphError> {
        if agents < 2 {
            return Err(GraphError::InvalidParameter(format!(
                "need at least 2 agents, got {agents}"
            )));
        }
        if rows < 2 || cols < 2 {
            return Err(GraphError::InvalidParameter(format!(
                "torus must be at least 2x2, got {rows}x{cols}"
            )));
        }
        if 2 * radius >= rows.min(cols) {
            return Err(GraphError::InvalidParameter(format!(
                "radius {radius} too large for {rows}x{cols} torus"
            )));
        }
        let positions: Vec<(usize, usize)> = (0..agents)
            .map(|_| (rng.index(rows), rng.index(cols)))
            .collect();
        let current = Topology::materialized(proximity_graph(&positions, rows, cols, radius));
        Ok(MobileAgents {
            rows,
            cols,
            radius,
            initial_positions: positions.clone(),
            positions,
            current,
            last_step: None,
        })
    }

    /// Current agent positions (row, col).
    pub fn positions(&self) -> &[(usize, usize)] {
        &self.positions
    }

    /// Torus dimensions (rows, cols).
    pub fn dimensions(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn step(&mut self, rng: &mut SimRng) {
        for pos in &mut self.positions {
            let (r, c) = *pos;
            *pos = match rng.index(5) {
                0 => ((r + 1) % self.rows, c),
                1 => ((r + self.rows - 1) % self.rows, c),
                2 => (r, (c + 1) % self.cols),
                3 => (r, (c + self.cols - 1) % self.cols),
                _ => (r, c),
            };
        }
        self.current = Topology::materialized(proximity_graph(
            &self.positions,
            self.rows,
            self.cols,
            self.radius,
        ));
    }
}

/// Builds the graph connecting agents within torus L∞ distance `radius`.
fn proximity_graph(positions: &[(usize, usize)], rows: usize, cols: usize, radius: usize) -> Graph {
    let torus_dist = |a: usize, b: usize, len: usize| {
        let d = a.abs_diff(b);
        d.min(len - d)
    };
    let mut b = GraphBuilder::new(positions.len());
    for i in 0..positions.len() {
        for j in (i + 1)..positions.len() {
            let dr = torus_dist(positions[i].0, positions[j].0, rows);
            let dc = torus_dist(positions[i].1, positions[j].1, cols);
            if dr.max(dc) <= radius {
                b.add_edge(i as NodeId, j as NodeId).expect("in range");
            }
        }
    }
    b.build()
}

impl DynamicNetwork for MobileAgents {
    fn n(&self) -> usize {
        self.positions.len()
    }

    fn topology(&mut self, t: u64, _informed: &NodeSet, rng: &mut SimRng) -> &Topology {
        match self.last_step {
            None => {
                for _ in 0..t {
                    self.step(rng);
                }
            }
            Some(prev) if t > prev => {
                for _ in 0..(t - prev) {
                    self.step(rng);
                }
            }
            _ => {}
        }
        self.last_step = Some(t);
        &self.current
    }

    fn reset(&mut self) {
        self.positions = self.initial_positions.clone();
        self.current = Topology::materialized(proximity_graph(
            &self.positions,
            self.rows,
            self.cols,
            self.radius,
        ));
        self.last_step = None;
    }

    fn name(&self) -> &str {
        "mobile agents on torus [20,22]"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proximity_graph_radius_zero_means_same_cell() {
        let positions = [(0, 0), (0, 0), (1, 1)];
        let g = proximity_graph(&positions, 5, 5, 0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn wraparound_distance() {
        // Cells (0,0) and (4,0) on a 5-row torus are distance 1 apart.
        let positions = [(0, 0), (4, 0)];
        let g = proximity_graph(&positions, 5, 5, 1);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn agents_move_one_step() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut net = MobileAgents::new(10, 8, 8, 1, &mut rng).unwrap();
        let before = net.positions().to_vec();
        let informed = NodeSet::new(10);
        net.topology(1, &informed, &mut rng);
        let after = net.positions().to_vec();
        for (b, a) in before.iter().zip(&after) {
            let dr = b.0.abs_diff(a.0).min(8 - b.0.abs_diff(a.0));
            let dc = b.1.abs_diff(a.1).min(8 - b.1.abs_diff(a.1));
            assert!(dr + dc <= 1, "agent moved more than one step");
        }
    }

    #[test]
    fn same_t_is_stable() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut net = MobileAgents::new(12, 6, 6, 1, &mut rng).unwrap();
        let informed = NodeSet::new(12);
        let g1 = net.topology(2, &informed, &mut rng).clone();
        let g2 = net.topology(2, &informed, &mut rng);
        assert_eq!(&g1, g2);
    }

    #[test]
    fn reset_restores_positions() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut net = MobileAgents::new(10, 8, 8, 1, &mut rng).unwrap();
        let initial = net.positions().to_vec();
        let informed = NodeSet::new(10);
        net.topology(5, &informed, &mut rng);
        net.reset();
        assert_eq!(net.positions(), &initial[..]);
    }

    #[test]
    fn validates() {
        let mut rng = SimRng::seed_from_u64(5);
        assert!(MobileAgents::new(1, 8, 8, 1, &mut rng).is_err());
        assert!(MobileAgents::new(5, 1, 8, 1, &mut rng).is_err());
        assert!(MobileAgents::new(5, 8, 8, 4, &mut rng).is_err());
    }

    #[test]
    fn dense_agents_form_connected_graph_often() {
        // 40 agents with radius 2 on a 6x6 torus: everything is close.
        let mut rng = SimRng::seed_from_u64(6);
        let net = MobileAgents::new(40, 6, 6, 2, &mut rng).unwrap();
        assert!(net.current.m() > 40);
    }
}
