//! The absolutely-`ρ`-diligent dynamic network of Section 5.1 — the family
//! on which the Theorem 1.3 upper bound is tight up to a constant
//! (Theorem 1.5), and the `Θ(n²)` worst case of Remark 1.4 at `ρ = Θ(1/n)`.
//!
//! `G(t)` consists of `G(A_t, 4, Δ)` — connected, every node degree 4
//! except one hub of degree `Δ` — and the `Δ`-regular `G(B_t, Δ)`, joined
//! by a single bridge edge from the hub to a `B`-node. With
//! `Δ ∈ {⌈1/ρ⌉, ⌈1/ρ⌉+1}` even, the bridge endpoints both have degree
//! `Δ+1`, so `ρ̄(G(t)) = 1/(Δ+1) = Θ(ρ)` and `Φ(G(t)) = O(1/n)`.
//!
//! The adversary moves informed `B`-nodes to the `A` side
//! (`B_{t+1} = B_t \ I_t`) and rebuilds while `n/6 ≤ |B_{t+1}| < |B_t|`,
//! which "re-arms" the bridge: every fresh `B`-node must be informed across
//! a bridge firing at rate `2/(Δ+1)`, costing `(Δ+1)/2` expected time each —
//! `Ω(n/ρ)` in total (Theorem 1.5's coupling argument).

use crate::{DynamicNetwork, EdgeDelta, ProfiledNetwork, StepProfile};
use gossip_graph::generators::{near_regular_with_hub, regular_circulant};
use gossip_graph::{GraphBuilder, GraphError, NodeId, NodeSet, Topology};
use gossip_stats::SimRng;

/// The Section 5.1 adaptive network.
///
/// # Example
///
/// ```
/// use gossip_dynamics::{AbsoluteDiligentNetwork, DynamicNetwork};
/// use gossip_graph::NodeSet;
/// use gossip_stats::SimRng;
///
/// let mut net = AbsoluteDiligentNetwork::new(120, 0.1).unwrap();
/// let mut rng = SimRng::seed_from_u64(1);
/// let informed = NodeSet::new(net.n());
/// let g = net.topology(0, &informed, &mut rng);
/// assert_eq!(g.n(), 120);
/// ```
#[derive(Debug, Clone)]
pub struct AbsoluteDiligentNetwork {
    n: usize,
    delta: usize,
    a_nodes: Vec<NodeId>,
    b_nodes: Vec<NodeId>,
    current: Option<Topology>,
    frozen: bool,
}

impl AbsoluteDiligentNetwork {
    /// Builds the network for target absolute diligence `ρ`.
    ///
    /// `Δ` is `⌈1/ρ⌉` rounded up to an even number and floored at 4 (the
    /// paper picks the even member of `{⌈1/ρ⌉, ⌈1/ρ⌉+1}`; degrees below 4
    /// make `G(A, 4, Δ)` degenerate).
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `ρ ∉ (0, 1]` or `n` cannot
    /// host the construction. The paper's regime `10/n ≤ ρ` translates to
    /// `Δ ≲ n/10`, which keeps both blocks buildable down to the `n/6`
    /// freeze threshold.
    pub fn new(n: usize, rho: f64) -> Result<Self, GraphError> {
        if !(rho > 0.0 && rho <= 1.0) {
            return Err(GraphError::InvalidParameter(format!(
                "rho must be in (0, 1], got {rho}"
            )));
        }
        let raw = (1.0 / rho).ceil() as usize;
        let delta = if raw.is_multiple_of(2) { raw } else { raw + 1 }.max(4);
        Self::with_delta(n, delta)
    }

    /// Builds the network with an explicit even hub/regular degree `Δ`.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `Δ` is odd, `Δ < 4`, or `n`
    /// is too small (`Δ ≤ n/10` is required, mirroring the paper's
    /// `ρ ≥ 10/n`).
    pub fn with_delta(n: usize, delta: usize) -> Result<Self, GraphError> {
        if delta < 4 || !delta.is_multiple_of(2) {
            return Err(GraphError::InvalidParameter(format!(
                "delta must be even and >= 4, got {delta}"
            )));
        }
        if delta > n / 10 {
            return Err(GraphError::InvalidParameter(format!(
                "delta {delta} exceeds n/10 = {} (paper regime rho >= 10/n)",
                n / 10
            )));
        }
        let a_size = n / 2;
        // G(A,4,Δ) chord capacity: m >= 2Δ + 9 comfortably holds at Δ <= n/10;
        // G(B,Δ) needs Δ/2 <= (|B|-1)/2 down to |B| = n/6.
        if a_size < 2 * delta + 9 || n / 6 < delta + 2 {
            return Err(GraphError::InvalidParameter(format!(
                "n = {n} too small for delta = {delta}"
            )));
        }
        let a_nodes: Vec<NodeId> = (0..a_size as NodeId).collect();
        let b_nodes: Vec<NodeId> = (a_size as NodeId..n as NodeId).collect();
        Ok(AbsoluteDiligentNetwork {
            n,
            delta,
            a_nodes,
            b_nodes,
            current: None,
            frozen: false,
        })
    }

    /// The block degree `Δ`.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The current `B_t` in construction order.
    pub fn b_nodes(&self) -> &[NodeId] {
        &self.b_nodes
    }

    /// The Theorem 1.5 spread-time lower bound scale `n·(Δ+1)/c`: informing
    /// `Θ(n)` boundary nodes at `(Δ+1)/2` expected time each. Reported as
    /// `n₀ · Δ/4` with `n₀ = n/10` matching the proof's constants loosely —
    /// the experiments compare shapes, not constants.
    pub fn lower_bound_time(&self) -> f64 {
        (self.n as f64 / 10.0) * (self.delta as f64 + 1.0) / 4.0
    }

    /// The bridge edge of the current graph: `(hub in A, boundary in B)`.
    pub fn bridge(&self) -> (NodeId, NodeId) {
        (self.a_nodes[0], self.b_nodes[0])
    }

    fn rebuild(&mut self) {
        let a = &self.a_nodes;
        let b = &self.b_nodes;
        let ga = near_regular_with_hub(a.len(), self.delta)
            .expect("A-side sizes validated at construction");
        let gb =
            regular_circulant(b.len(), self.delta).expect("B-side sizes validated at construction");
        let mut builder = GraphBuilder::new(self.n);
        for (u, v) in ga.edges() {
            builder
                .add_edge(a[u as usize], a[v as usize])
                .expect("in range");
        }
        for (u, v) in gb.edges() {
            builder
                .add_edge(b[u as usize], b[v as usize])
                .expect("in range");
        }
        // Hub (node a[0], the degree-Δ node of G(A,4,Δ)) to an arbitrary
        // B node (b[0]).
        builder.add_edge(a[0], b[0]).expect("in range");
        self.current = Some(Topology::materialized(builder.build()));
    }
}

impl DynamicNetwork for AbsoluteDiligentNetwork {
    fn n(&self) -> usize {
        self.n
    }

    fn topology(&mut self, _t: u64, informed: &NodeSet, _rng: &mut SimRng) -> &Topology {
        if self.current.is_none() {
            self.rebuild();
            return self.current.as_ref().expect("just built");
        }
        if !self.frozen {
            let b_new: Vec<NodeId> = self
                .b_nodes
                .iter()
                .copied()
                .filter(|&v| !informed.contains(v))
                .collect();
            if b_new.len() < self.b_nodes.len() {
                if b_new.len() >= self.n / 6 {
                    let moved: Vec<NodeId> = self
                        .b_nodes
                        .iter()
                        .copied()
                        .filter(|&v| informed.contains(v))
                        .collect();
                    self.a_nodes.extend(moved);
                    self.b_nodes = b_new;
                    self.rebuild();
                } else {
                    self.frozen = true;
                }
            }
        }
        self.current.as_ref().expect("built on first call")
    }

    fn reset(&mut self) {
        let a_size = self.n / 2;
        self.a_nodes = (0..a_size as NodeId).collect();
        self.b_nodes = (a_size as NodeId..self.n as NodeId).collect();
        self.current = None;
        self.frozen = false;
    }

    fn name(&self) -> &str {
        "absolutely rho-diligent (Sec. 5.1)"
    }

    /// A non-hub node of `G(A_0, 4, Δ)` (the paper injects the rumor into
    /// the `A` block).
    fn suggested_start(&self) -> NodeId {
        1
    }

    /// The adversary only acts when the rumor reached a fresh `B` node, so
    /// most windows (the `Θ(Δ)` waits between bridge crossings, and
    /// everything after the freeze) report the empty delta and the event
    /// engine skips all per-window work. Windows where `B` shrinks rebuild
    /// both blocks wholesale — `None` (rebuild) is the honest answer there.
    fn edges_changed(
        &mut self,
        _t: u64,
        informed: &NodeSet,
        _rng: &mut SimRng,
    ) -> Option<EdgeDelta> {
        self.current.as_ref()?;
        if self.frozen || !self.b_nodes.iter().any(|&v| informed.contains(v)) {
            return Some(EdgeDelta::empty());
        }
        None
    }
}

impl ProfiledNetwork for AbsoluteDiligentNetwork {
    /// Closed forms from the construction: the bridge gives
    /// `ρ̄ = 1/(Δ+1)`; the bridge cut bounds `Φ ≤ 1/min(vol_A, vol_B)`; the
    /// diligence is `min(1, 4/(Δ+1))` up to constants (the bridge cut's
    /// smaller side is the 4-regular block once `|B|Δ > 4|A|`).
    fn current_profile(&self) -> StepProfile {
        let vol_a = 4 * (self.a_nodes.len() - 1) + self.delta + 1;
        let vol_b = self.delta * self.b_nodes.len() + 1;
        StepProfile {
            phi: 1.0 / vol_a.min(vol_b) as f64,
            rho: (4.0 / (self.delta as f64 + 1.0)).min(1.0),
            rho_abs: 1.0 / (self.delta as f64 + 1.0),
            connected: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::connectivity::is_connected;
    use gossip_graph::diligence::absolute_diligence;

    #[test]
    fn initial_graph_structure() {
        let mut net = AbsoluteDiligentNetwork::with_delta(120, 8).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        let informed = NodeSet::new(120);
        let g = net.topology(0, &informed, &mut rng).materialize();
        assert!(is_connected(&g));
        // Hub a[0] = node 0 has degree Δ+1 (hub + bridge).
        assert_eq!(g.degree(0), 9);
        // Bridge B endpoint b[0] = node 60 has degree Δ+1.
        assert_eq!(g.degree(60), 9);
        // Other A nodes: degree 4; other B nodes: degree Δ.
        assert_eq!(g.degree(5), 4);
        assert_eq!(g.degree(70), 8);
    }

    #[test]
    fn absolute_diligence_matches_target() {
        let mut net = AbsoluteDiligentNetwork::with_delta(120, 8).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        let informed = NodeSet::new(120);
        let g = net.topology(0, &informed, &mut rng).materialize();
        // ρ̄ = 1/(Δ+1): the bridge edge (9,9) gives 1/9; B-interior edges
        // (8,8) give 1/8; A-interior (4,4) give 1/4.
        assert!((absolute_diligence(&g) - 1.0 / 9.0).abs() < 1e-12);
        let p = net.current_profile();
        assert!((p.rho_abs - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn rho_to_delta_rounding() {
        let net = AbsoluteDiligentNetwork::new(200, 0.2).unwrap();
        // 1/0.2 = 5 -> rounded to even 6.
        assert_eq!(net.delta(), 6);
        let net = AbsoluteDiligentNetwork::new(200, 0.125).unwrap();
        assert_eq!(net.delta(), 8);
        let net = AbsoluteDiligentNetwork::new(200, 1.0).unwrap();
        assert_eq!(net.delta(), 4); // floored at 4
    }

    #[test]
    fn rebuild_moves_informed_b_nodes() {
        let mut net = AbsoluteDiligentNetwork::with_delta(120, 6).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        let informed = NodeSet::new(120);
        let g0 = net.topology(0, &informed, &mut rng).clone();
        let mut informed = NodeSet::new(120);
        informed.insert(60); // b[0] becomes informed
        let g1 = net.topology(1, &informed, &mut rng).clone();
        assert_ne!(g0, g1);
        assert!(!net.b_nodes().contains(&60));
        // The new bridge touches the new b[0] = 61.
        assert_eq!(net.bridge(), (0, 61));
        assert!(g1.has_edge(0, 61));
    }

    #[test]
    fn freezes_below_sixth() {
        let n = 120;
        let mut net = AbsoluteDiligentNetwork::with_delta(n, 6).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        let informed = NodeSet::new(n);
        let _ = net.topology(0, &informed, &mut rng);
        // Inform all but 15 B nodes: 15 < 20 = n/6 -> freeze.
        let mut informed = NodeSet::new(n);
        for v in 60..105u32 {
            informed.insert(v);
        }
        let g1 = net.topology(1, &informed, &mut rng).clone();
        let mut more = NodeSet::full(n);
        more.remove(119);
        let g2 = net.topology(2, &more, &mut rng);
        assert_eq!(&g1, g2);
    }

    #[test]
    fn validates() {
        assert!(AbsoluteDiligentNetwork::new(100, 0.0).is_err());
        assert!(AbsoluteDiligentNetwork::with_delta(100, 7).is_err()); // odd
        assert!(AbsoluteDiligentNetwork::with_delta(100, 2).is_err()); // < 4
        assert!(AbsoluteDiligentNetwork::with_delta(100, 30).is_err()); // > n/10
    }

    #[test]
    fn reset_restores() {
        let mut net = AbsoluteDiligentNetwork::with_delta(120, 6).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        let mut informed = NodeSet::new(120);
        informed.insert(60);
        let _ = net.topology(0, &informed, &mut rng);
        let _ = net.topology(1, &informed, &mut rng);
        assert_eq!(net.b_nodes().len(), 59);
        net.reset();
        assert_eq!(net.b_nodes().len(), 60);
    }

    #[test]
    fn worst_case_delta_scale() {
        // Remark 1.4 regime: rho = 10/n -> delta ~ n/10 -> lower bound ~ n²/400.
        let net = AbsoluteDiligentNetwork::new(400, 10.0 / 400.0).unwrap();
        assert_eq!(net.delta(), 40);
        assert!(net.lower_bound_time() > 400.0);
    }
}
