use crate::EdgeDelta;
use gossip_graph::{Graph, GraphError, NodeId, NodeSet, Topology};
use gossip_stats::SimRng;

/// A dynamic evolving network `G = {G(t)}_{t=0,1,…}` (paper Section 2).
///
/// The node set `{0, …, n−1}` is fixed; the edge set may change at every
/// integer time step. [`DynamicNetwork::topology`] exposes the topology for
/// the window `[t, t+1)` and receives the informed set, because the
/// paper's tight lower-bound constructions are *adaptive*: `G(t+1)` in
/// Sections 4–6 is chosen as a function of `I_t`. Oblivious networks simply
/// ignore the argument.
///
/// Windows are exposed as [`Topology`] values, so structured families
/// (complete graphs, stars, circulants, the Figure 1 constructions) can
/// answer degree/neighbor queries in closed form without ever materializing
/// `O(n²)` adjacency lists; arbitrary graphs ride along as
/// [`Topology::materialized`].
///
/// The engine guarantees `topology` is called with strictly increasing `t`
/// (starting at 0) between [`DynamicNetwork::reset`] calls.
pub trait DynamicNetwork {
    /// Number of nodes (constant over time).
    fn n(&self) -> usize;

    /// The topology exposed during `[t, t+1)`.
    ///
    /// `informed` is the informed set at time `t` (an adaptive adversary's
    /// view); `rng` drives any randomized rebuilding.
    fn topology(&mut self, t: u64, informed: &NodeSet, rng: &mut SimRng) -> &Topology;

    /// Restores the initial state so a fresh trial can run.
    fn reset(&mut self);

    /// Short human-readable name used in experiment output.
    fn name(&self) -> &str;

    /// The node the paper's construction injects the rumor at (defaults to
    /// node 0).
    fn suggested_start(&self) -> NodeId {
        0
    }

    /// `true` when `topology` returns the same graph at every step
    /// regardless of the informed set. Callers may then profile the
    /// topology once (e.g. [`exact_profile`](crate::profile::exact_profile))
    /// instead of re-profiling every window. Defaults to `false`, which is
    /// always sound.
    fn is_static(&self) -> bool {
        false
    }

    /// The edge diff from `G(t−1)` to `G(t)`, for engines that maintain
    /// per-node state incrementally instead of rescanning the graph every
    /// window.
    ///
    /// Contract (for `t ≥ 1`, with the same strictly-increasing-`t`
    /// guarantee as [`DynamicNetwork::topology`]):
    ///
    /// * `Some(delta)` — the network has advanced its internal state to
    ///   window `t`; a following `topology(t, …)` call returns the
    ///   post-delta topology **without evolving again**, and `delta` is the
    ///   exact symmetric difference between that topology and the previous
    ///   window's. An empty delta means the graph is unchanged.
    /// * `None` — the network cannot (or chooses not to) report a diff;
    ///   the caller must fetch `topology(t, …)` and rebuild from scratch.
    ///   This is the default, which is always sound — and for implicit
    ///   backends with closed-form protocol state it is usually also the
    ///   *cheap* answer, since a rebuild there costs `O(n)` while an
    ///   explicit diff of a dense rewiring would list `Θ(n²)` edges.
    ///
    /// Engines call this **instead of leading with** `topology` at each
    /// boundary, so implementations may evolve their graph here.
    ///
    /// Protocol-layer fault injection (node crashes, message drops)
    /// never flows through this interface: a crashed node is rate-zero
    /// *thinning* at the event layer, not an edge change, so the
    /// topology and any reported delta are exactly what they would be
    /// fault-free and incremental per-node state stays valid across
    /// crash and recovery without forcing a rebuild.
    fn edges_changed(&mut self, t: u64, informed: &NodeSet, rng: &mut SimRng) -> Option<EdgeDelta> {
        let _ = (t, informed, rng);
        None
    }
}

impl<T: DynamicNetwork + ?Sized> DynamicNetwork for &mut T {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn topology(&mut self, t: u64, informed: &NodeSet, rng: &mut SimRng) -> &Topology {
        (**self).topology(t, informed, rng)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn suggested_start(&self) -> NodeId {
        (**self).suggested_start()
    }

    fn is_static(&self) -> bool {
        (**self).is_static()
    }

    fn edges_changed(&mut self, t: u64, informed: &NodeSet, rng: &mut SimRng) -> Option<EdgeDelta> {
        (**self).edges_changed(t, informed, rng)
    }
}

impl<T: DynamicNetwork + ?Sized> DynamicNetwork for Box<T> {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn topology(&mut self, t: u64, informed: &NodeSet, rng: &mut SimRng) -> &Topology {
        (**self).topology(t, informed, rng)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn suggested_start(&self) -> NodeId {
        (**self).suggested_start()
    }

    fn is_static(&self) -> bool {
        (**self).is_static()
    }

    fn edges_changed(&mut self, t: u64, informed: &NodeSet, rng: &mut SimRng) -> Option<EdgeDelta> {
        (**self).edges_changed(t, informed, rng)
    }
}

/// A static network: the same topology at every step.
///
/// Recovers the classical single-graph setting (e.g. the `O(log n / Φ)`
/// world of Chierichetti et al. cited in the paper's introduction) as a
/// degenerate dynamic network. Built from a materialized [`Graph`]
/// ([`StaticNetwork::new`]) or any [`Topology`] backend
/// ([`StaticNetwork::from_topology`]) — an implicit complete graph at
/// `n = 10⁵` costs a few words instead of tens of gigabytes.
///
/// # Example
///
/// ```
/// use gossip_dynamics::{DynamicNetwork, StaticNetwork};
/// use gossip_graph::{NodeSet, Topology};
/// use gossip_stats::SimRng;
///
/// let mut net = StaticNetwork::from_topology(Topology::complete(100_000).unwrap());
/// let mut rng = SimRng::seed_from_u64(0);
/// let informed = NodeSet::new(100_000);
/// assert_eq!(net.topology(0, &informed, &mut rng).degree(7), 99_999);
/// ```
#[derive(Debug, Clone)]
pub struct StaticNetwork {
    topology: Topology,
}

impl StaticNetwork {
    /// Wraps a materialized graph as a constant dynamic network.
    pub fn new(graph: Graph) -> Self {
        StaticNetwork {
            topology: Topology::materialized(graph),
        }
    }

    /// Wraps any topology backend as a constant dynamic network.
    pub fn from_topology(topology: Topology) -> Self {
        StaticNetwork { topology }
    }

    /// The underlying topology.
    pub fn backend(&self) -> &Topology {
        &self.topology
    }
}

impl DynamicNetwork for StaticNetwork {
    fn n(&self) -> usize {
        self.topology.n()
    }

    fn topology(&mut self, _t: u64, _informed: &NodeSet, _rng: &mut SimRng) -> &Topology {
        &self.topology
    }

    fn reset(&mut self) {}

    fn name(&self) -> &str {
        "static"
    }

    fn is_static(&self) -> bool {
        true
    }

    /// Never changes: always the empty delta.
    fn edges_changed(
        &mut self,
        _t: u64,
        _informed: &NodeSet,
        _rng: &mut SimRng,
    ) -> Option<EdgeDelta> {
        Some(EdgeDelta::empty())
    }
}

/// A scheduled network cycling through a fixed list of topologies:
/// `G(t) = graphs[t mod len]` (or clamping at the last one when built
/// with [`SequenceNetwork::once`]).
///
/// # Example
///
/// ```
/// use gossip_dynamics::{DynamicNetwork, SequenceNetwork};
/// use gossip_graph::{generators, NodeSet};
/// use gossip_stats::SimRng;
///
/// let g0 = generators::path(4).unwrap();
/// let g1 = generators::cycle(4).unwrap();
/// let mut net = SequenceNetwork::cycling(vec![g0, g1]).unwrap();
/// let mut rng = SimRng::seed_from_u64(0);
/// let informed = NodeSet::new(4);
/// assert_eq!(net.topology(0, &informed, &mut rng).m(), 3);
/// assert_eq!(net.topology(1, &informed, &mut rng).m(), 4);
/// assert_eq!(net.topology(2, &informed, &mut rng).m(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SequenceNetwork {
    topologies: Vec<Topology>,
    cyclic: bool,
    /// Memoized diff from schedule position `i` to `i + 1` (cyclically),
    /// computed on first request — the schedule replays them forever.
    /// Only populated between materialized entries; implicit entries
    /// decline the diff (rebuilds there are cheap).
    step_deltas: Vec<Option<EdgeDelta>>,
}

impl SequenceNetwork {
    /// A network cycling through `graphs` forever.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `graphs` is empty or the
    /// graphs disagree on node count.
    pub fn cycling(graphs: Vec<Graph>) -> Result<Self, GraphError> {
        Self::validated(
            graphs.into_iter().map(Topology::materialized).collect(),
            true,
        )
    }

    /// A network playing `graphs` once, then repeating the last graph
    /// forever — the shape of the paper's `G1` (one initial graph, then a
    /// fixed one).
    ///
    /// # Errors
    ///
    /// As [`SequenceNetwork::cycling`].
    pub fn once(graphs: Vec<Graph>) -> Result<Self, GraphError> {
        Self::validated(
            graphs.into_iter().map(Topology::materialized).collect(),
            false,
        )
    }

    /// As [`SequenceNetwork::cycling`], over arbitrary topology backends
    /// (e.g. alternating an implicit complete graph with a circulant).
    ///
    /// # Errors
    ///
    /// As [`SequenceNetwork::cycling`].
    pub fn cycling_topologies(topologies: Vec<Topology>) -> Result<Self, GraphError> {
        Self::validated(topologies, true)
    }

    /// As [`SequenceNetwork::once`], over arbitrary topology backends.
    ///
    /// # Errors
    ///
    /// As [`SequenceNetwork::cycling`].
    pub fn once_topologies(topologies: Vec<Topology>) -> Result<Self, GraphError> {
        Self::validated(topologies, false)
    }

    fn validated(topologies: Vec<Topology>, cyclic: bool) -> Result<Self, GraphError> {
        if topologies.is_empty() {
            return Err(GraphError::InvalidParameter(
                "sequence network needs at least one graph".into(),
            ));
        }
        let n = topologies[0].n();
        if topologies.iter().any(|g| g.n() != n) {
            return Err(GraphError::InvalidParameter(
                "all graphs in a dynamic network must share the node set".into(),
            ));
        }
        let step_deltas = vec![None; topologies.len()];
        Ok(SequenceNetwork {
            topologies,
            cyclic,
            step_deltas,
        })
    }

    /// Number of scheduled topologies.
    pub fn len(&self) -> usize {
        self.topologies.len()
    }

    /// Whether the schedule is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.topologies.is_empty()
    }

    /// The topology scheduled for step `t` (without needing `&mut`).
    pub fn topology_at(&self, t: u64) -> &Topology {
        &self.topologies[self.index_at(t)]
    }

    fn index_at(&self, t: u64) -> usize {
        if self.cyclic {
            (t % self.topologies.len() as u64) as usize
        } else {
            (t as usize).min(self.topologies.len() - 1)
        }
    }
}

impl DynamicNetwork for SequenceNetwork {
    fn n(&self) -> usize {
        self.topologies[0].n()
    }

    fn topology(&mut self, t: u64, _informed: &NodeSet, _rng: &mut SimRng) -> &Topology {
        self.topology_at(t)
    }

    fn reset(&mut self) {}

    fn name(&self) -> &str {
        "sequence"
    }

    /// Diff between consecutive materialized schedule positions, memoized:
    /// a `k`-graph schedule pays at most `k` symmetric-difference
    /// computations total. Boundaries into or out of an implicit entry
    /// decline the diff (`None`) — closed-form protocol state rebuilds in
    /// `O(n)` there, cheaper than enumerating a dense rewiring.
    fn edges_changed(
        &mut self,
        t: u64,
        _informed: &NodeSet,
        _rng: &mut SimRng,
    ) -> Option<EdgeDelta> {
        if t == 0 {
            return Some(EdgeDelta::empty());
        }
        let prev = self.index_at(t - 1);
        let next = self.index_at(t);
        if prev == next {
            return Some(EdgeDelta::empty());
        }
        if self.step_deltas[prev].is_none() {
            let (a, b) = (
                self.topologies[prev].as_graph()?,
                self.topologies[next].as_graph()?,
            );
            self.step_deltas[prev] = Some(EdgeDelta::between(a, b));
        }
        self.step_deltas[prev].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn static_network_constant() {
        let mut net = StaticNetwork::new(generators::complete(5).unwrap());
        assert_eq!(net.n(), 5);
        let informed = NodeSet::new(5);
        let mut rng = SimRng::seed_from_u64(0);
        for t in 0..10 {
            assert_eq!(net.topology(t, &informed, &mut rng).m(), 10);
        }
        net.reset();
        assert_eq!(net.name(), "static");
        assert_eq!(net.suggested_start(), 0);
    }

    #[test]
    fn static_network_implicit_backend() {
        let mut net = StaticNetwork::from_topology(Topology::complete(1000).unwrap());
        assert!(net.backend().is_implicit());
        let informed = NodeSet::new(1000);
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(net.topology(3, &informed, &mut rng).degree(0), 999);
        assert!(net.is_static());
    }

    #[test]
    fn sequence_cycles() {
        let graphs = vec![
            generators::path(5).unwrap(),
            generators::cycle(5).unwrap(),
            generators::star(5).unwrap(),
        ];
        let mut net = SequenceNetwork::cycling(graphs).unwrap();
        let informed = NodeSet::new(5);
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(net.topology(0, &informed, &mut rng).m(), 4);
        assert_eq!(net.topology(4, &informed, &mut rng).m(), 5);
        assert_eq!(net.topology(3, &informed, &mut rng).m(), 4);
        assert_eq!(net.len(), 3);
    }

    #[test]
    fn sequence_once_clamps() {
        let graphs = vec![generators::path(4).unwrap(), generators::cycle(4).unwrap()];
        let mut net = SequenceNetwork::once(graphs).unwrap();
        let informed = NodeSet::new(4);
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(net.topology(0, &informed, &mut rng).m(), 3);
        for t in 1..5 {
            assert_eq!(net.topology(t, &informed, &mut rng).m(), 4);
        }
    }

    #[test]
    fn sequence_validates() {
        assert!(SequenceNetwork::cycling(vec![]).is_err());
        let mismatched = vec![generators::path(4).unwrap(), generators::path(5).unwrap()];
        assert!(SequenceNetwork::cycling(mismatched).is_err());
    }

    #[test]
    fn sequence_of_implicit_topologies_declines_diffs() {
        let mut net = SequenceNetwork::cycling_topologies(vec![
            Topology::complete(12).unwrap(),
            Topology::star(12, 0).unwrap(),
        ])
        .unwrap();
        let informed = NodeSet::new(12);
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(net.topology(0, &informed, &mut rng).m(), 66);
        assert_eq!(net.topology(1, &informed, &mut rng).m(), 11);
        // t = 0 and unchanged boundaries report empty; implicit switches
        // decline.
        assert!(net.edges_changed(0, &informed, &mut rng).is_some());
        assert!(net.edges_changed(1, &informed, &mut rng).is_none());
    }

    #[test]
    fn trait_object_safe() {
        let net = StaticNetwork::new(generators::path(3).unwrap());
        let boxed: Box<dyn DynamicNetwork> = Box::new(net);
        assert_eq!(boxed.n(), 3);
    }
}
