use crate::EdgeDelta;
use gossip_graph::{Graph, GraphError, NodeId, NodeSet};
use gossip_stats::SimRng;

/// A dynamic evolving network `G = {G(t)}_{t=0,1,…}` (paper Section 2).
///
/// The node set `{0, …, n−1}` is fixed; the edge set may change at every
/// integer time step. [`DynamicNetwork::topology`] exposes the graph for
/// the window `[t, t+1)` and receives the informed set, because the
/// paper's tight lower-bound constructions are *adaptive*: `G(t+1)` in
/// Sections 4–6 is chosen as a function of `I_t`. Oblivious networks simply
/// ignore the argument.
///
/// The engine guarantees `topology` is called with strictly increasing `t`
/// (starting at 0) between [`DynamicNetwork::reset`] calls.
pub trait DynamicNetwork {
    /// Number of nodes (constant over time).
    fn n(&self) -> usize;

    /// The graph exposed during `[t, t+1)`.
    ///
    /// `informed` is the informed set at time `t` (an adaptive adversary's
    /// view); `rng` drives any randomized rebuilding.
    fn topology(&mut self, t: u64, informed: &NodeSet, rng: &mut SimRng) -> &Graph;

    /// Restores the initial state so a fresh trial can run.
    fn reset(&mut self);

    /// Short human-readable name used in experiment output.
    fn name(&self) -> &str;

    /// The node the paper's construction injects the rumor at (defaults to
    /// node 0).
    fn suggested_start(&self) -> NodeId {
        0
    }

    /// `true` when `topology` returns the same graph at every step
    /// regardless of the informed set. Callers may then profile the
    /// topology once (e.g. [`exact_profile`](crate::profile::exact_profile))
    /// instead of re-profiling every window. Defaults to `false`, which is
    /// always sound.
    fn is_static(&self) -> bool {
        false
    }

    /// The edge diff from `G(t−1)` to `G(t)`, for engines that maintain
    /// per-node state incrementally instead of rescanning the graph every
    /// window.
    ///
    /// Contract (for `t ≥ 1`, with the same strictly-increasing-`t`
    /// guarantee as [`DynamicNetwork::topology`]):
    ///
    /// * `Some(delta)` — the network has advanced its internal state to
    ///   window `t`; a following `topology(t, …)` call returns the
    ///   post-delta graph **without evolving again**, and `delta` is the
    ///   exact symmetric difference between that graph and the previous
    ///   window's. An empty delta means the graph is unchanged.
    /// * `None` — the network cannot (or chooses not to) report a diff;
    ///   the caller must fetch `topology(t, …)` and rebuild from scratch.
    ///   This is the default, which is always sound.
    ///
    /// Engines call this **instead of leading with** `topology` at each
    /// boundary, so implementations may evolve their graph here.
    fn edges_changed(&mut self, t: u64, informed: &NodeSet, rng: &mut SimRng) -> Option<EdgeDelta> {
        let _ = (t, informed, rng);
        None
    }
}

impl<T: DynamicNetwork + ?Sized> DynamicNetwork for &mut T {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn topology(&mut self, t: u64, informed: &NodeSet, rng: &mut SimRng) -> &Graph {
        (**self).topology(t, informed, rng)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn suggested_start(&self) -> NodeId {
        (**self).suggested_start()
    }

    fn is_static(&self) -> bool {
        (**self).is_static()
    }

    fn edges_changed(&mut self, t: u64, informed: &NodeSet, rng: &mut SimRng) -> Option<EdgeDelta> {
        (**self).edges_changed(t, informed, rng)
    }
}

impl<T: DynamicNetwork + ?Sized> DynamicNetwork for Box<T> {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn topology(&mut self, t: u64, informed: &NodeSet, rng: &mut SimRng) -> &Graph {
        (**self).topology(t, informed, rng)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn suggested_start(&self) -> NodeId {
        (**self).suggested_start()
    }

    fn is_static(&self) -> bool {
        (**self).is_static()
    }

    fn edges_changed(&mut self, t: u64, informed: &NodeSet, rng: &mut SimRng) -> Option<EdgeDelta> {
        (**self).edges_changed(t, informed, rng)
    }
}

/// A static network: the same graph at every step.
///
/// Recovers the classical single-graph setting (e.g. the `O(log n / Φ)`
/// world of Chierichetti et al. cited in the paper's introduction) as a
/// degenerate dynamic network.
///
/// # Example
///
/// ```
/// use gossip_dynamics::{DynamicNetwork, StaticNetwork};
/// use gossip_graph::{generators, NodeSet};
/// use gossip_stats::SimRng;
///
/// let mut net = StaticNetwork::new(generators::cycle(6).unwrap());
/// let mut rng = SimRng::seed_from_u64(0);
/// let informed = NodeSet::new(6);
/// assert_eq!(net.topology(0, &informed, &mut rng).m(), 6);
/// assert_eq!(net.topology(5, &informed, &mut rng).m(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct StaticNetwork {
    graph: Graph,
}

impl StaticNetwork {
    /// Wraps a graph as a constant dynamic network.
    pub fn new(graph: Graph) -> Self {
        StaticNetwork { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

impl DynamicNetwork for StaticNetwork {
    fn n(&self) -> usize {
        self.graph.n()
    }

    fn topology(&mut self, _t: u64, _informed: &NodeSet, _rng: &mut SimRng) -> &Graph {
        &self.graph
    }

    fn reset(&mut self) {}

    fn name(&self) -> &str {
        "static"
    }

    fn is_static(&self) -> bool {
        true
    }

    /// Never changes: always the empty delta.
    fn edges_changed(
        &mut self,
        _t: u64,
        _informed: &NodeSet,
        _rng: &mut SimRng,
    ) -> Option<EdgeDelta> {
        Some(EdgeDelta::empty())
    }
}

/// A scheduled network cycling through a fixed list of graphs:
/// `G(t) = graphs[t mod len]` (or clamping at the last graph when built
/// with [`SequenceNetwork::once`]).
///
/// # Example
///
/// ```
/// use gossip_dynamics::{DynamicNetwork, SequenceNetwork};
/// use gossip_graph::{generators, NodeSet};
/// use gossip_stats::SimRng;
///
/// let g0 = generators::path(4).unwrap();
/// let g1 = generators::cycle(4).unwrap();
/// let mut net = SequenceNetwork::cycling(vec![g0, g1]).unwrap();
/// let mut rng = SimRng::seed_from_u64(0);
/// let informed = NodeSet::new(4);
/// assert_eq!(net.topology(0, &informed, &mut rng).m(), 3);
/// assert_eq!(net.topology(1, &informed, &mut rng).m(), 4);
/// assert_eq!(net.topology(2, &informed, &mut rng).m(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SequenceNetwork {
    graphs: Vec<Graph>,
    cyclic: bool,
    /// Memoized diff from schedule position `i` to `i + 1` (cyclically),
    /// computed on first request — the schedule replays them forever.
    step_deltas: Vec<Option<EdgeDelta>>,
}

impl SequenceNetwork {
    /// A network cycling through `graphs` forever.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] when `graphs` is empty or the
    /// graphs disagree on node count.
    pub fn cycling(graphs: Vec<Graph>) -> Result<Self, GraphError> {
        Self::validated(graphs, true)
    }

    /// A network playing `graphs` once, then repeating the last graph
    /// forever — the shape of the paper's `G1` (one initial graph, then a
    /// fixed one).
    ///
    /// # Errors
    ///
    /// As [`SequenceNetwork::cycling`].
    pub fn once(graphs: Vec<Graph>) -> Result<Self, GraphError> {
        Self::validated(graphs, false)
    }

    fn validated(graphs: Vec<Graph>, cyclic: bool) -> Result<Self, GraphError> {
        if graphs.is_empty() {
            return Err(GraphError::InvalidParameter(
                "sequence network needs at least one graph".into(),
            ));
        }
        let n = graphs[0].n();
        if graphs.iter().any(|g| g.n() != n) {
            return Err(GraphError::InvalidParameter(
                "all graphs in a dynamic network must share the node set".into(),
            ));
        }
        let step_deltas = vec![None; graphs.len()];
        Ok(SequenceNetwork {
            graphs,
            cyclic,
            step_deltas,
        })
    }

    /// Number of scheduled graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the schedule is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The graph scheduled for step `t` (without needing `&mut`).
    pub fn graph_at(&self, t: u64) -> &Graph {
        &self.graphs[self.index_at(t)]
    }

    fn index_at(&self, t: u64) -> usize {
        if self.cyclic {
            (t % self.graphs.len() as u64) as usize
        } else {
            (t as usize).min(self.graphs.len() - 1)
        }
    }
}

impl DynamicNetwork for SequenceNetwork {
    fn n(&self) -> usize {
        self.graphs[0].n()
    }

    fn topology(&mut self, t: u64, _informed: &NodeSet, _rng: &mut SimRng) -> &Graph {
        self.graph_at(t)
    }

    fn reset(&mut self) {}

    fn name(&self) -> &str {
        "sequence"
    }

    /// Diff between consecutive schedule positions, memoized: a `k`-graph
    /// schedule pays at most `k` symmetric-difference computations total.
    fn edges_changed(
        &mut self,
        t: u64,
        _informed: &NodeSet,
        _rng: &mut SimRng,
    ) -> Option<EdgeDelta> {
        if t == 0 {
            return Some(EdgeDelta::empty());
        }
        let prev = self.index_at(t - 1);
        let next = self.index_at(t);
        if prev == next {
            return Some(EdgeDelta::empty());
        }
        if self.step_deltas[prev].is_none() {
            self.step_deltas[prev] =
                Some(EdgeDelta::between(&self.graphs[prev], &self.graphs[next]));
        }
        self.step_deltas[prev].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn static_network_constant() {
        let mut net = StaticNetwork::new(generators::complete(5).unwrap());
        assert_eq!(net.n(), 5);
        let informed = NodeSet::new(5);
        let mut rng = SimRng::seed_from_u64(0);
        for t in 0..10 {
            assert_eq!(net.topology(t, &informed, &mut rng).m(), 10);
        }
        net.reset();
        assert_eq!(net.name(), "static");
        assert_eq!(net.suggested_start(), 0);
    }

    #[test]
    fn sequence_cycles() {
        let graphs = vec![
            generators::path(5).unwrap(),
            generators::cycle(5).unwrap(),
            generators::star(5).unwrap(),
        ];
        let mut net = SequenceNetwork::cycling(graphs).unwrap();
        let informed = NodeSet::new(5);
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(net.topology(0, &informed, &mut rng).m(), 4);
        assert_eq!(net.topology(4, &informed, &mut rng).m(), 5);
        assert_eq!(net.topology(3, &informed, &mut rng).m(), 4);
        assert_eq!(net.len(), 3);
    }

    #[test]
    fn sequence_once_clamps() {
        let graphs = vec![generators::path(4).unwrap(), generators::cycle(4).unwrap()];
        let mut net = SequenceNetwork::once(graphs).unwrap();
        let informed = NodeSet::new(4);
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(net.topology(0, &informed, &mut rng).m(), 3);
        for t in 1..5 {
            assert_eq!(net.topology(t, &informed, &mut rng).m(), 4);
        }
    }

    #[test]
    fn sequence_validates() {
        assert!(SequenceNetwork::cycling(vec![]).is_err());
        let mismatched = vec![generators::path(4).unwrap(), generators::path(5).unwrap()];
        assert!(SequenceNetwork::cycling(mismatched).is_err());
    }

    #[test]
    fn trait_object_safe() {
        let net = StaticNetwork::new(generators::path(3).unwrap());
        let boxed: Box<dyn DynamicNetwork> = Box::new(net);
        assert_eq!(boxed.n(), 3);
    }
}
