//! Property-based tests for the dynamic networks.
//!
//! Invariants on randomized informed-set trajectories:
//! * every exposed graph has the full node set;
//! * closed-form profiles stay in their mathematical ranges;
//! * the adaptive adversaries' `B` side shrinks monotonically and respects
//!   the paper's freeze thresholds;
//! * `reset` restores a deterministic network to its initial trajectory.

use gossip_dynamics::{
    AbsoluteDiligentNetwork, DiligentNetwork, DynamicNetwork, DynamicStar, ProfiledNetwork,
};
use gossip_graph::NodeSet;
use gossip_stats::SimRng;
use proptest::prelude::*;

/// Builds a random monotone trajectory of informed sets over `n` nodes.
fn informed_trajectory(n: usize, steps: usize, seed: u64) -> Vec<NodeSet> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut current = NodeSet::new(n);
    current.insert(rng.index(n) as u32);
    let mut out = vec![current.clone()];
    for _ in 1..steps {
        let additions = rng.index(4);
        for _ in 0..additions {
            let v = rng.index(n) as u32;
            current.insert(v);
        }
        out.push(current.clone());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// The dynamic star always exposes a star centered on an uninformed
    /// node (when one exists), over the full node set.
    #[test]
    fn dynamic_star_invariants(seed in 0u64..500, leaves in 3usize..40, steps in 1usize..20) {
        let mut net = DynamicStar::new(leaves).expect("leaves >= 2");
        let n = net.n();
        let mut rng = SimRng::seed_from_u64(seed);
        for (t, informed) in informed_trajectory(n, steps, seed).into_iter().enumerate() {
            let g = net.topology(t as u64, &informed, &mut rng);
            prop_assert_eq!(g.n(), n);
            prop_assert_eq!(g.m(), n - 1);
            let center = net.current_center();
            if !informed.is_full() {
                prop_assert!(!informed.contains(center), "center must be uninformed");
            }
        }
    }

    /// The Section 4 network: `B` shrinks monotonically, never below the
    /// n/4 freeze threshold, and the exposed graph always spans all nodes.
    #[test]
    fn diligent_network_b_monotone(seed in 0u64..200, steps in 2usize..12) {
        let n = 160;
        let mut net = DiligentNetwork::with_params(
            n,
            gossip_graph::generators::HkDeltaParams { k: 2, delta: 5 },
        ).expect("sizes fit");
        let mut rng = SimRng::seed_from_u64(seed);
        let mut prev_b = net.b_nodes().len();
        for (t, informed) in informed_trajectory(n, steps, seed ^ 0x55).into_iter().enumerate() {
            let g = net.topology(t as u64, &informed, &mut rng);
            prop_assert_eq!(g.n(), n);
            let b_now = net.b_nodes().len();
            prop_assert!(b_now <= prev_b, "B grew: {prev_b} -> {b_now}");
            prop_assert!(b_now >= n / 4, "B fell below the freeze threshold");
            prev_b = b_now;
        }
    }

    /// The Section 5.1 network keeps its closed-form profile in range and
    /// the B side above n/6.
    #[test]
    fn absolute_network_profile_ranges(seed in 0u64..200, steps in 2usize..10) {
        let n = 120;
        let mut net = AbsoluteDiligentNetwork::with_delta(n, 6).expect("sizes fit");
        let mut rng = SimRng::seed_from_u64(seed);
        for (t, informed) in informed_trajectory(n, steps, seed ^ 0x77).into_iter().enumerate() {
            let g = net.topology(t as u64, &informed, &mut rng);
            prop_assert_eq!(g.n(), n);
            prop_assert!(net.b_nodes().len() >= n / 6);
            let p = net.current_profile();
            prop_assert!(p.phi > 0.0 && p.phi <= 1.0);
            prop_assert!(p.rho > 0.0 && p.rho <= 1.0);
            prop_assert!(p.rho_abs > 0.0 && p.rho_abs <= 1.0);
            prop_assert!(p.connected);
        }
    }

    /// Closed-form profiles cross-validated against exact enumeration at
    /// small `n`: the dynamic star's profile is *exact* and the
    /// alternating network's is a sound lower bound component-wise (a
    /// profile above the truth would make the Theorem 1.1 stopping rule
    /// fire early and void the upper-bound guarantee).
    #[test]
    fn closed_form_profiles_sound_vs_exact(seed in 0u64..100, steps in 1usize..8) {
        let n = 16usize;
        let mut rng = SimRng::seed_from_u64(seed);

        let mut star = DynamicStar::new(n - 1).expect("valid");
        for (t, informed) in informed_trajectory(n, steps, seed).into_iter().enumerate() {
            let g = star.topology(t as u64, &informed, &mut rng).materialize();
            let exact = gossip_dynamics::profile::exact_profile(&g).expect("n <= 24");
            let claimed = star.current_profile();
            prop_assert!((claimed.phi - exact.phi).abs() < 1e-12);
            prop_assert!((claimed.rho - exact.rho).abs() < 1e-12);
            prop_assert!((claimed.rho_abs - exact.rho_abs).abs() < 1e-12);
            prop_assert_eq!(claimed.connected, exact.connected);
        }

        let mut alt = gossip_dynamics::AlternatingRegular::new(n, &mut rng).expect("valid");
        for (t, informed) in informed_trajectory(n, steps, seed ^ 0x99).into_iter().enumerate() {
            let g = alt.topology(t as u64, &informed, &mut rng).materialize();
            let exact = gossip_dynamics::profile::exact_profile(&g).expect("n <= 24");
            let claimed = alt.current_profile();
            prop_assert!(claimed.phi <= exact.phi + 1e-12,
                "phi claim {} above exact {}", claimed.phi, exact.phi);
            prop_assert!(claimed.rho <= exact.rho + 1e-12,
                "rho claim {} above exact {}", claimed.rho, exact.rho);
            prop_assert!((claimed.rho_abs - exact.rho_abs).abs() < 1e-12,
                "rho_abs closed form {} != exact {}", claimed.rho_abs, exact.rho_abs);
            prop_assert_eq!(claimed.connected, exact.connected);
        }
    }

    /// Reset restores deterministic networks to their initial trajectory.
    #[test]
    fn reset_restores_trajectory(seed in 0u64..200, leaves in 3usize..20) {
        let mut net = DynamicStar::new(leaves).expect("valid");
        let n = net.n();
        let mut rng = SimRng::seed_from_u64(seed);
        let traj = informed_trajectory(n, 6, seed);
        let first: Vec<usize> = traj
            .iter()
            .enumerate()
            .map(|(t, inf)| net.topology(t as u64, inf, &mut rng).degree(0))
            .collect();
        net.reset();
        let second: Vec<usize> = traj
            .iter()
            .enumerate()
            .map(|(t, inf)| net.topology(t as u64, inf, &mut rng).degree(0))
            .collect();
        prop_assert_eq!(first, second);
    }
}
