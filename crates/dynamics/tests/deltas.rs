//! Contract tests for [`DynamicNetwork::edges_changed`]: whenever a network
//! reports `Some(delta)`, the delta must be the exact symmetric difference
//! between the previous window's graph and what `topology(t, …)` returns
//! afterwards — the incremental engine's correctness rests on this.

use gossip_dynamics::{
    AlternatingRegular, CliquePendant, DynamicNetwork, EdgeDelta, EdgeMarkovian, ResampledGnp,
    SequenceNetwork, StaticNetwork,
};
use gossip_graph::{generators, NodeSet, Topology};
use gossip_stats::SimRng;

/// Walks `windows` windows, asserting the reported delta matches the
/// observed graph change at every boundary. Returns how many boundaries
/// reported a delta (vs the `None` rebuild fallback).
fn check_delta_contract<N: DynamicNetwork>(net: &mut N, windows: u64, seed: u64) -> usize {
    let mut rng = SimRng::seed_from_u64(seed);
    let n = net.n();
    let informed = NodeSet::new(n);
    net.reset();
    let mut prev: Option<Topology> = None;
    let mut reported = 0;
    for t in 0..windows {
        let delta = net.edges_changed(t, &informed, &mut rng);
        let current = net.topology(t, &informed, &mut rng).clone();
        if let (Some(delta), Some(prev)) = (&delta, &prev) {
            let expected = EdgeDelta::between(&prev.graph_cow(), &current.graph_cow());
            assert_eq!(
                delta,
                &expected,
                "window {t} ({}): reported delta disagrees with the graph diff",
                net.name()
            );
        }
        if delta.is_some() {
            reported += 1;
        }
        prev = Some(current);
    }
    reported
}

#[test]
fn static_network_reports_empty_deltas() {
    let mut net = StaticNetwork::new(generators::cycle(12).unwrap());
    assert_eq!(check_delta_contract(&mut net, 8, 1), 8);
}

#[test]
fn sequence_network_reports_schedule_diffs() {
    let graphs = vec![
        generators::path(10).unwrap(),
        generators::cycle(10).unwrap(),
        generators::star(10).unwrap(),
    ];
    let mut net = SequenceNetwork::cycling(graphs).unwrap();
    assert_eq!(check_delta_contract(&mut net, 10, 2), 10);

    let graphs = vec![
        generators::path(8).unwrap(),
        generators::complete(8).unwrap(),
    ];
    let mut net = SequenceNetwork::once(graphs).unwrap();
    assert_eq!(check_delta_contract(&mut net, 6, 3), 6);
}

#[test]
fn clique_pendant_declines_only_the_switch() {
    // The t = 1 switch rewires Θ(n²) edges between implicit backends, so
    // the network declines the diff there (rebuild); every other boundary
    // reports the empty delta.
    let mut net = CliquePendant::new(8).unwrap();
    assert_eq!(check_delta_contract(&mut net, 6, 4), 5);
    let mut rng = SimRng::seed_from_u64(5);
    let informed = NodeSet::new(net.n());
    net.reset();
    let _ = net.topology(0, &informed, &mut rng);
    assert!(net.edges_changed(1, &informed, &mut rng).is_none());
    let d2 = net.edges_changed(2, &informed, &mut rng).unwrap();
    assert!(d2.is_empty());
}

#[test]
fn alternating_replays_inverse_deltas() {
    let mut build_rng = SimRng::seed_from_u64(6);
    let mut net = AlternatingRegular::new(16, &mut build_rng).unwrap();
    assert_eq!(check_delta_contract(&mut net, 7, 7), 7);
    // Odd boundaries densify, even boundaries sparsify; they are inverses.
    let mut rng = SimRng::seed_from_u64(8);
    let informed = NodeSet::new(16);
    net.reset();
    let _ = net.topology(0, &informed, &mut rng);
    let densify = net.edges_changed(1, &informed, &mut rng).unwrap();
    let sparsify = net.edges_changed(2, &informed, &mut rng).unwrap();
    assert_eq!(densify.inverted(), sparsify);
    assert!(!densify.is_empty());
}

#[test]
fn edge_markovian_reports_flips() {
    let initial = generators::cycle(20).unwrap();
    let mut net = EdgeMarkovian::new(initial, 0.05, 0.3).unwrap();
    let reported = check_delta_contract(&mut net, 12, 9);
    assert_eq!(reported, 12, "single-step advances always report a delta");
}

#[test]
fn edge_markovian_none_on_window_jump() {
    let initial = generators::cycle(10).unwrap();
    let mut net = EdgeMarkovian::new(initial, 0.1, 0.1).unwrap();
    let mut rng = SimRng::seed_from_u64(10);
    let informed = NodeSet::new(10);
    assert!(net.edges_changed(0, &informed, &mut rng).is_some());
    // Jumping from t = 0 to t = 5 skips four evolutions: no diff available.
    assert!(net.edges_changed(5, &informed, &mut rng).is_none());
    // topology() still fast-forwards correctly after the refusal.
    let _ = net.topology(5, &informed, &mut rng);
}

#[test]
fn resampled_gnp_reports_exact_resampling_diffs() {
    let mut net = ResampledGnp::new(40, 0.1, 12).unwrap();
    let reported = check_delta_contract(&mut net, 10, 13);
    assert_eq!(reported, 10, "single-step advances always report a delta");
    // Window jumps decline, as in the edge-Markovian model.
    let mut rng = SimRng::seed_from_u64(14);
    let informed = NodeSet::new(40);
    net.reset();
    assert!(net.edges_changed(0, &informed, &mut rng).is_some());
    assert!(net.edges_changed(4, &informed, &mut rng).is_none());
    let _ = net.topology(4, &informed, &mut rng);
}

#[test]
fn default_implementation_declines() {
    // DynamicStar keeps the default: recentering rewires Θ(n) edges, so a
    // rebuild is the honest answer.
    let mut net = gossip_dynamics::DynamicStar::new(6).unwrap();
    let mut rng = SimRng::seed_from_u64(11);
    let informed = NodeSet::new(net.n());
    assert!(net.edges_changed(1, &informed, &mut rng).is_none());
}
