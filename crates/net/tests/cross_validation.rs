//! Live runtime vs analytic engines: the two stacks simulate the same
//! asynchronous process, so their spread-time distributions must agree.
//!
//! The live runtime shares no event-loop code with `gossip-sim` — nodes
//! are actors exchanging envelopes with a one-tick latency, the engines
//! draw from the process's exact event distribution — which makes
//! agreement here a validation of both implementations at once. The
//! KS pattern (α = 0.01) follows `vectorized_equivalence.rs` /
//! `fault_equivalence.rs`.
//!
//! Also enforced: bit-identical determinism by `(spec, seed)` across
//! group counts, UDP loopback trials bit-identical to in-process ones,
//! and drop-fault sanity (total loss never spreads; loss never helps).

use gossip_dynamics::StaticNetwork;
use gossip_graph::Topology;
use gossip_net::{DeliveryKind, NetConfig, NetPlan, NetProtocol, NetSweep};
use gossip_sim::{AnyProtocol, CutRateAsync, Engine, RunPlan};
use gossip_stats::ks;

const TRIALS: usize = 400;
const ALPHA: f64 = 0.01;

/// Spread times from the live runtime (two node groups, default tick).
fn live_times(topo: &Topology, start: u32, seed: u64, trials: usize) -> Vec<f64> {
    let cfg = NetConfig {
        groups: 2,
        ..NetConfig::default()
    };
    let report = NetPlan::new(trials, seed)
        .config(cfg)
        .execute(topo, NetProtocol::PushPull, start)
        .unwrap();
    assert_eq!(report.completed(), trials, "live trials must all complete");
    report.sorted_times().to_vec()
}

/// Spread times from the analytic event engine on the same topology.
fn engine_times(topo: &Topology, start: u32, seed: u64, trials: usize) -> Vec<f64> {
    let topo = topo.clone();
    let report = RunPlan::new(trials, seed)
        .engine(Engine::Event)
        .start_opt(Some(start))
        .execute(
            move || StaticNetwork::from_topology(topo.clone()),
            || AnyProtocol::event(CutRateAsync::new()),
        )
        .unwrap();
    assert_eq!(report.completed(), trials);
    report.sorted_times().to_vec()
}

fn assert_live_matches_engine(topo: &Topology, start: u32) {
    let live = live_times(topo, start, 101, TRIALS);
    let engine = engine_times(topo, start, 202, TRIALS);
    assert!(
        ks::same_distribution(&live, &engine, ALPHA),
        "KS distance {} exceeds critical {} (live median {}, engine median {})",
        ks::ks_statistic(&live, &engine),
        ks::ks_critical(live.len(), engine.len(), ALPHA),
        live[live.len() / 2],
        engine[engine.len() / 2],
    );
}

#[test]
fn live_matches_event_engine_on_complete() {
    let topo = Topology::complete(64).unwrap();
    assert_live_matches_engine(&topo, 0);
}

#[test]
fn live_matches_event_engine_on_star() {
    // Start at a leaf: the first hop must pull through the center, the
    // most latency-sensitive shape a static family offers.
    let topo = Topology::star(64, 0).unwrap();
    assert_live_matches_engine(&topo, 1);
}

#[test]
fn live_matches_event_engine_on_gnp() {
    // Sampled G(n, p) above the connectivity threshold; same realized
    // graph on both sides.
    let topo = Topology::gnp(96, 0.15, 424_242).unwrap();
    assert_live_matches_engine(&topo, 0);
}

#[test]
fn live_trials_are_bit_deterministic_across_group_counts() {
    // Grouping is pure parallelization: any group count, any repeat,
    // identical bits. This is the contract that makes the runtime's
    // parallelism (and its transports) invisible to results.
    let topo = Topology::gnp(120, 0.12, 999).unwrap();
    let run = |groups: usize| -> Vec<f64> {
        let cfg = NetConfig {
            groups,
            ..NetConfig::default()
        };
        NetPlan::new(8, 77)
            .config(cfg)
            .execute(&topo, NetProtocol::PushPull, 0)
            .unwrap()
            .sorted_times()
            .to_vec()
    };
    let reference = run(1);
    assert_eq!(reference.len(), 8);
    for groups in [2, 4, 7] {
        let other = run(groups);
        for (a, b) in reference.iter().zip(&other) {
            assert_eq!(a.to_bits(), b.to_bits(), "groups={groups}");
        }
    }
    let again = run(4);
    for (a, b) in reference.iter().zip(&again) {
        assert_eq!(a.to_bits(), b.to_bits(), "repeat");
    }
}

#[test]
fn udp_loopback_trials_match_local_bit_for_bit() {
    // The transport is part of the determinism contract: length-prefixed
    // datagrams over loopback sockets deliver the very same trials as
    // in-process channels.
    let topo = Topology::complete(40).unwrap();
    let run = |kind: DeliveryKind| {
        let cfg = NetConfig {
            groups: 3,
            ..NetConfig::default()
        };
        NetPlan::new(3, 55)
            .config(cfg)
            .delivery(kind)
            .execute(&topo, NetProtocol::PushPull, 0)
            .unwrap()
    };
    let local = run(DeliveryKind::Local);
    let udp = run(DeliveryKind::Udp);
    assert_eq!(local.completed(), 3);
    assert_eq!(udp.completed(), 3);
    assert_eq!(local.events(), udp.events());
    assert_eq!(local.messages(), udp.messages());
    for (a, b) in local.sorted_times().iter().zip(udp.sorted_times()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn sweep_rows_are_deterministic_by_spec_and_seed() {
    use gossip_core::scenario::{FamilySpec, NetSpec, ProtocolSpec, ScenarioSpec, SweepSpec};
    let spec = |groups: usize| {
        let mut family = FamilySpec::new("er");
        family.p = Some(0.15);
        family.backend = Some("sampled".into());
        let mut sweep = SweepSpec::over(vec![48, 64]);
        sweep.trials = Some(6);
        sweep.seed = Some(12);
        ScenarioSpec {
            name: "net-determinism".into(),
            description: None,
            family,
            protocol: ProtocolSpec::new("async"),
            sweep,
            faults: None,
            net: Some(NetSpec {
                groups: Some(groups),
                ..NetSpec::new()
            }),
        }
    };
    let run = |groups: usize| {
        let spec = spec(groups);
        NetSweep::new(&spec).unwrap().run().unwrap().report
    };
    let one = run(1);
    let four = run(4);
    // ScenarioReport rows carry f64 statistics; PartialEq compares them
    // exactly, which is precisely the contract.
    assert_eq!(one.rows, four.rows);
    assert_eq!(one.rows.len(), 2);
    assert!(one.rows.iter().all(|r| r.completed == 6));
}

#[test]
fn total_drop_never_spreads_and_loss_never_helps() {
    let topo = Topology::complete(32).unwrap();
    let run = |drop: f64, horizon: f64| {
        let mut cfg = NetConfig {
            groups: 2,
            horizon,
            ..NetConfig::default()
        };
        cfg.faults.drop = drop;
        cfg.faults.seed = 9;
        NetPlan::new(60, 5)
            .config(cfg)
            .execute(&topo, NetProtocol::PushPull, 0)
            .unwrap()
    };
    // drop = 1: every envelope dies at the delivery layer; only the
    // start node ever knows the rumor and every trial hits the horizon.
    let dead = run(1.0, 5.0);
    assert_eq!(dead.completed(), 0);
    assert_eq!(dead.budget_stopped(), 60);
    assert_eq!(dead.dropped(), dead.messages());
    // Losing half the envelopes slows spreading; medians must order.
    let clean = run(0.0, 1e4);
    let lossy = run(0.5, 1e4);
    assert_eq!(clean.completed(), 60);
    assert_eq!(lossy.completed(), 60);
    assert!(lossy.dropped() > 0);
    assert!(
        lossy.median() > clean.median(),
        "lossy {} vs clean {}",
        lossy.median(),
        clean.median()
    );
}
