//! Live runtime vs analytic event engine **under matched fault
//! models**, plus the determinism contract for every live fault kind.
//!
//! The two stacks draw their fault coins differently — the engine from a
//! sequential per-trial fault stream, the live runtime from keyed
//! per-`(node, window)` / per-`(src, seq)` hashes — so the contract
//! between them is *distributional* (KS, α = 0.01), exactly the contract
//! the scalar and vectorized analytic paths share. Within the live
//! stack, the contract is stricter: bit-identical results across group
//! counts {1, 2, 3} and transports {local, udp} for every fault kind
//! (crash/recovery, schedule, partition, delay, duplication), which is
//! the acceptance criterion of the churn-tolerant runtime.
//!
//! Protocol note: under drop faults the live push–pull *pull* costs two
//! envelopes (request + reply), each dropped independently — a (1 − q)²
//! success rate where the engine's in-memory pull pays one (1 − q) veto.
//! The drop KS therefore runs the push-only protocol, whose single
//! envelope per contact is loss-isomorphic between the stacks;
//! crash/recovery KS (at drop = 0) runs full push–pull.

use gossip_dynamics::StaticNetwork;
use gossip_graph::Topology;
use gossip_net::{DeliveryKind, NetConfig, NetFaults, NetPlan, NetProtocol};
use gossip_sim::{
    AnyProtocol, AsyncPush, CutRateAsync, Engine, FaultModel, RunConfig, RunPlan, TrialOutcome,
};
use gossip_stats::ks;

const TRIALS: usize = 300;
const ALPHA: f64 = 0.01;
const HORIZON: f64 = 1e4;

fn live_report(
    topo: &Topology,
    proto: NetProtocol,
    faults: NetFaults,
    seed: u64,
    trials: usize,
) -> gossip_net::NetReport {
    let mut cfg = NetConfig {
        groups: 2,
        horizon: HORIZON,
        ..NetConfig::default()
    };
    cfg.faults = faults;
    NetPlan::new(trials, seed)
        .config(cfg)
        .execute(topo, proto, 0)
        .unwrap()
}

fn engine_report(
    topo: &Topology,
    proto: fn() -> AnyProtocol,
    model: FaultModel,
    seed: u64,
    trials: usize,
) -> gossip_sim::RunReport {
    let topo = topo.clone();
    RunPlan::new(trials, seed)
        .engine(Engine::Event)
        .start_opt(Some(0))
        .faults(model)
        .config(RunConfig::with_max_time(HORIZON))
        .execute(move || StaticNetwork::from_topology(topo.clone()), proto)
        .unwrap()
}

fn assert_ks(live: &[f64], engine: &[f64], label: &str) {
    assert!(
        ks::same_distribution(live, engine, ALPHA),
        "{label}: KS distance {} exceeds critical {} \
         (live n={} median {}, engine n={} median {})",
        ks::ks_statistic(live, engine),
        ks::ks_critical(live.len(), engine.len(), ALPHA),
        live.len(),
        live[live.len() / 2],
        engine.len(),
        engine[engine.len() / 2],
    );
}

#[test]
fn crash_recovery_matches_event_engine_on_complete() {
    let topo = Topology::complete(64).unwrap();
    let faults = NetFaults {
        crash_rate: 0.1,
        recovery_rate: 0.5,
        seed: 23,
        ..NetFaults::default()
    };
    let model = FaultModel {
        crash_rate: 0.1,
        recovery_rate: 0.5,
        seed: 23,
        ..FaultModel::default()
    };
    let live = live_report(&topo, NetProtocol::PushPull, faults, 101, TRIALS);
    assert_eq!(live.completed(), TRIALS, "recovery keeps every trial alive");
    let engine = engine_report(
        &topo,
        || AnyProtocol::event(CutRateAsync::new()),
        model,
        202,
        TRIALS,
    );
    assert_eq!(engine.completed(), TRIALS);
    assert_ks(
        live.sorted_times(),
        engine.sorted_times(),
        "crash/recovery on complete(64)",
    );
}

#[test]
fn crash_recovery_matches_event_engine_on_gnp() {
    let topo = Topology::gnp(96, 0.15, 424_242).unwrap();
    let faults = NetFaults {
        crash_rate: 0.08,
        recovery_rate: 0.6,
        seed: 31,
        ..NetFaults::default()
    };
    let model = FaultModel {
        crash_rate: 0.08,
        recovery_rate: 0.6,
        seed: 31,
        ..FaultModel::default()
    };
    let live = live_report(&topo, NetProtocol::PushPull, faults, 103, TRIALS);
    assert_eq!(live.completed(), TRIALS);
    let engine = engine_report(
        &topo,
        || AnyProtocol::event(CutRateAsync::new()),
        model,
        204,
        TRIALS,
    );
    assert_eq!(engine.completed(), TRIALS);
    assert_ks(
        live.sorted_times(),
        engine.sorted_times(),
        "crash/recovery on G(96, 0.15)",
    );
}

#[test]
fn drop_matches_event_engine_with_push_protocol() {
    let topo = Topology::complete(64).unwrap();
    let faults = NetFaults {
        drop: 0.3,
        seed: 17,
        ..NetFaults::default()
    };
    let model = FaultModel {
        drop: 0.3,
        seed: 17,
        ..FaultModel::default()
    };
    let live = live_report(&topo, NetProtocol::Push, faults, 105, TRIALS);
    assert_eq!(live.completed(), TRIALS);
    assert!(live.dropped() > 0);
    let engine = engine_report(
        &topo,
        || AnyProtocol::event(AsyncPush::new()),
        model,
        206,
        TRIALS,
    );
    assert_eq!(engine.completed(), TRIALS);
    assert_ks(
        live.sorted_times(),
        engine.sorted_times(),
        "drop 0.3, push-only, complete(64)",
    );
}

#[test]
fn permanent_crash_death_rates_agree_with_engine() {
    // Unrecoverable crashes: both stacks race spread against the crash
    // clocks, and the Spread/Died split must agree within sampling noise
    // (the spread *times* of survivors are KS-compared too).
    let topo = Topology::complete(48).unwrap();
    let (crash, seed) = (0.004, 37);
    let faults = NetFaults {
        crash_rate: crash,
        seed,
        ..NetFaults::default()
    };
    let model = FaultModel {
        crash_rate: crash,
        seed,
        ..FaultModel::default()
    };
    let live = live_report(&topo, NetProtocol::PushPull, faults, 107, TRIALS);
    let engine = engine_report(
        &topo,
        || AnyProtocol::event(CutRateAsync::new()),
        model,
        208,
        TRIALS,
    );
    let live_rate = live.completed() as f64 / TRIALS as f64;
    let engine_rate = engine.completed() as f64 / TRIALS as f64;
    assert!(
        (live_rate - engine_rate).abs() < 0.12,
        "survival rates drifted: live {live_rate} vs engine {engine_rate}"
    );
    assert!(live.completed() > 0 && live.completed() < TRIALS);
    assert_ks(
        live.sorted_times(),
        engine.sorted_times(),
        "spread times of surviving trials, crash 0.05",
    );
}

/// Every live fault kind, bit-identical across {1, 2, 3} groups ×
/// {local, udp} — the acceptance criterion of the churn-tolerant
/// runtime.
#[test]
fn every_fault_kind_is_bit_identical_across_groups_and_transports() {
    let topo = Topology::gnp(48, 0.25, 77).unwrap();
    let kinds: [(&str, NetFaults); 6] = [
        (
            "drop",
            NetFaults {
                drop: 0.2,
                seed: 3,
                ..NetFaults::default()
            },
        ),
        (
            "crash+recovery",
            NetFaults {
                crash_rate: 0.2,
                recovery_rate: 1.0,
                seed: 3,
                ..NetFaults::default()
            },
        ),
        (
            "schedule",
            NetFaults {
                schedule: vec![(1, 5), (2, 11), (4, 0)],
                recovery_rate: 0.8,
                crash_rate: 1e-9,
                seed: 3,
                ..NetFaults::default()
            },
        ),
        (
            "partition",
            NetFaults {
                partition_rate: 0.4,
                seed: 3,
                ..NetFaults::default()
            },
        ),
        (
            "delay",
            NetFaults {
                delay: 0.3,
                delay_epochs: 3,
                seed: 3,
                ..NetFaults::default()
            },
        ),
        (
            "duplicate",
            NetFaults {
                duplicate: 0.25,
                seed: 3,
                ..NetFaults::default()
            },
        ),
    ];
    for (label, faults) in kinds {
        let run = |groups: usize, kind: DeliveryKind| {
            let mut cfg = NetConfig {
                groups,
                horizon: HORIZON,
                ..NetConfig::default()
            };
            cfg.faults = faults.clone();
            NetPlan::new(3, 55)
                .config(cfg)
                .delivery(kind)
                .execute(&topo, NetProtocol::PushPull, 0)
                .unwrap()
        };
        let reference = run(1, DeliveryKind::Local);
        let mut configs: Vec<(usize, DeliveryKind)> = vec![
            (2, DeliveryKind::Local),
            (3, DeliveryKind::Local),
            (1, DeliveryKind::Udp),
            (2, DeliveryKind::Udp),
            (3, DeliveryKind::Udp),
        ];
        for (groups, kind) in configs.drain(..) {
            let other = run(groups, kind);
            assert_eq!(
                reference.trials(),
                other.trials(),
                "{label}: groups={groups} kind={kind:?}"
            );
            assert_eq!(
                reference.completed(),
                other.completed(),
                "{label}: groups={groups} kind={kind:?}"
            );
            assert_eq!(
                reference.events(),
                other.events(),
                "{label}: groups={groups} kind={kind:?}"
            );
            assert_eq!(
                reference.messages(),
                other.messages(),
                "{label}: groups={groups} kind={kind:?}"
            );
            assert_eq!(
                (
                    reference.dropped(),
                    reference.blocked(),
                    reference.duplicated()
                ),
                (other.dropped(), other.blocked(), other.duplicated()),
                "{label}: groups={groups} kind={kind:?}"
            );
            for (a, b) in reference.sorted_times().iter().zip(other.sorted_times()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{label}: groups={groups} kind={kind:?}"
                );
            }
        }
    }
}

#[test]
fn chaos_faults_slow_but_do_not_kill_spreading() {
    // Partition/delay/duplication perturb delivery without killing nodes:
    // every trial still spreads, and delay pushes spread times up.
    let topo = Topology::complete(32).unwrap();
    let clean = live_report(&topo, NetProtocol::PushPull, NetFaults::default(), 9, 40);
    let chaotic = live_report(
        &topo,
        NetProtocol::PushPull,
        NetFaults {
            partition_rate: 0.3,
            delay: 0.4,
            delay_epochs: 4,
            duplicate: 0.2,
            seed: 5,
            ..NetFaults::default()
        },
        9,
        40,
    );
    assert_eq!(clean.completed(), 40);
    assert_eq!(chaotic.completed(), 40, "chaos must not prevent spreading");
    assert!(chaotic.blocked() > 0, "partitions must cut something");
    assert!(chaotic.duplicated() > 0, "duplication must fire");
    assert!(
        chaotic.outcomes().spread == 40 && clean.outcomes().spread == 40
            || chaotic.median() >= clean.median() * 0.5,
        "sanity: chaos at these rates leaves spreading intact"
    );
}

#[test]
fn scheduled_crash_is_honored_and_dies_without_recovery() {
    // Crash the entire graph at window 2 with no recovery: no trial can
    // finish (spread on complete(16) takes ~log n ≈ 2.8 time units), and
    // every trial must end Died — on every transport.
    let topo = Topology::complete(16).unwrap();
    let faults = NetFaults {
        schedule: (0..16).map(|v| (2, v)).collect(),
        seed: 1,
        ..NetFaults::default()
    };
    for kind in [DeliveryKind::Local, DeliveryKind::Udp] {
        let mut cfg = NetConfig {
            groups: 2,
            horizon: f64::INFINITY,
            ..NetConfig::default()
        };
        cfg.faults = faults.clone();
        let report = NetPlan::new(10, 3)
            .config(cfg)
            .delivery(kind)
            .execute(&topo, NetProtocol::PushPull, 0)
            .unwrap();
        let outcomes = report.outcomes();
        assert_eq!(
            outcomes.spread + outcomes.died,
            10,
            "{kind:?}: infinite horizon leaves only Spread or Died"
        );
        assert!(
            outcomes.died > 0,
            "{kind:?}: killing everyone at t=2 must kill most trials"
        );
    }
    // Determinism across outcomes too: trial outcomes are part of the
    // bit-identity contract.
    let _ = TrialOutcome::Died;
}
