//! Error type of the live runtime.

use gossip_core::scenario::ScenarioError;
use gossip_sim::SimError;
use std::fmt;

/// Errors raised by the live gossip runtime.
#[derive(Debug)]
pub enum NetError {
    /// A structurally invalid configuration (zero-size network, bad tick,
    /// a family or protocol the live runtime cannot run, …).
    Invalid(String),
    /// A transport failure (socket setup, send/receive) on the
    /// [`crate::UdpDelivery`] path, or a torn-down in-process channel.
    Io(String),
    /// A UDP epoch exchange exhausted its retry/backoff budget waiting
    /// for peer datagrams. Unlike [`NetError::Io`] this is a *retryable*
    /// condition — the fabric is structurally sound but a peer stopped
    /// answering (overload, datagram loss burst, a killed process) — so
    /// batch drivers re-run the trial on a fresh fabric before giving
    /// up. Carries which group observed the stall and at which exchange
    /// round, plus the peers still missing.
    Stalled {
        /// The group whose `exchange` call timed out.
        group: usize,
        /// The epoch-exchange round that never completed.
        round: u64,
        /// Groups whose datagrams were still missing after the retries.
        missing: Vec<usize>,
    },
    /// A scenario-layer failure while building the family/protocol or
    /// validating the spec.
    Scenario(ScenarioError),
    /// An observer or summary sink rejected a trial record.
    Sim(SimError),
}

impl NetError {
    /// Whether retrying the operation (on a rebuilt fabric) can
    /// plausibly succeed. Only exchange stalls qualify: invalid configs
    /// and structural I/O failures repeat deterministically.
    pub fn is_retryable(&self) -> bool {
        matches!(self, NetError::Stalled { .. })
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Invalid(m) => write!(f, "invalid live-runtime configuration: {m}"),
            NetError::Io(m) => write!(f, "delivery transport error: {m}"),
            NetError::Stalled {
                group,
                round,
                missing,
            } => write!(
                f,
                "udp exchange stalled: group {group} exhausted its retries at \
                 round {round} still waiting for group(s) {missing:?}"
            ),
            NetError::Scenario(e) => write!(f, "{e}"),
            NetError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Scenario(e) => Some(e),
            NetError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScenarioError> for NetError {
    fn from(e: ScenarioError) -> Self {
        NetError::Scenario(e)
    }
}

impl From<SimError> for NetError {
    fn from(e: SimError) -> Self {
        NetError::Sim(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}
