//! Error type of the live runtime.

use gossip_core::scenario::ScenarioError;
use gossip_sim::SimError;
use std::fmt;

/// Errors raised by the live gossip runtime.
#[derive(Debug)]
pub enum NetError {
    /// A structurally invalid configuration (zero-size network, bad tick,
    /// a family or protocol the live runtime cannot run, …).
    Invalid(String),
    /// A transport failure (socket setup, send/receive, exchange
    /// timeout) on the [`crate::UdpDelivery`] path, or a torn-down
    /// in-process channel.
    Io(String),
    /// A scenario-layer failure while building the family/protocol or
    /// validating the spec.
    Scenario(ScenarioError),
    /// An observer or summary sink rejected a trial record.
    Sim(SimError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Invalid(m) => write!(f, "invalid live-runtime configuration: {m}"),
            NetError::Io(m) => write!(f, "delivery transport error: {m}"),
            NetError::Scenario(e) => write!(f, "{e}"),
            NetError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Scenario(e) => Some(e),
            NetError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScenarioError> for NetError {
    fn from(e: ScenarioError) -> Self {
        NetError::Scenario(e)
    }
}

impl From<SimError> for NetError {
    fn from(e: SimError) -> Self {
        NetError::Sim(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}
