//! Live-runtime fault injection: per-node liveness (crash / recovery /
//! scheduled crashes) plus delivery-layer chaos (partitions, delays,
//! duplication).
//!
//! # The liveness state machine
//!
//! Each node owned by a group carries a two-state machine — **up** or
//! **down** — advanced over *unit-time windows*, the same discretization
//! the analytic event engine uses for its crash/recovery clocks
//! (`P(transition in a window) = 1 − e^{−rate}`). Within window `w`
//! (virtual time `[w, w + 1)`) a node's state is constant; the
//! transitions applied *at* window `w`, in fixed order, are:
//!
//! 1. a **recovery coin** if the node is down (`recovery_rate > 0`),
//! 2. a **crash coin** if the node is up (`crash_rate > 0`),
//! 3. every explicit `[window, node]` **schedule** entry due at `w`.
//!
//! The state is advanced *lazily and on demand*: before a node acts on
//! an event at time `t` (a clock activation or an envelope arrival), its
//! machine is advanced to window `⌊t⌋`. A down node's activation still
//! burns its RNG draws — keeping the activation chain bit-identical to
//! the fault-free one — but the contact is voided, and an envelope
//! arriving at a down node is voided entirely (no infection, no pull
//! reply): exactly the event engine's rate-zero thinning, enacted at the
//! message layer.
//!
//! # Determinism
//!
//! Every coin is a pure function of `(fault_seed, trial_seed, node,
//! window)` — a keyed [`splitmix`] hash seeds a one-shot
//! [`SimRng`] — never a draw from a shared sequential stream. Two groups
//! (or two transports) evaluating the same node's liveness therefore
//! agree bit-for-bit without coordination, which is what keeps faulty
//! live runs **bit-identical across group counts and transports**
//! (test-enforced). Against the analytic engine, whose fault stream is
//! sequential, the contract is *distributional* (KS) equality — the same
//! contract the scalar and vectorized analytic paths share.
//!
//! Delivery chaos ([`ChaosGate`]) is keyed the same way on
//! `(fault_seed, trial_seed, src, seq)` (and on the send-time window for
//! partitions), mirroring [`crate::delivery::DropGate`].

use crate::delivery::splitmix;
use crate::envelope::{Envelope, Payload};
use crate::error::NetError;
use gossip_core::scenario::FaultSpec;
use gossip_graph::NodeId;
use gossip_stats::SimRng;

/// Domain-separation salts: each fault feature hashes under its own key
/// so coins never collide across features (or with [`DropGate`]'s
/// unsalted key).
///
/// [`DropGate`]: crate::delivery::DropGate
const LIVENESS_SALT: u64 = 0x4C49_5645_4E45_5353; // "LIVENESS"
const PARTITION_SALT: u64 = 0x5041_5254_4954_4E00; // "PARTITN"
const DELAY_SALT: u64 = 0x4445_4C41_5900_0000; // "DELAY"
const DUPLICATE_SALT: u64 = 0x4455_504C_4943_4154; // "DUPLICAT"

/// The compiled fault regime of a live run: the shared
/// `FaultModel` fields the runtime enacts (drop, crash, recovery,
/// schedule) plus the delivery-chaos fields that only exist where
/// messages physically travel.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaults {
    /// Per-envelope drop probability in `[0, 1]`.
    pub drop: f64,
    /// Poisson crash rate per up node per unit time (`≥ 0`).
    pub crash_rate: f64,
    /// Poisson recovery rate per down node per unit time (`≥ 0`; `0`
    /// makes every crash permanent).
    pub recovery_rate: f64,
    /// Explicit `(window, node)` crash schedule.
    pub schedule: Vec<(u64, NodeId)>,
    /// Poisson rate at which a unit window is partitioned into two
    /// seeded halves that cannot exchange envelopes (`≥ 0`).
    pub partition_rate: f64,
    /// Probability in `[0, 1]` that an envelope is delayed beyond the
    /// one-tick latency.
    pub delay: f64,
    /// Maximum extra epochs a delayed envelope waits (uniform in
    /// `1..=delay_epochs`; `≥ 1`).
    pub delay_epochs: u64,
    /// Probability in `[0, 1]` that an envelope is delivered twice.
    pub duplicate: f64,
    /// Seed of the dedicated fault streams.
    pub seed: u64,
}

impl Default for NetFaults {
    fn default() -> Self {
        NetFaults {
            drop: 0.0,
            crash_rate: 0.0,
            recovery_rate: 0.0,
            schedule: Vec::new(),
            partition_rate: 0.0,
            delay: 0.0,
            delay_epochs: 1,
            duplicate: 0.0,
            seed: 0,
        }
    }
}

impl NetFaults {
    /// Compiles a scenario `[faults]` table into the live fault regime,
    /// filling defaults (the inverse of nothing: an absent table is
    /// `NetFaults::default()`, which is bit-invisible).
    pub fn from_spec(spec: &FaultSpec) -> NetFaults {
        NetFaults {
            drop: spec.drop.unwrap_or(0.0),
            crash_rate: spec.crash_rate.unwrap_or(0.0),
            recovery_rate: spec.recovery_rate.unwrap_or(0.0),
            schedule: spec.schedule.iter().flatten().copied().collect(),
            partition_rate: spec.partition_rate.unwrap_or(0.0),
            delay: spec.delay.unwrap_or(0.0),
            delay_epochs: spec.delay_epochs.unwrap_or(1).max(1),
            duplicate: spec.duplicate.unwrap_or(0.0),
            seed: spec.seed.unwrap_or(0),
        }
    }

    /// Whether the crash/recovery/schedule machinery is active (a
    /// [`Liveness`] needs to be tracked at all).
    pub fn crash_active(&self) -> bool {
        self.crash_rate > 0.0 || !self.schedule.is_empty()
    }

    /// Whether a trial can end in `TrialOutcome::Died`: crashes happen
    /// and recovery is impossible, so "every informed node down with no
    /// rumor in flight" is a provably final state.
    pub fn can_die(&self) -> bool {
        self.crash_active() && self.recovery_rate <= 0.0
    }

    /// Whether any delivery-chaos feature (partition/delay/duplicate)
    /// is active.
    pub fn chaos_active(&self) -> bool {
        self.partition_rate > 0.0 || self.delay > 0.0 || self.duplicate > 0.0
    }

    /// Runtime backstop over the numeric parameters (spec validation
    /// catches these earlier with targeted messages).
    ///
    /// # Errors
    ///
    /// [`NetError::Invalid`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), NetError> {
        for (name, p) in [
            ("drop", self.drop),
            ("delay", self.delay),
            ("duplicate", self.duplicate),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(NetError::Invalid(format!(
                    "faults.{name} must be within [0, 1], got {p}"
                )));
            }
        }
        for (name, r) in [
            ("crash_rate", self.crash_rate),
            ("recovery_rate", self.recovery_rate),
            ("partition_rate", self.partition_rate),
        ] {
            if !r.is_finite() || r < 0.0 {
                return Err(NetError::Invalid(format!(
                    "faults.{name} must be a finite non-negative rate, got {r}"
                )));
            }
        }
        if self.delay_epochs == 0 {
            return Err(NetError::Invalid(
                "faults.delay_epochs must be at least 1".into(),
            ));
        }
        Ok(())
    }

    /// The per-trial fault key every gate derives from: the same
    /// `splitmix(splitmix(seed) ^ trial_seed)` chain as
    /// [`crate::delivery::DropGate`], further salted per feature.
    fn trial_key(&self, trial_seed: u64) -> u64 {
        splitmix(splitmix(self.seed) ^ trial_seed)
    }
}

/// One keyed fault coin: a pure function of `(key, x, p)`.
fn coin(key: u64, x: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    SimRng::seed_from_u64(splitmix(key ^ x)).chance(p)
}

/// Per-node crash/recovery state for the nodes one group owns, advanced
/// lazily over unit-time windows. See the [module docs](self) for the
/// state machine and its determinism contract.
#[derive(Debug, Clone)]
pub struct Liveness {
    key: u64,
    crash_p: f64,
    recover_p: f64,
    lo: NodeId,
    /// Current up/down state per owned node.
    up: Vec<bool>,
    /// Next window whose transitions have not been applied, per node.
    next_win: Vec<u64>,
    /// Scheduled crash windows per owned node, ascending.
    sched: Vec<Vec<u64>>,
    /// Next unapplied schedule entry per node (indexes `sched`).
    sched_idx: Vec<u32>,
}

impl Liveness {
    /// Builds the liveness tracker for the nodes of `range`, keyed by
    /// the fault regime and the trial seed. Every node starts up with
    /// window 0 still pending, matching the event engine (whose first
    /// `begin_window(0)` can crash nodes before any event fires).
    pub fn new(faults: &NetFaults, trial_seed: u64, range: std::ops::Range<NodeId>) -> Liveness {
        let len = range.len();
        let lo = range.start;
        let mut sched: Vec<Vec<u64>> = vec![Vec::new(); len];
        for &(w, v) in &faults.schedule {
            if v >= lo && ((v - lo) as usize) < len {
                sched[(v - lo) as usize].push(w);
            }
        }
        for s in &mut sched {
            s.sort_unstable();
        }
        Liveness {
            key: splitmix(faults.trial_key(trial_seed) ^ LIVENESS_SALT),
            crash_p: 1.0 - (-faults.crash_rate).exp(),
            recover_p: 1.0 - (-faults.recovery_rate).exp(),
            lo,
            up: vec![true; len],
            next_win: vec![0; len],
            sched,
            sched_idx: vec![0; len],
        }
    }

    /// Whether the owned node at local index `li` is up *as last
    /// advanced* (callers advance before acting; between advances the
    /// value is the state at the node's previous event).
    pub fn is_up(&self, li: usize) -> bool {
        self.up[li]
    }

    /// Advances node `li`'s machine through every window `≤ ⌊t⌋` not yet
    /// applied and returns whether the node is up during `t`'s window.
    /// Idempotent per window and monotone in `t` per node.
    pub fn advance(&mut self, li: usize, t: f64) -> bool {
        let w = t as u64; // t ≥ 0 in the runtime; floor
        let mut win = self.next_win[li];
        if win > w {
            return self.up[li];
        }
        self.next_win[li] = w + 1;
        let v = self.lo + li as NodeId;
        let vkey = splitmix(self.key ^ u64::from(v));
        let mut up = self.up[li];
        let sched = &self.sched[li];
        let mut si = self.sched_idx[li] as usize;
        // Pure-schedule regimes (no Poisson coins) can jump windows.
        if self.crash_p <= 0.0 && self.recover_p <= 0.0 {
            while si < sched.len() && sched[si] <= w {
                up = false;
                si += 1;
            }
        } else {
            while win <= w {
                if !up {
                    // Salt bit 0 = recovery coin, 1 = crash coin.
                    up = coin(vkey, win << 1, self.recover_p);
                }
                if up && coin(vkey, (win << 1) | 1, self.crash_p) {
                    up = false;
                }
                while si < sched.len() && sched[si] == win {
                    up = false;
                    si += 1;
                }
                win += 1;
            }
        }
        self.sched_idx[li] = si as u32;
        self.up[li] = up;
        up
    }
}

/// Deterministic delivery-layer chaos: seeded partitions, envelope
/// delay, and envelope duplication. All verdicts are pure functions of
/// the fault key and the envelope's `(src, seq)` identity (partitions
/// also key on the send-time unit window), so sender and receiver —
/// whatever group or transport they live on — always agree.
#[derive(Debug, Clone, Copy)]
pub struct ChaosGate {
    part_key: u64,
    delay_key: u64,
    dup_key: u64,
    partition_p: f64,
    delay: f64,
    delay_epochs: u64,
    duplicate: f64,
    tick: f64,
}

impl ChaosGate {
    /// A gate for one trial of a run with epoch length `tick`.
    pub fn new(faults: &NetFaults, trial_seed: u64, tick: f64) -> ChaosGate {
        let key = faults.trial_key(trial_seed);
        ChaosGate {
            part_key: splitmix(key ^ PARTITION_SALT),
            delay_key: splitmix(key ^ DELAY_SALT),
            dup_key: splitmix(key ^ DUPLICATE_SALT),
            partition_p: 1.0 - (-faults.partition_rate).exp(),
            delay: faults.delay.clamp(0.0, 1.0),
            delay_epochs: faults.delay_epochs.max(1),
            duplicate: faults.duplicate.clamp(0.0, 1.0),
            tick,
        }
    }

    /// Whether the send-time unit window of `env` is partitioned and
    /// `src`/`dst` fall on opposite halves — in which case the envelope
    /// is voided at the sender (it would cross the cut).
    ///
    /// Halves are re-drawn per partitioned window, so long partitions
    /// shuffle their membership every unit of virtual time.
    pub fn blocks(&self, env: &Envelope) -> bool {
        if self.partition_p <= 0.0 {
            return false;
        }
        let win = env.time as u64;
        if !coin(self.part_key, win, self.partition_p) {
            return false;
        }
        let wkey = splitmix(self.part_key ^ splitmix(win));
        let side = |v: NodeId| splitmix(wkey ^ u64::from(v)) & 1;
        side(env.src) != side(env.dst)
    }

    /// The arrival time of `env`: one tick after the send, plus the
    /// seeded extra epochs when the delay coin fires. Sender (for the
    /// next-event reduction) and receiver (for event ordering) compute
    /// this independently and agree by construction.
    pub fn arrival(&self, env: &Envelope) -> f64 {
        if self.delay <= 0.0 {
            return env.time + self.tick;
        }
        let h = splitmix(self.delay_key ^ ((u64::from(env.src) << 32) | u64::from(env.seq)));
        let mut rng = SimRng::seed_from_u64(h);
        let extra = if rng.chance(self.delay) {
            1 + rng.index(self.delay_epochs as usize) as u64
        } else {
            0
        };
        env.time + self.tick * (1 + extra) as f64
    }

    /// Whether the duplication coin fires for `env` (the sender enqueues
    /// a second identical copy).
    pub fn duplicates(&self, env: &Envelope) -> bool {
        if self.duplicate <= 0.0 {
            return false;
        }
        coin(
            self.dup_key,
            (u64::from(env.src) << 32) | u64::from(env.seq),
            self.duplicate,
        )
    }

    /// The sort key the runtime orders buffered arrivals by: arrival
    /// time (delay-adjusted), then source, then sequence number — a
    /// total order every group computes identically.
    pub fn order_key(&self, env: &Envelope) -> (u64, NodeId, u32) {
        (self.arrival(env).to_bits(), env.src, env.seq)
    }
}

/// Whether an envelope carries the rumor toward its destination — a
/// push contact or a pull reply. Pull *requests* don't count: an
/// in-flight request from an uninformed node cannot inform anyone by
/// itself, and uninformed nodes emit them forever.
pub fn carries_rumor(env: &Envelope) -> bool {
    matches!(
        env.payload,
        Payload::Contact { informed: true } | Payload::Rumor
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty() -> NetFaults {
        NetFaults {
            crash_rate: 0.3,
            recovery_rate: 0.4,
            seed: 9,
            ..NetFaults::default()
        }
    }

    fn env(src: NodeId, dst: NodeId, seq: u32, time: f64) -> Envelope {
        Envelope {
            src,
            dst,
            seq,
            time,
            payload: Payload::Rumor,
        }
    }

    #[test]
    fn liveness_is_group_range_invariant() {
        // The same node advanced by two differently-cut groups (and in
        // different window step patterns) lands in the same state.
        let f = faulty();
        let mut whole = Liveness::new(&f, 77, 0..32);
        let mut part = Liveness::new(&f, 77, 16..32);
        for t in [0.4, 1.7, 2.0, 5.9, 6.1, 40.0] {
            for v in 16u32..32 {
                let a = whole.advance(v as usize, t);
                let b = part.advance((v - 16) as usize, t);
                assert_eq!(a, b, "node {v} at t={t}");
            }
        }
        // And lazy staggered advances agree with eager ones.
        let mut eager = Liveness::new(&f, 77, 0..4);
        let mut lazy = Liveness::new(&f, 77, 0..4);
        for w in 0..50 {
            eager.advance(0, w as f64);
        }
        lazy.advance(0, 49.0);
        assert_eq!(eager.is_up(0), lazy.is_up(0));
    }

    #[test]
    fn liveness_rates_behave() {
        // Crash-only: monotone down, and a decent fraction crashed.
        let f = NetFaults {
            crash_rate: 0.2,
            ..NetFaults::default()
        };
        let n = 256;
        let mut l = Liveness::new(&f, 5, 0..n);
        let mut prev_up = n as usize;
        for w in 0..10 {
            let up = (0..n as usize)
                .filter(|&li| l.advance(li, w as f64))
                .count();
            assert!(up <= prev_up, "no recovery ⇒ up-set shrinks");
            prev_up = up;
        }
        // E[up after 10 windows] = n·e^{-2} ≈ 34.6; allow wide slack.
        assert!(prev_up < n as usize / 2 && prev_up > 0, "{prev_up}");
        // With recovery, nodes come back somewhere.
        let f = faulty();
        let mut l = Liveness::new(&f, 5, 0..64);
        let mut recovered = false;
        let mut down_seen = [false; 64];
        for w in 0..60 {
            for (li, seen) in down_seen.iter_mut().enumerate() {
                let up = l.advance(li, w as f64);
                if !up {
                    *seen = true;
                } else if *seen {
                    recovered = true;
                }
            }
        }
        assert!(recovered, "recovery coins must revive some node");
    }

    #[test]
    fn schedule_applies_at_its_window_even_across_jumps() {
        let f = NetFaults {
            schedule: vec![(3, 2), (7, 2)],
            recovery_rate: 0.0,
            ..NetFaults::default()
        };
        let mut l = Liveness::new(&f, 1, 0..4);
        assert!(l.advance(2, 2.9), "before the scheduled window");
        assert!(!l.advance(2, 3.0), "crashes at window 3");
        // A fresh tracker jumping straight past both entries is down too.
        let mut jump = Liveness::new(&f, 1, 0..4);
        assert!(!jump.advance(2, 50.0));
        // Scheduled crash + recovery: the node can come back later.
        let f = NetFaults {
            schedule: vec![(0, 1)],
            recovery_rate: 5.0,
            crash_rate: 1e-9,
            ..NetFaults::default()
        };
        let mut l = Liveness::new(&f, 1, 0..4);
        assert!(!l.advance(1, 0.5));
        let mut back = false;
        for w in 1..30 {
            back |= l.advance(1, w as f64);
        }
        assert!(back, "recovery must eventually revive a scheduled crash");
    }

    #[test]
    fn chaos_gate_is_deterministic_and_sender_receiver_agree() {
        let f = NetFaults {
            partition_rate: 0.5,
            delay: 0.4,
            delay_epochs: 3,
            duplicate: 0.3,
            seed: 11,
            ..NetFaults::default()
        };
        let a = ChaosGate::new(&f, 42, 1e-3);
        let b = ChaosGate::new(&f, 42, 1e-3);
        let mut blocked = 0;
        let mut delayed = 0;
        let mut duplicated = 0;
        for i in 0..2_000u32 {
            let e = env(i % 64, (i + 1) % 64, i, (i as f64) * 0.37);
            assert_eq!(a.blocks(&e), b.blocks(&e));
            assert_eq!(a.arrival(&e).to_bits(), b.arrival(&e).to_bits());
            assert_eq!(a.duplicates(&e), b.duplicates(&e));
            blocked += u32::from(a.blocks(&e));
            duplicated += u32::from(a.duplicates(&e));
            let arr = a.arrival(&e);
            assert!(arr >= e.time + 1e-3 - 1e-15);
            assert!(arr <= e.time + 4.0 * 1e-3 + 1e-15, "≤ 1 + delay_epochs");
            delayed += u32::from(arr > e.time + 1e-3 + 1e-15);
        }
        assert!(blocked > 0, "partitions must block something");
        assert!((500..1_200).contains(&delayed), "{delayed}");
        assert!((350..900).contains(&duplicated), "{duplicated}");
        // Different trial seeds decorrelate the verdicts.
        let c = ChaosGate::new(&f, 43, 1e-3);
        let divergent = (0..500u32)
            .map(|i| env(i % 64, (i + 1) % 64, i, i as f64 * 0.37))
            .any(|e| a.duplicates(&e) != c.duplicates(&e) || a.blocks(&e) != c.blocks(&e));
        assert!(divergent);
    }

    #[test]
    fn inactive_chaos_is_invisible() {
        let gate = ChaosGate::new(&NetFaults::default(), 7, 1e-3);
        for i in 0..100u32 {
            let e = env(i, i + 1, i, i as f64);
            assert!(!gate.blocks(&e));
            assert!(!gate.duplicates(&e));
            assert_eq!(gate.arrival(&e).to_bits(), (e.time + 1e-3).to_bits());
        }
    }

    #[test]
    fn spec_compilation_and_validation() {
        let mut spec = FaultSpec::new();
        spec.crash_rate = Some(0.1);
        spec.partition_rate = Some(0.2);
        spec.delay = Some(0.3);
        spec.seed = Some(4);
        let f = NetFaults::from_spec(&spec);
        assert_eq!(f.crash_rate, 0.1);
        assert_eq!(f.partition_rate, 0.2);
        assert_eq!(f.delay_epochs, 1, "default max delay is one epoch");
        assert!(f.crash_active() && f.can_die() && f.chaos_active());
        f.validate().unwrap();
        let bad = NetFaults {
            delay: 1.5,
            ..NetFaults::default()
        };
        assert!(bad.validate().is_err());
        let bad = NetFaults {
            partition_rate: -1.0,
            ..NetFaults::default()
        };
        assert!(bad.validate().is_err());
        let recovering = NetFaults {
            crash_rate: 0.1,
            recovery_rate: 0.1,
            ..NetFaults::default()
        };
        assert!(!recovering.can_die(), "recovery makes death non-final");
    }

    #[test]
    fn rumor_carriers_are_classified() {
        let mk = |payload| Envelope {
            src: 0,
            dst: 1,
            seq: 0,
            time: 0.0,
            payload,
        };
        assert!(carries_rumor(&mk(Payload::Contact { informed: true })));
        assert!(carries_rumor(&mk(Payload::Rumor)));
        assert!(!carries_rumor(&mk(Payload::Contact { informed: false })));
    }
}
