//! Datagram transport: one UDP socket per node group.
//!
//! Each epoch exchange sends every peer group one or more
//! length-prefixed datagrams — a fixed header carrying the epoch round,
//! fragment bookkeeping, and the sender's piggybacked reductions
//! (next-event candidate, informed count), followed by `count` fixed-width
//! [`Envelope`] records — then blocks until all fragments from every
//! peer for the same round are in. The collective therefore doubles as
//! the epoch barrier; no shared memory is needed, which is what makes
//! the same runtime span multiple processes.
//!
//! The transport is loopback-tested in-process ([`UdpDelivery::fabric`]
//! binds every group's socket on `127.0.0.1`); true multi-process
//! clusters construct endpoints with [`UdpDelivery::bound`] from a
//! shared peer list. Results are bit-identical to [`LocalDelivery`] at
//! the same group count (test-enforced): inbound batches are re-sorted
//! by [`Envelope::order_key`] before processing, so datagram arrival
//! order never matters.
//!
//! [`LocalDelivery`]: crate::LocalDelivery

use crate::delivery::{Delivery, EpochFlush, EpochUpdate, Router};
use crate::envelope::{Envelope, WIRE_BYTES};
use crate::error::NetError;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

const MAGIC: u32 = 0x474E_4554; // "GNET"
const VERSION: u8 = 1;
/// magic(4) + version(1) + src(2) + frag(2) + frags(2) + count(2)
/// + round(8) + candidate(8) + informed(8)
const HEADER_BYTES: usize = 37;
/// Envelopes per datagram: keeps every datagram comfortably under the
/// 64 KiB UDP payload ceiling (2048 × 21 B + header ≈ 42 KiB).
const MAX_PER_DATAGRAM: usize = 2048;
/// How long one exchange waits for a missing peer fragment before the
/// trial fails loudly instead of hanging.
const EXCHANGE_TIMEOUT: Duration = Duration::from_secs(10);

struct Header {
    src: u16,
    frag: u16,
    frags: u16,
    count: u16,
    round: u64,
    candidate: f64,
    informed: u64,
}

fn encode_header(buf: &mut Vec<u8>, h: &Header) {
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(VERSION);
    buf.extend_from_slice(&h.src.to_le_bytes());
    buf.extend_from_slice(&h.frag.to_le_bytes());
    buf.extend_from_slice(&h.frags.to_le_bytes());
    buf.extend_from_slice(&h.count.to_le_bytes());
    buf.extend_from_slice(&h.round.to_le_bytes());
    buf.extend_from_slice(&h.candidate.to_bits().to_le_bytes());
    buf.extend_from_slice(&h.informed.to_le_bytes());
}

fn decode_header(buf: &[u8]) -> Option<Header> {
    if buf.len() < HEADER_BYTES
        || u32::from_le_bytes(buf[0..4].try_into().ok()?) != MAGIC
        || buf[4] != VERSION
    {
        return None;
    }
    let u16_at = |o: usize| u16::from_le_bytes(buf[o..o + 2].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
    Some(Header {
        src: u16_at(5),
        frag: u16_at(7),
        frags: u16_at(9),
        count: u16_at(11),
        round: u64_at(13),
        candidate: f64::from_bits(u64_at(21)),
        informed: u64_at(29),
    })
}

/// A datagram parsed ahead of its round, parked until the exchange
/// catches up (loopback reordering is rare but legal).
struct Stashed {
    header: Header,
    envelopes: Vec<Envelope>,
}

/// One group's datagram endpoint. See the [module docs](self).
pub struct UdpDelivery {
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    me: usize,
    router: Router,
    round: u64,
    scratch: Vec<Vec<Envelope>>,
    stash: Vec<Stashed>,
    recv_buf: Vec<u8>,
    send_buf: Vec<u8>,
}

impl UdpDelivery {
    /// Binds one loopback socket per group of `router` and returns the
    /// fully meshed endpoint set — the in-process (loopback-test) form
    /// of the transport.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when a socket cannot be bound or configured.
    pub fn fabric(router: Router) -> Result<Vec<UdpDelivery>, NetError> {
        let g = router.groups();
        let sockets: Vec<UdpSocket> = (0..g)
            .map(|_| UdpSocket::bind(("127.0.0.1", 0)))
            .collect::<std::io::Result<_>>()?;
        let peers: Vec<SocketAddr> = sockets
            .iter()
            .map(|s| s.local_addr())
            .collect::<std::io::Result<_>>()?;
        sockets
            .into_iter()
            .enumerate()
            .map(|(me, socket)| UdpDelivery::bound(socket, peers.clone(), me, router))
            .collect()
    }

    /// Wraps an already-bound socket as group `me`'s endpoint; `peers`
    /// lists every group's address in group order (`peers[me]` is this
    /// socket's own address). This is the multi-process construction:
    /// each process binds its socket, the peer list is distributed out
    /// of band, and every process runs the same trial with its own
    /// group index.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the receive timeout cannot be set or the
    /// peer list does not match the router's group count.
    pub fn bound(
        socket: UdpSocket,
        peers: Vec<SocketAddr>,
        me: usize,
        router: Router,
    ) -> Result<UdpDelivery, NetError> {
        let g = router.groups();
        if peers.len() != g || me >= g {
            return Err(NetError::Io(format!(
                "udp peer list has {} entries for {} groups (endpoint {me})",
                peers.len(),
                g
            )));
        }
        socket.set_read_timeout(Some(EXCHANGE_TIMEOUT))?;
        Ok(UdpDelivery {
            socket,
            peers,
            me,
            router,
            round: 0,
            scratch: (0..g).map(|_| Vec::new()).collect(),
            stash: Vec::new(),
            recv_buf: vec![0u8; 65_536],
            send_buf: Vec::with_capacity(HEADER_BYTES + MAX_PER_DATAGRAM * WIRE_BYTES),
        })
    }

    fn send_to_peer(&mut self, dest: usize, flush: &EpochFlush) -> Result<(), NetError> {
        let envs = std::mem::take(&mut self.scratch[dest]);
        let frags = envs.len().div_ceil(MAX_PER_DATAGRAM).max(1) as u16;
        for (frag, chunk) in envs
            .chunks(MAX_PER_DATAGRAM)
            .chain(std::iter::once([].as_slice()).filter(|_| envs.is_empty()))
            .enumerate()
        {
            self.send_buf.clear();
            encode_header(
                &mut self.send_buf,
                &Header {
                    src: self.me as u16,
                    frag: frag as u16,
                    frags,
                    count: chunk.len() as u16,
                    round: self.round,
                    candidate: flush.next_candidate,
                    informed: flush.informed,
                },
            );
            for env in chunk {
                env.encode_into(&mut self.send_buf);
            }
            self.socket.send_to(&self.send_buf, self.peers[dest])?;
        }
        Ok(())
    }
}

fn decode_body(header: &Header, body: &[u8]) -> Result<Vec<Envelope>, NetError> {
    let count = header.count as usize;
    if body.len() < count * WIRE_BYTES {
        return Err(NetError::Io(format!(
            "short datagram: {} bytes for {count} envelopes",
            body.len()
        )));
    }
    (0..count)
        .map(|i| {
            Envelope::decode(&body[i * WIRE_BYTES..])
                .ok_or_else(|| NetError::Io("malformed envelope record".into()))
        })
        .collect()
}

/// Per-peer collection state for one exchange round.
struct RoundState {
    /// Announced fragment totals (None until a peer's first fragment).
    expected: Vec<Option<u16>>,
    received: Vec<u16>,
    informed: Vec<u64>,
    next_time: f64,
}

impl RoundState {
    fn new(g: usize, me: usize, flush: &EpochFlush) -> RoundState {
        let mut expected = vec![None; g];
        expected[me] = Some(0);
        let mut informed = vec![0u64; g];
        informed[me] = flush.informed;
        RoundState {
            expected,
            received: vec![0; g],
            informed,
            next_time: flush.next_candidate,
        }
    }

    fn absorb(&mut self, header: &Header, envelopes: Vec<Envelope>, inbound: &mut Vec<Envelope>) {
        let s = header.src as usize;
        match self.expected[s] {
            None => self.expected[s] = Some(header.frags),
            // All fragments of one round announce the same total; a
            // mismatch is a stale datagram that slipped the round check.
            Some(t) if t != header.frags => return,
            Some(_) => {}
        }
        self.received[s] += 1;
        self.informed[s] = header.informed;
        self.next_time = self.next_time.min(header.candidate);
        inbound.extend(envelopes);
    }

    fn done(&self) -> bool {
        self.expected
            .iter()
            .zip(&self.received)
            .all(|(e, r)| *e == Some(*r) || *e == Some(0) && *r == 0)
    }
}

impl Delivery for UdpDelivery {
    fn exchange(&mut self, flush: EpochFlush) -> Result<EpochUpdate, NetError> {
        let g = self.router.groups();
        for env in &flush.outbound {
            self.scratch[self.router.group_of(env.dst)].push(*env);
        }
        // Self-destined envelopes never touch the socket.
        let mut inbound = std::mem::take(&mut self.scratch[self.me]);
        for dest in 0..g {
            if dest != self.me {
                self.send_to_peer(dest, &flush)?;
            }
        }
        let mut state = RoundState::new(g, self.me, &flush);
        // Consume anything stashed by an earlier round's over-eager read.
        for st in std::mem::take(&mut self.stash) {
            if st.header.round == self.round {
                state.absorb(&st.header, st.envelopes, &mut inbound);
            } else if st.header.round > self.round {
                self.stash.push(st);
            }
        }
        while !state.done() {
            let len = match self.socket.recv_from(&mut self.recv_buf) {
                Ok((len, _)) => len,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(NetError::Io(format!(
                        "udp exchange timed out waiting for peers at round {} (group {})",
                        self.round, self.me
                    )));
                }
                Err(e) => return Err(NetError::Io(e.to_string())),
            };
            let Some(header) = decode_header(&self.recv_buf[..len]) else {
                continue; // not ours; ignore
            };
            if header.src as usize >= g || header.src as usize == self.me {
                continue;
            }
            let envelopes = decode_body(&header, &self.recv_buf[HEADER_BYTES..len])?;
            if header.round < self.round {
                continue; // stale duplicate
            }
            if header.round > self.round {
                self.stash.push(Stashed { header, envelopes });
                continue;
            }
            state.absorb(&header, envelopes, &mut inbound);
        }
        let informed_total = state.informed.iter().sum();
        self.round += 1;
        Ok(EpochUpdate {
            inbound,
            next_time: state.next_time,
            informed_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Payload;

    #[test]
    fn header_round_trip() {
        let mut buf = Vec::new();
        let h = Header {
            src: 3,
            frag: 1,
            frags: 2,
            count: 17,
            round: 99,
            candidate: 1.25,
            informed: 123_456,
        };
        encode_header(&mut buf, &h);
        assert_eq!(buf.len(), HEADER_BYTES);
        let back = decode_header(&buf).unwrap();
        assert_eq!(
            (back.src, back.frag, back.frags, back.count, back.round),
            (3, 1, 2, 17, 99)
        );
        assert!((back.candidate - 1.25).abs() < 1e-12);
        assert_eq!(back.informed, 123_456);
    }

    #[test]
    fn loopback_exchange_round_trip() {
        let router = Router::new(8, 2);
        let mut eps = UdpDelivery::fabric(router).unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let mk = |src, dst, seq| Envelope {
            src,
            dst,
            seq,
            time: 0.25,
            payload: Payload::Contact { informed: true },
        };
        let ha = std::thread::spawn(move || {
            let mut a = a;
            a.exchange(EpochFlush {
                outbound: vec![mk(0, 7, 0), mk(1, 3, 0)],
                next_candidate: 0.5,
                informed: 2,
            })
            .unwrap()
        });
        let hb = std::thread::spawn(move || {
            let mut b = b;
            b.exchange(EpochFlush {
                outbound: vec![mk(5, 0, 0)],
                next_candidate: 0.75,
                informed: 1,
            })
            .unwrap()
        });
        let ua = ha.join().unwrap();
        let ub = hb.join().unwrap();
        assert_eq!(ua.inbound.len(), 2); // own 1→3 plus b's 5→0
        assert_eq!(ub.inbound.len(), 1); // a's 0→7
        for u in [&ua, &ub] {
            assert!((u.next_time - 0.5).abs() < 1e-12);
            assert_eq!(u.informed_total, 3);
        }
    }
}
