//! Datagram transport: one UDP socket per node group.
//!
//! Each epoch exchange sends every peer group one or more
//! length-prefixed datagrams — a fixed header carrying the epoch round,
//! fragment bookkeeping, and the sender's piggybacked reductions
//! (next-event candidate, informed count, liveness counters), followed
//! by `count` fixed-width [`Envelope`] records — then blocks until all
//! fragments from every peer for the same round are in. The collective
//! therefore doubles as the epoch barrier; no shared memory is needed,
//! which is what makes the same runtime span multiple processes.
//!
//! # Loss recovery
//!
//! UDP datagrams can vanish. Instead of a single long hang-then-die
//! timeout, an endpoint that has waited [`exchange_timeout`] without
//! completing its round sends each still-missing peer a `NACK` datagram
//! naming the round, doubles its wait, and retries — up to
//! [`exchange_retries`] times. Peers keep their last **two** rounds of
//! outbound datagrams cached (a peer can be at most one round behind,
//! because finishing round `r` requires everyone's round-`r` data), so a
//! NACK is answered by replaying the cached round to the requester;
//! fragment-level deduplication makes the replay idempotent. When the
//! retry budget is exhausted the exchange fails with the *structured,
//! retryable* [`NetError::Stalled`] — naming the observing group, the
//! stalled round, and the missing peers — which batch drivers use to
//! re-run the trial on a fresh fabric instead of aborting the sweep.
//!
//! The transport is loopback-tested in-process ([`UdpDelivery::fabric`]
//! binds every group's socket on `127.0.0.1`); true multi-process
//! clusters construct endpoints with [`UdpDelivery::bound`] from a
//! shared peer list. Results are bit-identical to [`LocalDelivery`] at
//! the same group count (test-enforced): inbound batches are re-sorted
//! by the runtime before processing, so datagram arrival order never
//! matters.
//!
//! [`exchange_timeout`]: crate::NetConfig::exchange_timeout
//! [`exchange_retries`]: crate::NetConfig::exchange_retries
//! [`LocalDelivery`]: crate::LocalDelivery

use crate::delivery::{Delivery, EpochFlush, EpochUpdate, Router};
use crate::envelope::{Envelope, WIRE_BYTES};
use crate::error::NetError;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

const MAGIC: u32 = 0x474E_4554; // "GNET"
const VERSION: u8 = 2;
/// magic(4) + version(1) + kind(1) + src(2) + frag(2) + frags(2)
/// + count(2) + round(8) + candidate(8) + informed(8)
/// + live_informed(8) + rumor_in_flight(8)
const HEADER_BYTES: usize = 54;
/// Envelopes per datagram: keeps every datagram comfortably under the
/// 64 KiB UDP payload ceiling (2048 × 21 B + header ≈ 42 KiB).
const MAX_PER_DATAGRAM: usize = 2048;

/// A regular epoch-data datagram.
const KIND_DATA: u8 = 0;
/// A retransmission request: "replay your datagrams for `round` to me".
const KIND_NACK: u8 = 1;

struct Header {
    kind: u8,
    src: u16,
    frag: u16,
    frags: u16,
    count: u16,
    round: u64,
    candidate: f64,
    informed: u64,
    live_informed: u64,
    rumor_in_flight: u64,
}

fn encode_header(buf: &mut Vec<u8>, h: &Header) {
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(VERSION);
    buf.push(h.kind);
    buf.extend_from_slice(&h.src.to_le_bytes());
    buf.extend_from_slice(&h.frag.to_le_bytes());
    buf.extend_from_slice(&h.frags.to_le_bytes());
    buf.extend_from_slice(&h.count.to_le_bytes());
    buf.extend_from_slice(&h.round.to_le_bytes());
    buf.extend_from_slice(&h.candidate.to_bits().to_le_bytes());
    buf.extend_from_slice(&h.informed.to_le_bytes());
    buf.extend_from_slice(&h.live_informed.to_le_bytes());
    buf.extend_from_slice(&h.rumor_in_flight.to_le_bytes());
}

fn decode_header(buf: &[u8]) -> Option<Header> {
    if buf.len() < HEADER_BYTES
        || u32::from_le_bytes(buf[0..4].try_into().ok()?) != MAGIC
        || buf[4] != VERSION
    {
        return None;
    }
    let u16_at = |o: usize| u16::from_le_bytes(buf[o..o + 2].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
    Some(Header {
        kind: buf[5],
        src: u16_at(6),
        frag: u16_at(8),
        frags: u16_at(10),
        count: u16_at(12),
        round: u64_at(14),
        candidate: f64::from_bits(u64_at(22)),
        informed: u64_at(30),
        live_informed: u64_at(38),
        rumor_in_flight: u64_at(46),
    })
}

/// A datagram parsed ahead of its round, parked until the exchange
/// catches up (loopback reordering is rare but legal).
struct Stashed {
    header: Header,
    envelopes: Vec<Envelope>,
}

/// One finished round's outbound data, kept for NACK-driven replay.
struct SentRound {
    round: u64,
    /// Envelopes routed per destination group (`per_dest[me]` is empty —
    /// self-delivery never touches the socket).
    per_dest: Vec<Vec<Envelope>>,
    candidate: f64,
    informed: u64,
    live_informed: u64,
    rumor_in_flight: u64,
}

/// One group's datagram endpoint. See the [module docs](self).
pub struct UdpDelivery {
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    me: usize,
    router: Router,
    round: u64,
    /// Base wait before the first NACK volley; doubles per retry.
    timeout: Duration,
    /// NACK volleys after the first timeout before declaring a stall.
    retries: u32,
    /// The read timeout currently programmed on the socket (avoids a
    /// setsockopt per exchange).
    armed_timeout: Duration,
    scratch: Vec<Vec<Envelope>>,
    /// The last two rounds' outbound data, indexed by `round % 2` — the
    /// replay window for incoming NACKs.
    sent: [Option<SentRound>; 2],
    stash: Vec<Stashed>,
    recv_buf: Vec<u8>,
    send_buf: Vec<u8>,
    /// Test hook: silently swallow the next N outbound DATA datagrams to
    /// exercise the NACK path.
    #[cfg(test)]
    lose_sends: std::cell::Cell<u32>,
}

impl UdpDelivery {
    /// Binds one loopback socket per group of `router` and returns the
    /// fully meshed endpoint set — the in-process (loopback-test) form
    /// of the transport. `exchange_timeout` (seconds) is the wait before
    /// the first retransmission request; `exchange_retries` bounds the
    /// NACK volleys before a [`NetError::Stalled`].
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when a socket cannot be bound or configured.
    pub fn fabric(
        router: Router,
        exchange_timeout: f64,
        exchange_retries: u32,
    ) -> Result<Vec<UdpDelivery>, NetError> {
        let g = router.groups();
        let sockets: Vec<UdpSocket> = (0..g)
            .map(|_| UdpSocket::bind(("127.0.0.1", 0)))
            .collect::<std::io::Result<_>>()?;
        let peers: Vec<SocketAddr> = sockets
            .iter()
            .map(|s| s.local_addr())
            .collect::<std::io::Result<_>>()?;
        sockets
            .into_iter()
            .enumerate()
            .map(|(me, socket)| {
                UdpDelivery::bound(
                    socket,
                    peers.clone(),
                    me,
                    router,
                    exchange_timeout,
                    exchange_retries,
                )
            })
            .collect()
    }

    /// Wraps an already-bound socket as group `me`'s endpoint; `peers`
    /// lists every group's address in group order (`peers[me]` is this
    /// socket's own address). This is the multi-process construction:
    /// each process binds its socket, the peer list is distributed out
    /// of band, and every process runs the same trial with its own
    /// group index.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the receive timeout cannot be set or the
    /// peer list does not match the router's group count;
    /// [`NetError::Invalid`] for a non-positive timeout.
    pub fn bound(
        socket: UdpSocket,
        peers: Vec<SocketAddr>,
        me: usize,
        router: Router,
        exchange_timeout: f64,
        exchange_retries: u32,
    ) -> Result<UdpDelivery, NetError> {
        let g = router.groups();
        if peers.len() != g || me >= g {
            return Err(NetError::Io(format!(
                "udp peer list has {} entries for {} groups (endpoint {me})",
                peers.len(),
                g
            )));
        }
        if !(exchange_timeout.is_finite() && exchange_timeout > 0.0) {
            return Err(NetError::Invalid(format!(
                "exchange_timeout must be a positive finite duration, got {exchange_timeout}"
            )));
        }
        let timeout = Duration::from_secs_f64(exchange_timeout);
        socket.set_read_timeout(Some(timeout))?;
        Ok(UdpDelivery {
            socket,
            peers,
            me,
            router,
            round: 0,
            timeout,
            retries: exchange_retries,
            armed_timeout: timeout,
            scratch: (0..g).map(|_| Vec::new()).collect(),
            sent: [None, None],
            stash: Vec::new(),
            recv_buf: vec![0u8; 65_536],
            send_buf: Vec::with_capacity(HEADER_BYTES + MAX_PER_DATAGRAM * WIRE_BYTES),
            #[cfg(test)]
            lose_sends: std::cell::Cell::new(0),
        })
    }

    fn arm_timeout(&mut self, wait: Duration) -> Result<(), NetError> {
        if wait != self.armed_timeout {
            self.socket.set_read_timeout(Some(wait))?;
            self.armed_timeout = wait;
        }
        Ok(())
    }

    fn send_datagram(&self, dest: usize) -> Result<(), NetError> {
        #[cfg(test)]
        {
            let left = self.lose_sends.get();
            if left > 0 {
                self.lose_sends.set(left - 1);
                return Ok(());
            }
        }
        self.socket.send_to(&self.send_buf, self.peers[dest])?;
        Ok(())
    }

    /// (Re)transmits every fragment of the cached round in `sent[slot]`
    /// to `dest`. An empty round still sends one zero-count fragment —
    /// the peer needs the piggybacked reductions either way.
    fn transmit(&mut self, dest: usize, slot: usize) -> Result<(), NetError> {
        let cached = self.sent[slot].as_ref().expect("transmit of cached round");
        let (round, candidate, informed, live_informed, rumor_in_flight) = (
            cached.round,
            cached.candidate,
            cached.informed,
            cached.live_informed,
            cached.rumor_in_flight,
        );
        let len = cached.per_dest[dest].len();
        let frags = len.div_ceil(MAX_PER_DATAGRAM).max(1) as u16;
        for frag in 0..frags as usize {
            let start = frag * MAX_PER_DATAGRAM;
            let end = (start + MAX_PER_DATAGRAM).min(len);
            self.send_buf.clear();
            encode_header(
                &mut self.send_buf,
                &Header {
                    kind: KIND_DATA,
                    src: self.me as u16,
                    frag: frag as u16,
                    frags,
                    count: (end - start) as u16,
                    round,
                    candidate,
                    informed,
                    live_informed,
                    rumor_in_flight,
                },
            );
            let cached = self.sent[slot].as_ref().expect("cached round");
            for env in &cached.per_dest[dest][start..end] {
                env.encode_into(&mut self.send_buf);
            }
            self.send_datagram(dest)?;
        }
        Ok(())
    }

    /// Asks `dest` to replay its datagrams for the current round.
    fn send_nack(&mut self, dest: usize) -> Result<(), NetError> {
        self.send_buf.clear();
        encode_header(
            &mut self.send_buf,
            &Header {
                kind: KIND_NACK,
                src: self.me as u16,
                frag: 0,
                frags: 0,
                count: 0,
                round: self.round,
                candidate: f64::INFINITY,
                informed: 0,
                live_informed: 0,
                rumor_in_flight: 0,
            },
        );
        self.socket.send_to(&self.send_buf, self.peers[dest])?;
        Ok(())
    }

    /// Serves an incoming NACK: replays the requested round to the
    /// requester if it is still in the two-round cache window. Requests
    /// for rounds not yet sent are ignored (the regular send will cover
    /// them; the peer re-NACKs if that is lost too).
    fn serve_nack(&mut self, requester: usize, round: u64) -> Result<(), NetError> {
        for slot in 0..2 {
            if self.sent[slot].as_ref().is_some_and(|s| s.round == round) {
                self.transmit(requester, slot)?;
            }
        }
        Ok(())
    }
}

fn decode_body(header: &Header, body: &[u8]) -> Result<Vec<Envelope>, NetError> {
    let count = header.count as usize;
    if body.len() < count * WIRE_BYTES {
        return Err(NetError::Io(format!(
            "short datagram: {} bytes for {count} envelopes",
            body.len()
        )));
    }
    (0..count)
        .map(|i| {
            Envelope::decode(&body[i * WIRE_BYTES..])
                .ok_or_else(|| NetError::Io("malformed envelope record".into()))
        })
        .collect()
}

/// Per-peer collection state for one exchange round.
struct RoundState {
    /// Per-peer fragment bitmap: `None` until the peer's first fragment
    /// announces its total (self starts complete with zero fragments).
    got: Vec<Option<Vec<bool>>>,
    informed: Vec<u64>,
    live_informed: Vec<u64>,
    rumor_in_flight: Vec<u64>,
    next_time: f64,
}

impl RoundState {
    fn new(g: usize, me: usize, flush: &EpochFlush) -> RoundState {
        let mut got = (0..g).map(|_| None).collect::<Vec<_>>();
        got[me] = Some(Vec::new());
        let mut informed = vec![0u64; g];
        informed[me] = flush.informed;
        let mut live_informed = vec![0u64; g];
        live_informed[me] = flush.live_informed;
        let mut rumor_in_flight = vec![0u64; g];
        rumor_in_flight[me] = flush.rumor_in_flight;
        RoundState {
            got,
            informed,
            live_informed,
            rumor_in_flight,
            next_time: flush.next_candidate,
        }
    }

    /// Folds one DATA fragment in; duplicate fragments (NACK replays,
    /// datagram duplication) are ignored, making retransmission
    /// idempotent.
    fn absorb(&mut self, header: &Header, envelopes: Vec<Envelope>, inbound: &mut Vec<Envelope>) {
        let s = header.src as usize;
        let frags = (header.frags as usize).max(1);
        let bitmap = self.got[s].get_or_insert_with(|| vec![false; frags]);
        // All fragments of one round announce the same total; a mismatch
        // is a stale datagram that slipped the round check.
        if bitmap.len() != frags {
            return;
        }
        let f = header.frag as usize;
        if f >= frags || bitmap[f] {
            return;
        }
        bitmap[f] = true;
        self.informed[s] = header.informed;
        self.live_informed[s] = header.live_informed;
        self.rumor_in_flight[s] = header.rumor_in_flight;
        self.next_time = self.next_time.min(header.candidate);
        inbound.extend(envelopes);
    }

    fn done(&self) -> bool {
        self.got
            .iter()
            .all(|g| g.as_ref().is_some_and(|b| b.iter().all(|&x| x)))
    }

    /// The peers whose rounds are still incomplete.
    fn missing(&self) -> Vec<usize> {
        self.got
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.as_ref().is_some_and(|b| b.iter().all(|&x| x)))
            .map(|(i, _)| i)
            .collect()
    }
}

impl Delivery for UdpDelivery {
    fn exchange(&mut self, flush: EpochFlush) -> Result<EpochUpdate, NetError> {
        let g = self.router.groups();
        for env in &flush.outbound {
            self.scratch[self.router.group_of(env.dst)].push(*env);
        }
        // Self-destined envelopes never touch the socket.
        let mut inbound = std::mem::take(&mut self.scratch[self.me]);
        let slot = (self.round % 2) as usize;
        self.sent[slot] = Some(SentRound {
            round: self.round,
            per_dest: self.scratch.iter_mut().map(std::mem::take).collect(),
            candidate: flush.next_candidate,
            informed: flush.informed,
            live_informed: flush.live_informed,
            rumor_in_flight: flush.rumor_in_flight,
        });
        for dest in 0..g {
            if dest != self.me {
                self.transmit(dest, slot)?;
            }
        }
        let mut state = RoundState::new(g, self.me, &flush);
        // Consume anything stashed by an earlier round's over-eager read.
        for st in std::mem::take(&mut self.stash) {
            if st.header.round == self.round {
                state.absorb(&st.header, st.envelopes, &mut inbound);
            } else if st.header.round > self.round {
                self.stash.push(st);
            }
        }
        let mut retries_left = self.retries;
        let mut wait = self.timeout;
        self.arm_timeout(wait)?;
        while !state.done() {
            let len = match self.socket.recv_from(&mut self.recv_buf) {
                Ok((len, _)) => len,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    let missing = state.missing();
                    if retries_left == 0 {
                        return Err(NetError::Stalled {
                            group: self.me,
                            round: self.round,
                            missing,
                        });
                    }
                    retries_left -= 1;
                    eprintln!(
                        "gossip-net: group {} round {}: exchange timed out waiting for \
                         group(s) {:?}; requesting retransmission ({} retr{} left)",
                        self.me,
                        self.round,
                        missing,
                        retries_left,
                        if retries_left == 1 { "y" } else { "ies" },
                    );
                    for p in missing {
                        self.send_nack(p)?;
                    }
                    wait = wait.saturating_mul(2);
                    self.arm_timeout(wait)?;
                    continue;
                }
                Err(e) => return Err(NetError::Io(e.to_string())),
            };
            let Some(header) = decode_header(&self.recv_buf[..len]) else {
                continue; // not ours; ignore
            };
            if header.src as usize >= g || header.src as usize == self.me {
                continue;
            }
            if header.kind == KIND_NACK {
                // A peer missed our datagrams for `header.round`; replay
                // from the cache if the round is still in the window.
                self.serve_nack(header.src as usize, header.round)?;
                continue;
            }
            if header.kind != KIND_DATA {
                continue; // unknown kind from a future version; ignore
            }
            let envelopes = decode_body(&header, &self.recv_buf[HEADER_BYTES..len])?;
            if header.round < self.round {
                continue; // stale duplicate
            }
            if header.round > self.round {
                self.stash.push(Stashed { header, envelopes });
                continue;
            }
            state.absorb(&header, envelopes, &mut inbound);
        }
        let informed_total = state.informed.iter().sum();
        let live_informed_total = state.live_informed.iter().sum();
        let rumor_in_flight_total = state.rumor_in_flight.iter().sum();
        self.round += 1;
        Ok(EpochUpdate {
            inbound,
            next_time: state.next_time,
            informed_total,
            live_informed_total,
            rumor_in_flight_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Payload;

    fn flush(outbound: Vec<Envelope>, next_candidate: f64, informed: u64) -> EpochFlush {
        EpochFlush {
            outbound,
            next_candidate,
            informed,
            live_informed: informed,
            rumor_in_flight: 0,
        }
    }

    fn mk(src: u32, dst: u32, seq: u32) -> Envelope {
        Envelope {
            src,
            dst,
            seq,
            time: 0.25,
            payload: Payload::Contact { informed: true },
        }
    }

    #[test]
    fn header_round_trip() {
        let mut buf = Vec::new();
        let h = Header {
            kind: KIND_DATA,
            src: 3,
            frag: 1,
            frags: 2,
            count: 17,
            round: 99,
            candidate: 1.25,
            informed: 123_456,
            live_informed: 120_000,
            rumor_in_flight: 42,
        };
        encode_header(&mut buf, &h);
        assert_eq!(buf.len(), HEADER_BYTES);
        let back = decode_header(&buf).unwrap();
        assert_eq!(
            (back.kind, back.src, back.frag, back.frags, back.count, back.round),
            (KIND_DATA, 3, 1, 2, 17, 99)
        );
        assert!((back.candidate - 1.25).abs() < 1e-12);
        assert_eq!(back.informed, 123_456);
        assert_eq!(back.live_informed, 120_000);
        assert_eq!(back.rumor_in_flight, 42);
    }

    #[test]
    fn loopback_exchange_round_trip() {
        let router = Router::new(8, 2);
        let mut eps = UdpDelivery::fabric(router, 5.0, 3).unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let ha = std::thread::spawn(move || {
            let mut a = a;
            a.exchange(flush(vec![mk(0, 7, 0), mk(1, 3, 0)], 0.5, 2))
                .unwrap()
        });
        let hb = std::thread::spawn(move || {
            let mut b = b;
            b.exchange(flush(vec![mk(5, 0, 0)], 0.75, 1)).unwrap()
        });
        let ua = ha.join().unwrap();
        let ub = hb.join().unwrap();
        assert_eq!(ua.inbound.len(), 2); // own 1→3 plus b's 5→0
        assert_eq!(ub.inbound.len(), 1); // a's 0→7
        for u in [&ua, &ub] {
            assert!((u.next_time - 0.5).abs() < 1e-12);
            assert_eq!(u.informed_total, 3);
            assert_eq!(u.live_informed_total, 3);
            assert_eq!(u.rumor_in_flight_total, 0);
        }
    }

    #[test]
    fn nack_replay_recovers_a_lost_datagram() {
        let router = Router::new(8, 2);
        let mut eps = UdpDelivery::fabric(router, 0.1, 5).unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let ha = std::thread::spawn(move || {
            let mut a = a;
            // Swallow a's first DATA datagram: b never sees round 0
            // until its NACK triggers a replay from a's cache (served
            // while a waits inside its round-1 exchange).
            a.lose_sends.set(1);
            let r0 = a.exchange(flush(vec![mk(0, 6, 0)], 0.5, 1)).unwrap();
            let r1 = a.exchange(flush(Vec::new(), 1.5, 1)).unwrap();
            (r0, r1)
        });
        let hb = std::thread::spawn(move || {
            let mut b = b;
            let r0 = b.exchange(flush(Vec::new(), 0.75, 0)).unwrap();
            let r1 = b.exchange(flush(Vec::new(), 1.75, 0)).unwrap();
            (r0, r1)
        });
        let (a0, _a1) = ha.join().unwrap();
        let (b0, b1) = hb.join().unwrap();
        assert_eq!(a0.inbound.len(), 0);
        assert_eq!(b0.inbound.len(), 1, "replayed envelope must arrive");
        assert_eq!(b0.inbound[0].dst, 6);
        assert!((b0.next_time - 0.5).abs() < 1e-12);
        assert_eq!(b1.inbound.len(), 0, "dedup: the replay is not re-delivered");
    }

    #[test]
    fn exhausted_retries_stall_with_structured_error() {
        let router = Router::new(8, 2);
        let mut eps = UdpDelivery::fabric(router, 0.05, 1).unwrap();
        let _b = eps.pop().unwrap(); // never participates
        let mut a = eps.pop().unwrap();
        let err = a.exchange(flush(Vec::new(), 0.5, 1)).unwrap_err();
        match &err {
            NetError::Stalled {
                group,
                round,
                missing,
            } => {
                assert_eq!((*group, *round), (0, 0));
                assert_eq!(missing, &vec![1]);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
        assert!(err.is_retryable());
        assert!(err.to_string().contains("round 0"));
    }
}
