//! The wire unit of the live runtime: one rumor-protocol message.
//!
//! Node groups never share memory — every interaction between two nodes
//! travels as an [`Envelope`], whether the two nodes sit in the same
//! group, in two groups of one process ([`crate::LocalDelivery`]), or in
//! two processes ([`crate::UdpDelivery`]). An envelope carries its
//! virtual *send* time; the runtime delivers it exactly one tick (the
//! configured message latency, [`crate::NetConfig::tick`]) later.

use gossip_graph::NodeId;

/// Rumor-protocol message body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// An activation contact: the sender's clock fired and it chose the
    /// receiver as its uniform neighbor. `informed` is the sender's
    /// rumor state at send time — `true` pushes the rumor, `false` asks
    /// to pull it.
    Contact {
        /// Whether the sender held the rumor when its clock fired.
        informed: bool,
    },
    /// The rumor itself, answering an uninformed contact (the pull
    /// response).
    Rumor,
}

/// One message between two nodes, routed by the [`crate::Delivery`]
/// layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Per-source sequence number (the `seq`-th envelope `src` sent this
    /// trial). Together with `src` it identifies the envelope globally:
    /// deterministic drop coins and arrival tie-breaks key off it.
    pub seq: u32,
    /// Virtual send time; the envelope arrives at `time + tick`.
    pub time: f64,
    /// Message body.
    pub payload: Payload,
}

/// Bytes of one envelope in the length-prefixed wire encoding.
pub const WIRE_BYTES: usize = 21;

const KIND_CONTACT_UNINFORMED: u8 = 0;
const KIND_CONTACT_INFORMED: u8 = 1;
const KIND_RUMOR: u8 = 2;

impl Envelope {
    /// Total order on envelopes arriving at one node group: arrival
    /// time first (send times are non-negative, so the IEEE bit pattern
    /// orders like the float), then `(src, seq)` as a deterministic
    /// tie-break. Sorting inbound batches by this key makes processing
    /// independent of which group — or which socket — delivered them.
    pub fn order_key(&self) -> (u64, u32, u32) {
        (self.time.to_bits(), self.src, self.seq)
    }

    /// Appends the 21-byte wire encoding to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let kind = match self.payload {
            Payload::Contact { informed: false } => KIND_CONTACT_UNINFORMED,
            Payload::Contact { informed: true } => KIND_CONTACT_INFORMED,
            Payload::Rumor => KIND_RUMOR,
        };
        buf.push(kind);
        buf.extend_from_slice(&self.src.to_le_bytes());
        buf.extend_from_slice(&self.dst.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.time.to_bits().to_le_bytes());
    }

    /// Decodes one envelope from the first [`WIRE_BYTES`] of `buf`;
    /// `None` when the buffer is short or the kind byte is unknown.
    pub fn decode(buf: &[u8]) -> Option<Envelope> {
        if buf.len() < WIRE_BYTES {
            return None;
        }
        let payload = match buf[0] {
            KIND_CONTACT_UNINFORMED => Payload::Contact { informed: false },
            KIND_CONTACT_INFORMED => Payload::Contact { informed: true },
            KIND_RUMOR => Payload::Rumor,
            _ => return None,
        };
        let u32_at =
            |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().expect("length checked"));
        Some(Envelope {
            src: u32_at(1),
            dst: u32_at(5),
            seq: u32_at(9),
            time: f64::from_bits(u64::from_le_bytes(
                buf[13..21].try_into().expect("length checked"),
            )),
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        for payload in [
            Payload::Contact { informed: false },
            Payload::Contact { informed: true },
            Payload::Rumor,
        ] {
            let env = Envelope {
                src: 7,
                dst: 123_456,
                seq: 42,
                time: 3.25,
                payload,
            };
            let mut buf = Vec::new();
            env.encode_into(&mut buf);
            assert_eq!(buf.len(), WIRE_BYTES);
            assert_eq!(Envelope::decode(&buf), Some(env));
        }
    }

    #[test]
    fn decode_rejects_short_and_unknown() {
        assert_eq!(Envelope::decode(&[0; 5]), None);
        let mut buf = vec![9u8];
        buf.extend_from_slice(&[0; 20]);
        assert_eq!(Envelope::decode(&buf), None);
    }

    #[test]
    fn order_key_sorts_by_time_then_identity() {
        let mk = |src, seq, time| Envelope {
            src,
            dst: 0,
            seq,
            time,
            payload: Payload::Rumor,
        };
        let mut v = [mk(2, 0, 1.5), mk(1, 3, 0.5), mk(1, 1, 0.5)];
        v.sort_by_key(Envelope::order_key);
        assert_eq!((v[0].src, v[0].seq), (1, 1));
        assert_eq!((v[1].src, v[1].seq), (1, 3));
        assert!((v[2].time - 1.5).abs() < 1e-12);
    }
}
