//! Trial batches over the live runtime, streaming into the scenario
//! stack's observer sinks.
//!
//! [`NetPlan`] mirrors `gossip_sim::RunPlan`: the same trial-seed
//! derivation (`base.derive(i)`), the same [`TrialRecord`] stream into
//! any [`TrialObserver`] (summary sinks, JSONL writers, trajectory
//! collectors), the same summary statistics. The difference is *how* a
//! trial runs — each one spins up the node-group threads of
//! [`crate::run_trial`] instead of stepping an event loop — so trials
//! execute sequentially while the groups inside each trial run in
//! parallel.

use crate::delivery::DeliveryKind;
use crate::error::NetError;
use crate::runtime::{run_trial, NetConfig, NetProtocol};
use gossip_graph::{NodeId, Topology};
use gossip_sim::{SummarySink, TrialError, TrialObserver, TrialRecord, TrialSummary};
use gossip_stats::SimRng;
use std::time::{Duration, Instant};

/// A batch of live trials with a fixed topology, protocol, and seed.
#[derive(Debug, Clone)]
pub struct NetPlan {
    trials: usize,
    seed: u64,
    config: NetConfig,
    delivery: DeliveryKind,
}

impl NetPlan {
    /// A plan of `trials` trials derived from `seed`, on the default
    /// [`NetConfig`] over [`DeliveryKind::Local`].
    pub fn new(trials: usize, seed: u64) -> NetPlan {
        NetPlan {
            trials,
            seed,
            config: NetConfig::default(),
            delivery: DeliveryKind::Local,
        }
    }

    /// Replaces the runtime configuration.
    pub fn config(mut self, config: NetConfig) -> NetPlan {
        self.config = config;
        self
    }

    /// Selects the transport.
    pub fn delivery(mut self, delivery: DeliveryKind) -> NetPlan {
        self.delivery = delivery;
        self
    }

    /// Runs the batch, keeping only the built-in summary.
    ///
    /// # Errors
    ///
    /// As [`NetPlan::execute_observed`].
    pub fn execute(
        &self,
        topo: &Topology,
        proto: NetProtocol,
        start: NodeId,
    ) -> Result<NetReport, NetError> {
        self.execute_observed(topo, proto, start, &mut [])
    }

    /// Runs the batch, streaming every [`TrialRecord`] through
    /// `observers` (in order) on top of the built-in summary, then
    /// calling each observer's `finish`.
    ///
    /// Trial `i` is seeded `derive(i)` off the plan seed — the same
    /// convention as `RunPlan`, so a live batch and an event-engine
    /// batch with equal seeds walk equal per-trial seed sequences.
    ///
    /// A trial whose exchange [stalls](NetError::Stalled) (a UDP peer
    /// stopped answering within the retry budget) is re-run once on a
    /// fresh fabric with the same seed — the run is deterministic, so
    /// only the transport luck changes. A second stall skips the trial:
    /// it is recorded in [`NetReport::stalled`], logged, and the batch
    /// continues rather than aborting the sweep.
    ///
    /// # Errors
    ///
    /// [`NetError::Invalid`] for a bad configuration, [`NetError::Io`]
    /// for structural transport failures, [`NetError::Sim`] when an
    /// observer rejects a record.
    pub fn execute_observed(
        &self,
        topo: &Topology,
        proto: NetProtocol,
        start: NodeId,
        observers: &mut [&mut dyn TrialObserver],
    ) -> Result<NetReport, NetError> {
        let want_traj = observers.iter().any(|o| o.wants_trajectory());
        let base = SimRng::seed_from_u64(self.seed);
        let mut sink = SummarySink::new();
        let mut events = 0u64;
        let mut messages = 0u64;
        let mut dropped = 0u64;
        let mut blocked = 0u64;
        let mut duplicated = 0u64;
        let mut stalled = Vec::new();
        let clock = Instant::now();
        for i in 0..self.trials {
            let trial_seed = base.derive(i as u64).base_seed();
            let attempt = || {
                run_trial(
                    topo,
                    proto,
                    start,
                    trial_seed,
                    &self.config,
                    self.delivery,
                    want_traj,
                )
            };
            let trial = match attempt() {
                Ok(t) => t,
                Err(e) if e.is_retryable() => {
                    eprintln!("gossip-net: trial {i}: {e}; retrying once on a fresh fabric");
                    match attempt() {
                        Ok(t) => t,
                        Err(e) if e.is_retryable() => {
                            eprintln!(
                                "gossip-net: trial {i}: stalled again ({e}); skipping the trial"
                            );
                            stalled.push(TrialError {
                                trial: i,
                                seed: trial_seed,
                                message: e.to_string(),
                            });
                            continue;
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            };
            events += trial.events;
            messages += trial.messages;
            dropped += trial.dropped;
            blocked += trial.blocked;
            duplicated += trial.duplicated;
            let record = TrialRecord {
                trial: i,
                seed: trial_seed,
                n: topo.n(),
                spread_time: trial.spread_time,
                windows: trial.epochs,
                events: trial.events,
                informed: trial.informed,
                outcome: trial.outcome,
                trajectory: trial.trajectory,
            };
            sink.on_trial(&record)?;
            for o in observers.iter_mut() {
                o.on_trial(&record)?;
            }
        }
        for o in observers.iter_mut() {
            o.finish()?;
        }
        Ok(NetReport {
            summary: sink.into_summary(),
            n: topo.n(),
            groups: self.config.groups.clamp(1, topo.n().max(1)),
            delivery: self.delivery,
            events,
            messages,
            dropped,
            blocked,
            duplicated,
            stalled,
            elapsed: clock.elapsed(),
        })
    }
}

/// Aggregate result of a [`NetPlan`] batch: the standard
/// [`TrialSummary`] (via `Deref`) plus the live runtime's traffic
/// counters.
#[derive(Debug, Clone)]
pub struct NetReport {
    summary: TrialSummary,
    n: usize,
    groups: usize,
    delivery: DeliveryKind,
    events: u64,
    messages: u64,
    dropped: u64,
    blocked: u64,
    duplicated: u64,
    stalled: Vec<TrialError>,
    elapsed: Duration,
}

impl NetReport {
    /// Node count of the simulated topology.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Node groups (threads) each trial ran on.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Transport the batch used.
    pub fn delivery(&self) -> DeliveryKind {
        self.delivery
    }

    /// Events processed across all trials (activations + arrivals).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Envelopes sent across all trials (dropped ones included).
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Envelopes swallowed by the drop gate.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Envelopes voided at a partition cut.
    pub fn blocked(&self) -> u64 {
        self.blocked
    }

    /// Extra envelope copies injected by the duplication fault.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Trials skipped after stalling twice on the UDP transport (empty
    /// on the local transport and on healthy fabrics).
    pub fn stalled(&self) -> &[TrialError] {
        &self.stalled
    }

    /// Wall-clock time of the whole batch.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Events per wall-clock second over the batch.
    pub fn events_per_sec(&self) -> f64 {
        per_sec(self.events, self.elapsed)
    }

    /// Envelopes per wall-clock second over the batch.
    pub fn messages_per_sec(&self) -> f64 {
        per_sec(self.messages, self.elapsed)
    }

    /// Mean envelopes per node per trial.
    pub fn messages_per_node(&self) -> f64 {
        let denom = (self.n as f64) * (self.summary.trials() as f64);
        if denom > 0.0 {
            self.messages as f64 / denom
        } else {
            0.0
        }
    }
}

fn per_sec(count: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        f64::INFINITY
    }
}

impl std::ops::Deref for NetReport {
    type Target = TrialSummary;

    fn deref(&self) -> &TrialSummary {
        &self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_summarizes_and_streams() {
        let topo = Topology::complete(24).unwrap();
        let mut jsonl = gossip_sim::JsonlSink::new(Vec::new());
        let cfg = NetConfig {
            groups: 2,
            ..NetConfig::default()
        };
        let report = NetPlan::new(5, 42)
            .config(cfg)
            .execute_observed(&topo, NetProtocol::PushPull, 0, &mut [&mut jsonl])
            .unwrap();
        assert_eq!(report.trials(), 5);
        assert_eq!(report.completed(), 5);
        assert_eq!(jsonl.records(), 5);
        assert!(report.mean() > 0.0);
        assert!(report.messages() > 0 && report.events() > 0);
        assert_eq!(report.dropped(), 0);
        assert!(report.messages_per_node() > 0.0);
        assert_eq!(report.n(), 24);
        assert_eq!(report.delivery(), DeliveryKind::Local);
    }

    #[test]
    fn plan_is_deterministic() {
        let topo = Topology::gnp(40, 0.3, 9).unwrap();
        let run = |groups| {
            let cfg = NetConfig {
                groups,
                ..NetConfig::default()
            };
            NetPlan::new(4, 7)
                .config(cfg)
                .execute(&topo, NetProtocol::PushPull, 0)
                .unwrap()
                .sorted_times()
                .to_vec()
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn budget_trials_are_not_completed() {
        let topo = Topology::complete(12).unwrap();
        let cfg = NetConfig {
            groups: 1,
            horizon: 1e-6,
            ..NetConfig::default()
        };
        let report = NetPlan::new(2, 1)
            .config(cfg)
            .execute(&topo, NetProtocol::PushPull, 0)
            .unwrap();
        assert_eq!(report.completed(), 0);
        assert_eq!(report.budget_stopped(), 2);
    }
}
