//! The live trial: node groups advancing seeded exponential clocks in
//! lock-step epochs.
//!
//! # Model
//!
//! Exactly the paper's asynchronous process: every node holds an
//! independent rate-1 exponential clock; when node `v`'s clock fires at
//! virtual time `t`, it contacts a uniform random neighbor `u` with a
//! [`Payload::Contact`] envelope carrying `v`'s rumor state. A contact
//! from an informed sender pushes the rumor; a contact from an
//! uninformed sender is a pull request that an informed receiver answers
//! with [`Payload::Rumor`]. Unlike the analytic engines, the contact is
//! not resolved in shared memory — it is a real message that arrives one
//! *tick* (the configured latency, [`NetConfig::tick`]) after it was
//! sent, which is what makes the runtime distributable.
//!
//! # Epoch synchronization and determinism
//!
//! Virtual time is partitioned into epochs of one tick. Every message
//! sent during epoch `k` arrives during epoch `k + 1`, so a group can
//! process all its epoch-`k` events (clock activations and arrivals,
//! merged in timestamp order) knowing nothing sent in epoch `k` can
//! affect them. At the epoch boundary all groups exchange envelopes and
//! agree on the next *occupied* epoch — empty stretches of virtual time
//! are skipped in one jump — via [`Delivery::exchange`].
//!
//! Every random draw comes from a stream keyed by `(trial seed, node,
//! activation index)`, arrivals are re-sorted by the delay-adjusted
//! [`ChaosGate::order_key`], and in-group messages pay the same one-tick
//! latency as cross-group ones. Consequently a trial's result is a pure
//! function of `(topology, protocol, start, trial seed, tick, horizon,
//! fault model)` — bit-identical across group counts, thread
//! interleavings, and transports (test-enforced).
//!
//! # Faults
//!
//! The full live fault regime ([`NetFaults`]) is enacted here: the
//! [`DropGate`] and [`ChaosGate`] (partition / delay / duplication)
//! filter envelopes at the send and ordering layer, while a per-node
//! [`Liveness`] machine suspends crashed nodes — a down node's
//! activation still burns its RNG draws (keeping the activation chain
//! identical to the fault-free one) but its contact is voided, and
//! envelopes arriving at a down node are discarded, mirroring the event
//! engine's rate-zero thinning. When crashes are permanent
//! (`recovery_rate == 0`) the epoch reductions additionally carry the
//! informed-and-up count and the rumor-carrying in-flight count, and the
//! trial ends in [`TrialOutcome::Died`] once someone is informed, no
//! informed node is up, and no rumor-carrying envelope is in flight.
//!
//! [`Payload::Contact`]: crate::envelope::Payload::Contact
//! [`Payload::Rumor`]: crate::envelope::Payload::Rumor

use crate::delivery::{Delivery, DeliveryKind, DropGate, EpochFlush, EpochUpdate, Router};
use crate::envelope::{Envelope, Payload};
use crate::error::NetError;
use crate::fault::{carries_rumor, ChaosGate, Liveness, NetFaults};
use crate::udp::UdpDelivery;
use crate::LocalDelivery;
use gossip_graph::{NodeId, Topology};
use gossip_sim::TrialOutcome;
use gossip_stats::{Exponential, SimRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Default message latency / epoch length, in virtual time units.
///
/// Small against every per-hop spread-time scale the repo sweeps (the
/// slowest clocks fire once per unit time), so live spread times match
/// the analytic engines' zero-latency distributions within KS noise;
/// large enough that million-node runs keep thousands of events per
/// epoch between barriers.
pub const DEFAULT_TICK: f64 = 1e-3;

/// Runtime parameters of a live run (the compiled form of the spec's
/// `[net]` table plus the full live fault regime).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Node groups (actors are multiplexed N-nodes-per-thread); clamped
    /// to `[1, n]` at trial start.
    pub groups: usize,
    /// Message latency = epoch length, in virtual time.
    pub tick: f64,
    /// Virtual-time cutoff: the trial stops with
    /// [`TrialOutcome::Budget`] when the next event would fire later.
    pub horizon: f64,
    /// The live fault regime: drop / crash / recovery / schedule plus
    /// delivery chaos. [`NetFaults::default()`] is bit-invisible.
    pub faults: NetFaults,
    /// Wall-clock seconds a UDP endpoint waits for peer datagrams before
    /// it starts NACK-driven retries; doubles on every retry. Ignored by
    /// the in-process transport.
    pub exchange_timeout: f64,
    /// UDP retry rounds after the first timeout before the exchange is
    /// declared [stalled](NetError::Stalled). `0` fails on the first
    /// timeout.
    pub exchange_retries: u32,
}

/// Default [`NetConfig::exchange_timeout`], in seconds.
pub const DEFAULT_EXCHANGE_TIMEOUT: f64 = 1.0;

/// Default [`NetConfig::exchange_retries`].
pub const DEFAULT_EXCHANGE_RETRIES: u32 = 3;

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            groups: default_groups(),
            tick: DEFAULT_TICK,
            horizon: 1e5,
            faults: NetFaults::default(),
            exchange_timeout: DEFAULT_EXCHANGE_TIMEOUT,
            exchange_retries: DEFAULT_EXCHANGE_RETRIES,
        }
    }
}

/// The default group count: one group per available core, capped at 8
/// (epoch barriers outgrow their benefit beyond that on one machine).
pub fn default_groups() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8)
}

/// Which rumor protocol the live nodes speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetProtocol {
    /// Asynchronous push–pull (spec kinds `async` and `naive`).
    PushPull,
    /// Push-only: uninformed activations stay silent.
    Push,
    /// Pull-only: informed activations stay silent, contacts are always
    /// pull requests.
    Pull,
}

impl NetProtocol {
    /// Maps a scenario protocol kind onto the live protocol; `None` for
    /// kinds the runtime cannot speak (synchronous rounds, flooding,
    /// rate-2 push, lossy-with-downtime).
    pub fn from_kind(kind: &str) -> Option<NetProtocol> {
        match kind {
            "async" | "naive" => Some(NetProtocol::PushPull),
            "push" => Some(NetProtocol::Push),
            "pull" => Some(NetProtocol::Pull),
            _ => None,
        }
    }

    /// Display name, marking the live transport.
    pub fn display_name(self) -> &'static str {
        match self {
            NetProtocol::PushPull => "async push-pull (live)",
            NetProtocol::Push => "async push (live)",
            NetProtocol::Pull => "async pull (live)",
        }
    }

    /// Whether an informed receiver answers an uninformed contact.
    fn replies(self) -> bool {
        !matches!(self, NetProtocol::Push)
    }
}

/// The outcome of one live trial.
#[derive(Debug, Clone)]
pub struct NetTrial {
    /// Virtual time the last node learned the rumor, when every node
    /// did.
    pub spread_time: Option<f64>,
    /// Nodes informed when the trial ended.
    pub informed: usize,
    /// Occupied epochs processed (== delivery exchanges after the
    /// bootstrap round).
    pub epochs: u64,
    /// Events processed: clock activations plus envelope arrivals.
    pub events: u64,
    /// Envelopes handed to the delivery layer (dropped ones included).
    pub messages: u64,
    /// Envelopes the [`DropGate`] swallowed.
    pub dropped: u64,
    /// Envelopes voided at a partition cut ([`ChaosGate::blocks`]).
    pub blocked: u64,
    /// Extra envelope copies injected by the duplication fault.
    pub duplicated: u64,
    /// How the trial ended: [`TrialOutcome::Spread`],
    /// [`TrialOutcome::Budget`], or — under unrecoverable crash faults —
    /// [`TrialOutcome::Died`] when every informed node is down and no
    /// rumor-carrying envelope is in flight.
    pub outcome: TrialOutcome,
    /// Sorted `(time, |informed|)` curve when requested.
    pub trajectory: Option<Vec<(f64, usize)>>,
}

/// What each group thread reports back after its loop ends.
struct GroupOutcome {
    outcome: TrialOutcome,
    informed: u64,
    max_informed: f64,
    epochs: u64,
    events: u64,
    messages: u64,
    dropped: u64,
    blocked: u64,
    duplicated: u64,
    /// Informed times of this group's own nodes (finite entries only);
    /// filled only when a trajectory was requested.
    informed_times: Vec<f64>,
}

/// One node group: a contiguous block of nodes multiplexed onto one
/// thread, with all their clock/message state.
struct Group<'a> {
    topo: &'a Topology,
    proto: NetProtocol,
    tick: f64,
    horizon: f64,
    base: SimRng,
    exp: Exponential,
    gate: DropGate,
    chaos: ChaosGate,
    /// Crash/recovery state of the owned nodes; `None` when the fault
    /// regime has no crash machinery (zero overhead on the happy path).
    liveness: Option<Liveness>,
    /// Whether [`TrialOutcome::Died`] is reachable (crashes on, recovery
    /// off) — gates the rumor-in-flight accounting.
    can_die: bool,
    lo: NodeId,
    /// Informed time per owned node; NaN = uninformed.
    informed_t: Vec<f64>,
    /// Processed activations per owned node (indexes the derive chain).
    acts: Vec<u32>,
    /// Envelopes sent per owned node (the per-source `seq` counter).
    seqs: Vec<u32>,
    /// Pending activations: `(time bits, node)` min-heap — times are
    /// non-negative, so bit order is value order.
    heap: BinaryHeap<Reverse<(u64, NodeId)>>,
    /// Buffered arrivals, sorted by [`Envelope::order_key`]; the prefix
    /// below the epoch end is consumed each epoch.
    pending: Vec<Envelope>,
    outbox: Vec<Envelope>,
    /// Earliest arrival among envelopes currently in `outbox`.
    out_min: f64,
    informed_count: u64,
    /// Owned informed nodes that are up at their last observed liveness
    /// state; equals `informed_count` when liveness is off.
    live_informed: u64,
    max_informed: f64,
    events: u64,
    messages: u64,
    dropped: u64,
    blocked: u64,
    duplicated: u64,
    record: bool,
}

impl<'a> Group<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        topo: &'a Topology,
        proto: NetProtocol,
        cfg: &NetConfig,
        trial_seed: u64,
        start: NodeId,
        range: std::ops::Range<NodeId>,
        record: bool,
    ) -> Group<'a> {
        let base = SimRng::seed_from_u64(trial_seed);
        let exp = Exponential::new(1.0).expect("rate 1 is valid");
        let len = range.len();
        let faults = &cfg.faults;
        let mut g = Group {
            topo,
            proto,
            tick: cfg.tick,
            horizon: cfg.horizon,
            gate: DropGate::new(faults.drop, faults.seed, trial_seed),
            chaos: ChaosGate::new(faults, trial_seed, cfg.tick),
            liveness: faults
                .crash_active()
                .then(|| Liveness::new(faults, trial_seed, range.clone())),
            can_die: faults.can_die(),
            base,
            exp,
            lo: range.start,
            informed_t: vec![f64::NAN; len],
            acts: vec![0; len],
            seqs: vec![0; len],
            heap: BinaryHeap::with_capacity(len),
            pending: Vec::new(),
            outbox: Vec::new(),
            out_min: f64::INFINITY,
            informed_count: 0,
            live_informed: 0,
            max_informed: f64::NEG_INFINITY,
            events: 0,
            messages: 0,
            dropped: 0,
            blocked: 0,
            duplicated: 0,
            record,
        };
        for v in range {
            // Activation stream 0 of node v seeds its first firing; each
            // processed activation k then draws from stream k + 1. The
            // chain depends only on (trial seed, v, k) — never on which
            // group runs v or in which order groups run.
            let mut rng = g.base.derive(u64::from(v)).derive(0);
            let t = g.exp.sample(&mut rng);
            g.heap.push(Reverse((t.to_bits(), v)));
        }
        if g.owns(start) {
            g.inform((start - g.lo) as usize, 0.0);
        }
        g
    }

    fn owns(&self, v: NodeId) -> bool {
        v >= self.lo && ((v - self.lo) as usize) < self.informed_t.len()
    }

    fn inform(&mut self, li: usize, t: f64) {
        self.informed_t[li] = t;
        self.informed_count += 1;
        // Callers advance liveness before informing, so the up state is
        // current at time t.
        if self.liveness.as_ref().is_none_or(|l| l.is_up(li)) {
            self.live_informed += 1;
        }
        if t > self.max_informed {
            self.max_informed = t;
        }
    }

    /// Advances node `li`'s liveness machine to `t`'s unit window and
    /// returns whether it is up, keeping the informed-and-up counter in
    /// sync with observed transitions. Always `true` without crash
    /// faults.
    fn live_up(&mut self, li: usize, t: f64) -> bool {
        let Some(liveness) = self.liveness.as_mut() else {
            return true;
        };
        let was = liveness.is_up(li);
        let now = liveness.advance(li, t);
        if was != now && !self.informed_t[li].is_nan() {
            if now {
                self.live_informed += 1;
            } else {
                self.live_informed -= 1;
            }
        }
        now
    }

    fn send(&mut self, src: NodeId, dst: NodeId, time: f64, payload: Payload) {
        let li = (src - self.lo) as usize;
        let seq = self.seqs[li];
        self.seqs[li] += 1;
        let env = Envelope {
            src,
            dst,
            seq,
            time,
            payload,
        };
        self.messages += 1;
        if self.gate.drops(&env) {
            self.dropped += 1;
            return;
        }
        if self.chaos.blocks(&env) {
            self.blocked += 1;
            return;
        }
        let arrival = self.chaos.arrival(&env);
        if arrival < self.out_min {
            self.out_min = arrival;
        }
        self.outbox.push(env);
        if self.chaos.duplicates(&env) {
            self.duplicated += 1;
            self.outbox.push(env);
        }
    }

    /// The earliest future event this group knows about: next clock
    /// firing, earliest buffered arrival, earliest outbox arrival.
    fn next_candidate(&self) -> f64 {
        let heap_t = self
            .heap
            .peek()
            .map_or(f64::INFINITY, |&Reverse((bits, _))| f64::from_bits(bits));
        let pend_t = self
            .pending
            .first()
            .map_or(f64::INFINITY, |e| self.chaos.arrival(e));
        heap_t.min(pend_t).min(self.out_min)
    }

    fn process_activation(&mut self, t: f64, v: NodeId) {
        self.events += 1;
        let li = (v - self.lo) as usize;
        let k = self.acts[li];
        self.acts[li] = k + 1;
        // A down node's activation burns the same draws as an up one —
        // the chain stays a pure function of (trial seed, v, k) — but
        // its contact is voided, mirroring rate-zero thinning.
        let up = self.live_up(li, t);
        let mut rng = self.base.derive(u64::from(v)).derive(u64::from(k) + 1);
        let deg = self.topo.degree(v);
        if deg > 0 {
            let u = self.topo.neighbor(v, rng.index(deg));
            let informed = !self.informed_t[li].is_nan();
            let speak = match self.proto {
                NetProtocol::PushPull => true,
                NetProtocol::Push => informed,
                NetProtocol::Pull => !informed,
            };
            if speak && up {
                self.send(v, u, t, Payload::Contact { informed });
            }
        }
        let gap = self.exp.sample(&mut rng);
        self.heap.push(Reverse(((t + gap).to_bits(), v)));
    }

    fn process_arrival(&mut self, env: Envelope) {
        self.events += 1;
        let arrival = self.chaos.arrival(&env);
        let li = (env.dst - self.lo) as usize;
        // Envelopes addressed to a down node are voided: it neither
        // learns the rumor nor answers pulls while crashed.
        if !self.live_up(li, arrival) {
            return;
        }
        let informed = !self.informed_t[li].is_nan();
        match env.payload {
            Payload::Contact { informed: src_inf } => {
                if src_inf && !informed {
                    self.inform(li, arrival);
                } else if !src_inf && informed && self.proto.replies() {
                    self.send(env.dst, env.src, arrival, Payload::Rumor);
                }
            }
            Payload::Rumor => {
                if !informed {
                    self.inform(li, arrival);
                }
            }
        }
    }

    /// Processes every event with timestamp `< epoch_end`, interleaving
    /// buffered arrivals and clock activations in time order (arrivals
    /// first on exact ties — a fixed, grouping-independent rule).
    fn process_window(&mut self, epoch_end: f64) {
        let mut cursor = 0usize;
        loop {
            let arr_t = self
                .pending
                .get(cursor)
                .map(|e| self.chaos.arrival(e))
                .filter(|&t| t < epoch_end);
            let act = self
                .heap
                .peek()
                .map(|&Reverse((bits, v))| (f64::from_bits(bits), v))
                .filter(|&(t, _)| t < epoch_end);
            match (arr_t, act) {
                (Some(ta), Some((tv, _))) if ta <= tv => {
                    let env = self.pending[cursor];
                    cursor += 1;
                    self.process_arrival(env);
                }
                (_, Some((tv, v))) => {
                    self.heap.pop();
                    self.process_activation(tv, v);
                }
                (Some(_), None) => {
                    let env = self.pending[cursor];
                    cursor += 1;
                    self.process_arrival(env);
                }
                (None, None) => break,
            }
        }
        self.pending.drain(..cursor);
    }

    fn flush(&mut self) -> EpochFlush {
        // Rumor-carrying envelopes this group holds: about to enter
        // transit (outbox) or received but not yet processed (pending).
        // Across groups every in-flight envelope is counted exactly once
        // per reduction. Only maintained when `Died` is reachable.
        let rumor_in_flight = if self.can_die {
            self.outbox
                .iter()
                .chain(self.pending.iter())
                .filter(|e| carries_rumor(e))
                .count() as u64
        } else {
            0
        };
        let flush = EpochFlush {
            next_candidate: self.next_candidate(),
            outbound: std::mem::take(&mut self.outbox),
            informed: self.informed_count,
            live_informed: if self.liveness.is_some() {
                self.live_informed
            } else {
                self.informed_count
            },
            rumor_in_flight,
        };
        self.out_min = f64::INFINITY;
        flush
    }

    fn merge_inbound(&mut self, update: &mut EpochUpdate) {
        if !update.inbound.is_empty() {
            self.pending.append(&mut update.inbound);
            let chaos = self.chaos;
            self.pending
                .sort_unstable_by_key(move |e| chaos.order_key(e));
        }
    }

    fn run(mut self, delivery: &mut dyn Delivery) -> Result<GroupOutcome, NetError> {
        let n = self.topo.n() as u64;
        let mut epochs = 0u64;
        let mut floor_epoch = 0u64;
        let mut update = delivery.exchange(self.flush())?;
        self.merge_inbound(&mut update);
        let outcome = loop {
            if update.informed_total >= n {
                break TrialOutcome::Spread;
            }
            // Under unrecoverable crashes, "every informed node down and
            // no rumor-carrying envelope in flight" is a provably final
            // state: nothing can ever inform anyone again. Liveness is
            // observed lazily, so the break may trail the last crash by
            // a few activations — deterministically so.
            if self.can_die
                && update.informed_total > 0
                && update.live_informed_total == 0
                && update.rumor_in_flight_total == 0
            {
                break TrialOutcome::Died;
            }
            // `next_time` is +inf when no group has anything scheduled
            // (an idle system with empty groups only) — either way
            // nothing more can happen inside the budget.
            if update.next_time > self.horizon {
                break TrialOutcome::Budget;
            }
            // All events strictly before the previous epoch end are
            // consumed, so the global next event picks the next occupied
            // epoch; the floor guard makes progress immune to f64
            // division rounding at epoch boundaries.
            let epoch = ((update.next_time / self.tick) as u64).max(floor_epoch);
            floor_epoch = epoch + 1;
            let epoch_end = (epoch + 1) as f64 * self.tick;
            self.process_window(epoch_end);
            epochs += 1;
            update = delivery.exchange(self.flush())?;
            self.merge_inbound(&mut update);
        };
        Ok(GroupOutcome {
            outcome,
            informed: self.informed_count,
            max_informed: self.max_informed,
            epochs,
            events: self.events,
            messages: self.messages,
            dropped: self.dropped,
            blocked: self.blocked,
            duplicated: self.duplicated,
            informed_times: if self.record {
                self.informed_t
                    .iter()
                    .copied()
                    .filter(|t| !t.is_nan())
                    .collect()
            } else {
                Vec::new()
            },
        })
    }
}

/// Runs one live trial of `proto` on `topo` from `start`, seeded by
/// `trial_seed`, over the given transport. See the [module docs](self)
/// for the execution model and determinism contract.
///
/// # Errors
///
/// [`NetError::Invalid`] for structural problems (empty topology, start
/// out of range, non-positive tick/horizon, malformed fault regime);
/// [`NetError::Io`] when the transport fails; [`NetError::Stalled`] when
/// a UDP exchange exhausts its retries waiting for a peer.
pub fn run_trial(
    topo: &Topology,
    proto: NetProtocol,
    start: NodeId,
    trial_seed: u64,
    cfg: &NetConfig,
    kind: DeliveryKind,
    record_trajectory: bool,
) -> Result<NetTrial, NetError> {
    let n = topo.n();
    if n == 0 {
        return Err(NetError::Invalid("the topology has no nodes".into()));
    }
    if (start as usize) >= n {
        return Err(NetError::Invalid(format!(
            "start node {start} is outside the {n}-node network"
        )));
    }
    if !(cfg.tick.is_finite() && cfg.tick > 0.0) {
        return Err(NetError::Invalid(format!(
            "tick must be a positive finite latency, got {}",
            cfg.tick
        )));
    }
    // +inf is a valid horizon (run until spread); NaN is not.
    if cfg.horizon.is_nan() || cfg.horizon <= 0.0 {
        return Err(NetError::Invalid(format!(
            "horizon must be positive, got {}",
            cfg.horizon
        )));
    }
    if !(cfg.exchange_timeout.is_finite() && cfg.exchange_timeout > 0.0) {
        return Err(NetError::Invalid(format!(
            "exchange_timeout must be a positive finite duration, got {}",
            cfg.exchange_timeout
        )));
    }
    cfg.faults.validate()?;
    let router = Router::new(n, cfg.groups);
    let endpoints: Vec<Box<dyn Delivery>> = match kind {
        DeliveryKind::Local => LocalDelivery::fabric(router)
            .into_iter()
            .map(|e| Box::new(e) as Box<dyn Delivery>)
            .collect(),
        DeliveryKind::Udp => {
            UdpDelivery::fabric(router, cfg.exchange_timeout, cfg.exchange_retries)?
                .into_iter()
                .map(|e| Box::new(e) as Box<dyn Delivery>)
                .collect()
        }
    };
    let outcomes: Result<Vec<GroupOutcome>, NetError> = std::thread::scope(|s| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(g, mut ep)| {
                let range = router.range(g);
                let group = Group::new(
                    topo,
                    proto,
                    cfg,
                    trial_seed,
                    start,
                    range,
                    record_trajectory,
                );
                std::thread::Builder::new()
                    .name(format!("gossip-net-{g}"))
                    .spawn_scoped(s, move || group.run(&mut *ep))
                    .expect("spawn node-group thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("node-group thread panicked"))
            .collect()
    });
    let outcomes = outcomes?;
    let outcome = outcomes[0].outcome;
    let informed: u64 = outcomes.iter().map(|o| o.informed).sum();
    let spread_time = match outcome {
        TrialOutcome::Spread => Some(
            outcomes
                .iter()
                .map(|o| o.max_informed)
                .fold(f64::NEG_INFINITY, f64::max),
        ),
        _ => None,
    };
    let trajectory = record_trajectory.then(|| {
        let mut times: Vec<f64> = outcomes
            .iter()
            .flat_map(|o| o.informed_times.iter().copied())
            .collect();
        times.sort_unstable_by(f64::total_cmp);
        times
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, i + 1))
            .collect()
    });
    Ok(NetTrial {
        spread_time,
        informed: informed as usize,
        epochs: outcomes.iter().map(|o| o.epochs).max().unwrap_or(0),
        events: outcomes.iter().map(|o| o.events).sum(),
        messages: outcomes.iter().map(|o| o.messages).sum(),
        dropped: outcomes.iter().map(|o| o.dropped).sum(),
        blocked: outcomes.iter().map(|o| o.blocked).sum(),
        duplicated: outcomes.iter().map(|o| o.duplicated).sum(),
        outcome,
        trajectory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(groups: usize) -> NetConfig {
        NetConfig {
            groups,
            tick: 1e-3,
            horizon: 1e4,
            ..NetConfig::default()
        }
    }

    #[test]
    fn complete_graph_spreads_fully() {
        let topo = Topology::complete(48).unwrap();
        let t = run_trial(
            &topo,
            NetProtocol::PushPull,
            0,
            7,
            &cfg(3),
            DeliveryKind::Local,
            true,
        )
        .unwrap();
        assert_eq!(t.outcome, TrialOutcome::Spread);
        assert_eq!(t.informed, 48);
        let spread = t.spread_time.unwrap();
        assert!(spread > 0.0 && spread < 100.0, "{spread}");
        let traj = t.trajectory.unwrap();
        assert_eq!(traj.len(), 48);
        assert_eq!(traj[0], (0.0, 1));
        assert!((traj.last().unwrap().0 - spread).abs() < 1e-12);
        assert!(t.events > 0 && t.messages > 0 && t.dropped == 0);
    }

    #[test]
    fn group_count_is_invisible() {
        let topo = Topology::gnp(96, 0.2, 5).unwrap();
        let runs: Vec<NetTrial> = [1, 2, 5]
            .into_iter()
            .map(|g| {
                run_trial(
                    &topo,
                    NetProtocol::PushPull,
                    0,
                    11,
                    &cfg(g),
                    DeliveryKind::Local,
                    false,
                )
                .unwrap()
            })
            .collect();
        for t in &runs[1..] {
            assert_eq!(t.spread_time, runs[0].spread_time);
            assert_eq!(t.events, runs[0].events);
            assert_eq!(t.messages, runs[0].messages);
        }
    }

    #[test]
    fn full_drop_hits_the_horizon() {
        let topo = Topology::complete(16).unwrap();
        let mut c = cfg(2);
        c.faults.drop = 1.0;
        c.horizon = 3.0;
        let t = run_trial(
            &topo,
            NetProtocol::PushPull,
            0,
            3,
            &c,
            DeliveryKind::Local,
            false,
        )
        .unwrap();
        assert_eq!(t.outcome, TrialOutcome::Budget);
        assert_eq!(t.informed, 1);
        assert_eq!(t.spread_time, None);
        assert!(t.dropped > 0 && t.dropped == t.messages);
    }

    #[test]
    fn push_and_pull_both_complete_on_complete_graphs() {
        let topo = Topology::complete(32).unwrap();
        for proto in [NetProtocol::Push, NetProtocol::Pull] {
            let t = run_trial(&topo, proto, 0, 9, &cfg(2), DeliveryKind::Local, false).unwrap();
            assert_eq!(t.outcome, TrialOutcome::Spread, "{proto:?}");
            assert_eq!(t.informed, 32);
        }
    }

    #[test]
    fn scheduled_crash_of_every_node_dies() {
        // Crash all 8 nodes at window 1: the rumor holder goes down with
        // no recovery, so the trial must end in Died, well before the
        // (infinite) horizon.
        let topo = Topology::complete(8).unwrap();
        let mut c = cfg(2);
        c.horizon = f64::INFINITY;
        c.faults.schedule = (0..8).map(|v| (1, v)).collect();
        c.faults.seed = 5;
        let t = run_trial(
            &topo,
            NetProtocol::PushPull,
            0,
            21,
            &c,
            DeliveryKind::Local,
            false,
        )
        .unwrap();
        assert_eq!(t.outcome, TrialOutcome::Died);
        assert!(t.informed < 8);
    }

    #[test]
    fn recovery_keeps_died_unreachable_and_spreads() {
        let topo = Topology::complete(24).unwrap();
        let mut c = cfg(3);
        c.faults.crash_rate = 0.5;
        c.faults.recovery_rate = 2.0;
        c.faults.seed = 13;
        let t = run_trial(
            &topo,
            NetProtocol::PushPull,
            0,
            4,
            &c,
            DeliveryKind::Local,
            false,
        )
        .unwrap();
        // With brisk recovery the rumor still reaches everyone.
        assert_eq!(t.outcome, TrialOutcome::Spread, "{t:?}");
        assert_eq!(t.informed, 24);
    }

    #[test]
    fn faulty_runs_are_group_count_invariant() {
        let topo = Topology::gnp(48, 0.3, 8).unwrap();
        let mut c = cfg(1);
        c.faults = NetFaults {
            drop: 0.1,
            crash_rate: 0.2,
            recovery_rate: 1.0,
            partition_rate: 0.2,
            delay: 0.2,
            delay_epochs: 2,
            duplicate: 0.1,
            seed: 7,
            ..NetFaults::default()
        };
        let run = |groups| {
            let mut c = c.clone();
            c.groups = groups;
            run_trial(
                &topo,
                NetProtocol::PushPull,
                0,
                17,
                &c,
                DeliveryKind::Local,
                false,
            )
            .unwrap()
        };
        let base = run(1);
        assert!(base.blocked > 0 || base.duplicated > 0 || base.dropped > 0);
        for g in [2, 3] {
            let t = run(g);
            assert_eq!(t.spread_time, base.spread_time, "groups={g}");
            assert_eq!(t.events, base.events, "groups={g}");
            assert_eq!(t.messages, base.messages, "groups={g}");
            assert_eq!(t.dropped, base.dropped, "groups={g}");
            assert_eq!(t.blocked, base.blocked, "groups={g}");
            assert_eq!(t.duplicated, base.duplicated, "groups={g}");
            assert_eq!(t.outcome, base.outcome, "groups={g}");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let topo = Topology::complete(8).unwrap();
        let mut bad = cfg(1);
        bad.tick = 0.0;
        assert!(matches!(
            run_trial(
                &topo,
                NetProtocol::PushPull,
                0,
                1,
                &bad,
                DeliveryKind::Local,
                false
            ),
            Err(NetError::Invalid(_))
        ));
        assert!(matches!(
            run_trial(
                &topo,
                NetProtocol::PushPull,
                99,
                1,
                &cfg(1),
                DeliveryKind::Local,
                false
            ),
            Err(NetError::Invalid(_))
        ));
    }
}
