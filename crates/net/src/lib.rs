//! `gossip-net` — the live asynchronous gossip runtime.
//!
//! Where the analytic engines (`gossip-sim`) *compute* the asynchronous
//! rumor-spreading process of Pourmiri–Mehrabian by drawing from its
//! exact event distribution, this crate *enacts* it: every node is an
//! actor with an independent rate-1 exponential activation clock, and
//! every contact is a real [`Envelope`] routed between node groups by a
//! pluggable [`Delivery`] transport. The point is twofold —
//!
//! 1. **Cross-validation.** An implementation of the protocol that
//!    shares no event-loop code with the analytic engines, whose
//!    spread-time distributions must still agree with them
//!    (KS-enforced in `tests/cross_validation.rs`). Agreement here
//!    validates both stacks at once.
//! 2. **Scale & distribution.** Nodes are multiplexed N-per-thread into
//!    node groups; the same runtime drives a million in-process nodes
//!    over [`LocalDelivery`] or spans processes over [`UdpDelivery`]
//!    without touching protocol code.
//!
//! # Architecture
//!
//! ```text
//!   ScenarioSpec ──► NetSweep ──► NetPlan ──► run_trial
//!   (family, proto,   ([net])      (seeds,       │
//!    [faults].drop)                 observers)   ▼
//!              ┌─────────────┐             ┌─────────────┐
//!              │ node group 0│  Envelopes  │ node group 1│   … one thread
//!              │ clocks+state│◄───────────►│ clocks+state│     per group
//!              │  + Liveness │             │  + Liveness │
//!              └──────┬──────┘             └──────┬──────┘
//!                     └────────► Delivery ◄───────┘
//!                        LocalDelivery / UdpDelivery
//!                 (+ DropGate / ChaosGate fault injection)
//! ```
//!
//! Virtual time advances in epochs of one `tick` (the message latency);
//! each epoch every group processes its clock firings and arrivals in
//! timestamp order, then all groups exchange envelopes and agree on the
//! next occupied epoch. Because every random draw is keyed by `(trial
//! seed, node, activation)` and every message pays the same one-tick
//! latency, results are **bit-identical across group counts and
//! transports** — parallelism and distribution are pure implementation
//! detail. Fault injection keeps that contract: node crash/recovery
//! ([`Liveness`]), delivery drop ([`DropGate`]), and partition / delay /
//! duplication chaos ([`ChaosGate`]) all flip keyed per-`(node, window)`
//! or per-`(src, seq)` coins rather than drawing from shared streams.
//! See [`runtime`] for the full determinism contract and [`fault`] for
//! the fault semantics.
//!
//! # Entry points
//!
//! * [`run_trial`] — one trial on an explicit [`Topology`].
//! * [`NetPlan`] — a seeded trial batch streaming
//!   [`TrialRecord`](gossip_sim::TrialRecord)s into `gossip-sim`
//!   observers.
//! * [`NetSweep`] — a full `ScenarioSpec` sweep (the `gossip net run`
//!   path), honoring the spec's `[net]` table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delivery;
pub mod envelope;
pub mod error;
pub mod fault;
pub mod plan;
pub mod runtime;
pub mod scenario;
pub mod udp;

pub use delivery::{
    Delivery, DeliveryKind, DropGate, EpochFlush, EpochUpdate, LocalDelivery, Router,
};
pub use envelope::{Envelope, Payload, WIRE_BYTES};
pub use error::NetError;
pub use fault::{ChaosGate, Liveness, NetFaults};
pub use plan::{NetPlan, NetReport};
pub use runtime::{default_groups, run_trial, NetConfig, NetProtocol, NetTrial, DEFAULT_TICK};
pub use scenario::{build_live_topology, NetSweep, NetSweepReport};
pub use udp::UdpDelivery;

// Re-exported so downstream code can name the topology/observer types the
// entry points consume without an extra dependency edge.
pub use gossip_graph::Topology;
