//! Scenario-driven live sweeps: the `[net]` table meets [`NetPlan`].
//!
//! [`NetSweep`] is the live counterpart of `gossip_core`'s `SweepPlan`:
//! it consumes the same `ScenarioSpec` (family, protocol, sweep sizes,
//! trials, seeds, `[faults]` drop probability) and produces the same
//! `ScenarioReport` row shape, so everything downstream — report
//! rendering, JSONL streams, series extraction — works unchanged on live
//! results. The `engine` column reads `net/local` or `net/udp` to mark
//! which stack produced the numbers.

use crate::delivery::DeliveryKind;
use crate::error::NetError;
use crate::fault::NetFaults;
use crate::plan::{NetPlan, NetReport};
use crate::runtime::{
    default_groups, NetConfig, NetProtocol, DEFAULT_EXCHANGE_RETRIES, DEFAULT_EXCHANGE_TIMEOUT,
    DEFAULT_TICK,
};
use gossip_core::scenario::{build_family, FamilySpec, ScenarioReport, ScenarioRow, ScenarioSpec};
use gossip_dynamics::DynamicNetwork;
use gossip_graph::{NodeId, NodeSet, Topology};
use gossip_sim::TrialObserver;
use gossip_stats::SimRng;
use std::time::Duration;

/// Builds the one static topology a live run uses for family `spec` at
/// size `n`, plus the family's suggested start node.
///
/// The family is built through the scenario registry and snapshotted at
/// window 0 with an empty informed set — for static families (the only
/// ones live validation admits) that snapshot *is* the network, and it
/// is bit-identical to what the analytic engines simulate under the same
/// `build_seed`.
///
/// # Errors
///
/// Family construction errors, or [`NetError::Invalid`] when the family
/// turns out dynamic (a backstop behind
/// [`ScenarioSpec::validate_net`]).
pub fn build_live_topology(spec: &FamilySpec, n: usize) -> Result<(Topology, NodeId), NetError> {
    let mut net = build_family(spec, n)?;
    if !net.is_static() {
        return Err(NetError::Invalid(format!(
            "family `{}` is dynamic; the live runtime runs static topologies only",
            spec.kind
        )));
    }
    let start = net.suggested_start();
    let n = net.n();
    let informed = NodeSet::new(n);
    let mut rng = SimRng::seed_from_u64(0);
    let topo = net.topology(0, &informed, &mut rng).clone();
    Ok((topo, start))
}

/// A validated, ready-to-execute live sweep over a scenario spec.
#[derive(Debug, Clone)]
pub struct NetSweep<'s> {
    spec: &'s ScenarioSpec,
    proto: NetProtocol,
    delivery: DeliveryKind,
    config: NetConfig,
    trials: usize,
    seed: u64,
}

impl<'s> NetSweep<'s> {
    /// Validates `spec` for live execution (structural checks plus
    /// [`ScenarioSpec::validate_net`] — a spec without a `[net]` table
    /// runs on all defaults) and compiles its `[net]` and `[faults]`
    /// tables into a [`NetConfig`].
    ///
    /// # Errors
    ///
    /// Any validation error, as [`NetError::Scenario`].
    pub fn new(spec: &'s ScenarioSpec) -> Result<Self, NetError> {
        spec.validate()?;
        spec.validate_net()?;
        let proto = NetProtocol::from_kind(&spec.protocol.kind)
            .expect("validate_net admits live protocols only");
        let net = spec.net.clone().unwrap_or_default();
        let delivery = DeliveryKind::parse(net.delivery.as_deref().unwrap_or("local"))
            .expect("validate_net admits known deliveries only");
        let config = NetConfig {
            groups: net.groups.unwrap_or_else(default_groups),
            tick: net.tick.unwrap_or(DEFAULT_TICK),
            horizon: net
                .horizon
                .unwrap_or_else(|| spec.sweep.max_time_or_default()),
            faults: spec
                .faults
                .as_ref()
                .map(NetFaults::from_spec)
                .unwrap_or_default(),
            exchange_timeout: net.exchange_timeout.unwrap_or(DEFAULT_EXCHANGE_TIMEOUT),
            exchange_retries: net.exchange_retries.unwrap_or(DEFAULT_EXCHANGE_RETRIES),
        };
        Ok(NetSweep {
            spec,
            proto,
            delivery,
            config,
            trials: spec.sweep.trials_or_default(),
            seed: spec.sweep.seed_or_default(),
        })
    }

    /// Overrides the node-group count (CLI `--groups`).
    pub fn groups(mut self, groups: usize) -> Self {
        self.config.groups = groups.max(1);
        self
    }

    /// Overrides the transport (CLI `--delivery`).
    pub fn delivery(mut self, delivery: DeliveryKind) -> Self {
        self.delivery = delivery;
        self
    }

    /// The compiled runtime configuration the sweep will use.
    pub fn config(&self) -> NetConfig {
        self.config.clone()
    }

    /// The live protocol the sweep will run.
    pub fn protocol(&self) -> NetProtocol {
        self.proto
    }

    /// Runs the whole sweep.
    ///
    /// # Errors
    ///
    /// As [`NetSweep::run_observed`].
    pub fn run(&self) -> Result<NetSweepReport, NetError> {
        self.run_observed(&mut [])
    }

    /// Runs the whole sweep with one streaming observer attached.
    ///
    /// # Errors
    ///
    /// As [`NetSweep::run_observed`].
    pub fn run_with(
        &self,
        mut observer: &mut dyn TrialObserver,
    ) -> Result<NetSweepReport, NetError> {
        self.run_observed(std::slice::from_mut(&mut observer))
    }

    /// Runs every sweep size through a [`NetPlan`], streaming all trial
    /// records into `observers` (each observer's `finish` fires once per
    /// size, exactly like the analytic `SweepPlan`).
    ///
    /// # Errors
    ///
    /// Family construction errors, transport failures, or observer
    /// rejections.
    pub fn run_observed(
        &self,
        observers: &mut [&mut dyn TrialObserver],
    ) -> Result<NetSweepReport, NetError> {
        let spec = self.spec;
        let mut rows = Vec::with_capacity(spec.sweep.sizes.len());
        let mut events = 0u64;
        let mut messages = 0u64;
        let mut dropped = 0u64;
        let mut blocked = 0u64;
        let mut duplicated = 0u64;
        let mut stalled = 0u64;
        let mut node_trials = 0u64;
        let mut elapsed = Duration::ZERO;
        let mut groups = self.config.groups;
        for &n in &spec.sweep.sizes {
            let (topo, suggested) = build_live_topology(&spec.family, n)?;
            let start = spec.sweep.start.unwrap_or(suggested);
            let plan = NetPlan::new(self.trials, self.seed)
                .config(self.config.clone())
                .delivery(self.delivery);
            let report = plan.execute_observed(&topo, self.proto, start, observers)?;
            events += report.events();
            messages += report.messages();
            dropped += report.dropped();
            blocked += report.blocked();
            duplicated += report.duplicated();
            stalled += report.stalled().len() as u64;
            node_trials += (topo.n() as u64) * (self.trials as u64);
            elapsed += report.elapsed();
            groups = report.groups();
            rows.push(row(n, &report));
        }
        Ok(NetSweepReport {
            report: ScenarioReport {
                scenario: spec.name.clone(),
                family: spec.family.kind.clone(),
                protocol: self.proto.display_name().to_string(),
                engine: format!("net/{}", self.delivery.name()),
                rows,
            },
            groups,
            delivery: self.delivery,
            events,
            messages,
            dropped,
            blocked,
            duplicated,
            stalled,
            elapsed,
            node_trials,
        })
    }
}

fn row(n: usize, report: &NetReport) -> ScenarioRow {
    ScenarioRow {
        n,
        trials: report.trials(),
        completed: report.completed(),
        mean: report.mean(),
        std_dev: report.std_dev(),
        median: report.try_median(),
        q95: report.try_whp_spread_time(),
        max: report.try_max(),
    }
}

/// The result of a live sweep: a standard [`ScenarioReport`] plus the
/// runtime's traffic counters, aggregated over every size.
#[derive(Debug, Clone)]
pub struct NetSweepReport {
    /// Per-size rows in the analytic report shape; `engine` reads
    /// `net/local` or `net/udp`.
    pub report: ScenarioReport,
    /// Node groups (threads) each trial ran on.
    pub groups: usize,
    /// Transport the sweep used.
    pub delivery: DeliveryKind,
    /// Events processed across the sweep (activations + arrivals).
    pub events: u64,
    /// Envelopes sent across the sweep (dropped ones included).
    pub messages: u64,
    /// Envelopes swallowed by the drop gate.
    pub dropped: u64,
    /// Envelopes voided at a partition cut.
    pub blocked: u64,
    /// Extra envelope copies injected by the duplication fault.
    pub duplicated: u64,
    /// Trials skipped after stalling twice on the UDP transport.
    pub stalled: u64,
    /// Wall-clock time spent in trials.
    pub elapsed: Duration,
    /// `Σ (n × trials)` over the sweep — the denominator of
    /// [`NetSweepReport::messages_per_node`].
    pub node_trials: u64,
}

impl NetSweepReport {
    /// Events per wall-clock second over the sweep.
    pub fn events_per_sec(&self) -> f64 {
        rate(self.events, self.elapsed)
    }

    /// Envelopes per wall-clock second over the sweep.
    pub fn messages_per_sec(&self) -> f64 {
        rate(self.messages, self.elapsed)
    }

    /// Mean envelopes per node per trial over the sweep.
    pub fn messages_per_node(&self) -> f64 {
        if self.node_trials > 0 {
            self.messages as f64 / self.node_trials as f64
        } else {
            0.0
        }
    }
}

fn rate(count: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_core::scenario::{NetSpec, ProtocolSpec, SweepSpec};

    fn live_spec() -> ScenarioSpec {
        let mut sweep = SweepSpec::over(vec![16, 24]);
        sweep.trials = Some(4);
        sweep.seed = Some(3);
        ScenarioSpec {
            name: "net-sweep-test".into(),
            description: None,
            family: FamilySpec::new("complete"),
            protocol: ProtocolSpec::new("async"),
            sweep,
            faults: None,
            net: Some(NetSpec {
                groups: Some(2),
                ..NetSpec::new()
            }),
        }
    }

    #[test]
    fn sweep_produces_report_rows() {
        let spec = live_spec();
        let mut sink = gossip_sim::JsonlSink::new(Vec::new());
        let out = NetSweep::new(&spec).unwrap().run_with(&mut sink).unwrap();
        assert_eq!(out.report.engine, "net/local");
        assert_eq!(out.report.rows.len(), 2);
        assert!(out.report.rows.iter().all(|r| r.completed == 4));
        assert_eq!(sink.records(), 8);
        assert!(out.messages > 0 && out.events > 0);
        assert!(out.messages_per_node() > 0.0);
        assert_eq!(out.groups, 2);
    }

    #[test]
    fn dynamic_families_are_rejected() {
        let mut spec = live_spec();
        spec.family = FamilySpec::new("dynamic-star");
        let err = NetSweep::new(&spec).unwrap_err();
        assert!(err.to_string().contains("dynamic"), "{err}");
    }

    #[test]
    fn live_topology_matches_family_snapshot() {
        let (topo, start) = build_live_topology(&FamilySpec::new("star"), 10).unwrap();
        assert_eq!(topo.n(), 10);
        // Star center (node 0) sees everyone; leaves see the center.
        assert_eq!(topo.degree(0), 9);
        assert_eq!(topo.degree(3), 1);
        assert!((start as usize) < 10);
    }
}
