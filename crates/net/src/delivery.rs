//! The pluggable transport between node groups.
//!
//! The runtime advances in synchronized epochs of one tick each (see
//! [`crate::runtime`]); at every epoch boundary each group hands its
//! outbound [`Envelope`]s plus a handful of scalars — its earliest
//! future event, its informed-node count, and the liveness reductions
//! behind `Died` detection — to its [`Delivery`] endpoint and gets
//! back everything addressed to it along with the global reductions. How
//! the envelopes and scalars move is the only thing that differs between
//! transports:
//!
//! * [`LocalDelivery`] — in-process [`std::sync::mpsc`] channels between
//!   groups plus a pair of atomics for the reductions; the path the
//!   million-node single-machine runs use.
//! * [`crate::UdpDelivery`] — length-prefixed datagrams, one socket per
//!   group, reductions piggybacked on the datagram headers.
//!
//! Fault injection reuses the scenario stack's `FaultModel::drop`
//! semantics at this layer: every envelope flips one deterministic,
//! group-count-invariant coin ([`DropGate`]) before it is handed to the
//! transport.

use crate::envelope::Envelope;
use crate::error::NetError;
use gossip_graph::NodeId;
use gossip_stats::SimRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// Which [`Delivery`] transport a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryKind {
    /// In-process channels between node groups ([`LocalDelivery`]).
    Local,
    /// Loopback/LAN datagrams between per-group sockets
    /// ([`crate::UdpDelivery`]).
    Udp,
}

impl DeliveryKind {
    /// The spec string of the transport (`"local"` / `"udp"`).
    pub fn name(self) -> &'static str {
        match self {
            DeliveryKind::Local => "local",
            DeliveryKind::Udp => "udp",
        }
    }

    /// Parses a spec string (`"local"` / `"udp"`).
    pub fn parse(s: &str) -> Option<DeliveryKind> {
        match s {
            "local" => Some(DeliveryKind::Local),
            "udp" => Some(DeliveryKind::Udp),
            _ => None,
        }
    }
}

/// Static node → group assignment: `groups` contiguous blocks of
/// `ceil(n / groups)` nodes. Trailing groups may own an empty range when
/// `n` is small; they still participate in every epoch exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Router {
    n: u32,
    groups: u32,
    block: u32,
}

impl Router {
    /// A router over `n` nodes in `groups` blocks; `groups` is clamped
    /// to `[1, n]`.
    pub fn new(n: usize, groups: usize) -> Router {
        let n = u32::try_from(n).expect("live runtime supports up to u32::MAX nodes");
        let groups = (groups.max(1) as u32).min(n.max(1));
        Router {
            n,
            groups,
            block: n.div_ceil(groups).max(1),
        }
    }

    /// Number of node groups.
    pub fn groups(&self) -> usize {
        self.groups as usize
    }

    /// Total node count.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// The group owning node `v`.
    pub fn group_of(&self, v: NodeId) -> usize {
        ((v / self.block) as usize).min(self.groups as usize - 1)
    }

    /// The node range owned by group `g`.
    pub fn range(&self, g: usize) -> std::ops::Range<NodeId> {
        let lo = (g as u32).saturating_mul(self.block).min(self.n);
        let hi = lo.saturating_add(self.block).min(self.n);
        lo..hi
    }
}

/// What one group posts at an epoch boundary.
#[derive(Debug)]
pub struct EpochFlush {
    /// Envelopes sent during the finished epoch (any destination; the
    /// endpoint routes them).
    pub outbound: Vec<Envelope>,
    /// The earliest virtual time at which this group has a future event:
    /// its next clock activation, its earliest buffered arrival, or the
    /// arrival time of anything in `outbound`. The global minimum drives
    /// epoch skipping.
    pub next_candidate: f64,
    /// Cumulative count of this group's own informed nodes.
    pub informed: u64,
    /// Count of this group's informed nodes that are also up at their
    /// last observed liveness state (equals `informed` when crash faults
    /// are off). Drives the global `Died` detection.
    pub live_informed: u64,
    /// Count of rumor-carrying envelopes (push contacts and pull
    /// replies) this group has in flight — in `outbound` or buffered for
    /// a future epoch. Only maintained when a trial can die; otherwise 0.
    pub rumor_in_flight: u64,
}

/// What the exchange returns to the group for the next epoch.
#[derive(Debug)]
pub struct EpochUpdate {
    /// Envelopes addressed to this group's nodes, in transport order
    /// (the runtime re-sorts by [`Envelope::order_key`]).
    pub inbound: Vec<Envelope>,
    /// Global minimum of every group's `next_candidate`.
    pub next_time: f64,
    /// Global informed-node count.
    pub informed_total: u64,
    /// Global sum of every group's `live_informed`.
    pub live_informed_total: u64,
    /// Global sum of every group's `rumor_in_flight`.
    pub rumor_in_flight_total: u64,
}

/// One group's endpoint of the inter-group transport.
///
/// `exchange` is a collective: every group calls it exactly once per
/// epoch, and no call returns until every group's envelopes and scalars
/// for that epoch are in. The runtime's loop decisions depend only on
/// the returned reductions, so all groups always agree on the number of
/// exchanges.
pub trait Delivery: Send {
    /// Posts this group's epoch output and blocks until every group's
    /// epoch data is in.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the transport dies (peer gone, socket
    /// failure, exchange timeout).
    fn exchange(&mut self, flush: EpochFlush) -> Result<EpochUpdate, NetError>;
}

// ---------------------------------------------------------------------------
// Local (in-process) delivery
// ---------------------------------------------------------------------------

struct LocalShared {
    barrier: Barrier,
    /// Global next-event reduction, double-buffered by exchange-round
    /// parity: while round `r` min-reduces into slot `r % 2`, everyone
    /// resets slot `(r + 1) % 2` to `+inf` for the next round.
    next_bits: [AtomicU64; 2],
    /// Per-group cumulative informed counts (each slot written by one
    /// group, read by all).
    informed: Vec<AtomicU64>,
    /// Per-group informed-and-up counts (same ownership discipline).
    live_informed: Vec<AtomicU64>,
    /// Per-group rumor-carrying in-flight envelope counts.
    in_flight: Vec<AtomicU64>,
}

/// In-process transport: one mpsc channel per ordered group pair plus a
/// shared barrier/atomics block for the epoch reductions.
pub struct LocalDelivery {
    shared: Arc<LocalShared>,
    router: Router,
    me: usize,
    round: u64,
    /// Senders to every group (`to[d]` feeds group `d`), including self.
    to: Vec<Sender<Vec<Envelope>>>,
    /// Receivers from every group (`from[s]` drains group `s`).
    from: Vec<Receiver<Vec<Envelope>>>,
    /// Per-destination routing buffers, reused across epochs.
    scratch: Vec<Vec<Envelope>>,
}

impl LocalDelivery {
    /// Builds the connected endpoint set for every group of `router`.
    pub fn fabric(router: Router) -> Vec<LocalDelivery> {
        let g = router.groups();
        let shared = Arc::new(LocalShared {
            barrier: Barrier::new(g),
            next_bits: [
                AtomicU64::new(f64::INFINITY.to_bits()),
                AtomicU64::new(f64::INFINITY.to_bits()),
            ],
            informed: (0..g).map(|_| AtomicU64::new(0)).collect(),
            live_informed: (0..g).map(|_| AtomicU64::new(0)).collect(),
            in_flight: (0..g).map(|_| AtomicU64::new(0)).collect(),
        });
        // channels[s][d] carries batches from group s to group d.
        let mut senders: Vec<Vec<Sender<Vec<Envelope>>>> = Vec::with_capacity(g);
        let mut receivers: Vec<Vec<Option<Receiver<Vec<Envelope>>>>> =
            (0..g).map(|_| (0..g).map(|_| None).collect()).collect();
        for s in 0..g {
            let mut row = Vec::with_capacity(g);
            for slot in receivers.iter_mut().take(g) {
                let (tx, rx) = channel();
                row.push(tx);
                slot[s] = Some(rx);
            }
            senders.push(row);
        }
        senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(me, (to, from))| LocalDelivery {
                shared: Arc::clone(&shared),
                router,
                me,
                round: 0,
                to,
                from: from.into_iter().map(|r| r.expect("wired above")).collect(),
                scratch: (0..g).map(|_| Vec::new()).collect(),
            })
            .collect()
    }
}

impl Delivery for LocalDelivery {
    fn exchange(&mut self, flush: EpochFlush) -> Result<EpochUpdate, NetError> {
        let g = self.router.groups();
        let par = (self.round % 2) as usize;
        for env in flush.outbound {
            self.scratch[self.router.group_of(env.dst)].push(env);
        }
        for d in 0..g {
            if !self.scratch[d].is_empty() {
                let batch = std::mem::take(&mut self.scratch[d]);
                self.to[d].send(batch).map_err(|_| {
                    NetError::Io(format!(
                        "group {d} hung up mid-trial (local channel closed)"
                    ))
                })?;
            }
        }
        self.shared.next_bits[par].fetch_min(flush.next_candidate.to_bits(), Ordering::SeqCst);
        self.shared.informed[self.me].store(flush.informed, Ordering::SeqCst);
        self.shared.live_informed[self.me].store(flush.live_informed, Ordering::SeqCst);
        self.shared.in_flight[self.me].store(flush.rumor_in_flight, Ordering::SeqCst);
        self.shared.barrier.wait();
        let mut inbound = Vec::new();
        for rx in &self.from {
            while let Ok(mut batch) = rx.try_recv() {
                inbound.append(&mut batch);
            }
        }
        let next_time = f64::from_bits(self.shared.next_bits[par].load(Ordering::SeqCst));
        self.shared.next_bits[1 - par].store(f64::INFINITY.to_bits(), Ordering::SeqCst);
        let sum = |slots: &[AtomicU64]| slots.iter().map(|a| a.load(Ordering::SeqCst)).sum();
        let informed_total = sum(&self.shared.informed);
        let live_informed_total = sum(&self.shared.live_informed);
        let rumor_in_flight_total = sum(&self.shared.in_flight);
        self.shared.barrier.wait();
        self.round += 1;
        Ok(EpochUpdate {
            inbound,
            next_time,
            informed_total,
            live_informed_total,
            rumor_in_flight_total,
        })
    }
}

// ---------------------------------------------------------------------------
// Deterministic per-envelope drop faults
// ---------------------------------------------------------------------------

/// `FaultModel::drop` at the Delivery layer: every envelope flips one
/// coin keyed on `(fault seed, trial seed, src, seq)` — never on the
/// trial RNG and never on which group or transport carried the message —
/// so faulty runs stay bit-deterministic and group-count-invariant.
#[derive(Debug, Clone, Copy)]
pub struct DropGate {
    drop: f64,
    key: u64,
}

/// The 64-bit SplitMix finalizer: the hash behind every delivery-layer
/// fault coin ([`DropGate`], [`crate::fault::ChaosGate`],
/// [`crate::fault::Liveness`]). Statistically independent outputs for
/// distinct inputs, and a pure function — the property that keeps fault
/// verdicts group-count- and transport-invariant.
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DropGate {
    /// A gate dropping each envelope independently with probability
    /// `drop`, keyed on the dedicated fault seed and the trial seed.
    pub fn new(drop: f64, fault_seed: u64, trial_seed: u64) -> DropGate {
        DropGate {
            drop: drop.clamp(0.0, 1.0),
            key: splitmix(splitmix(fault_seed) ^ trial_seed),
        }
    }

    /// Whether any envelope can ever be dropped.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0
    }

    /// The deterministic drop verdict for `env`.
    pub fn drops(&self, env: &Envelope) -> bool {
        if self.drop <= 0.0 {
            return false;
        }
        if self.drop >= 1.0 {
            return true;
        }
        let h = splitmix(self.key ^ ((u64::from(env.src) << 32) | u64::from(env.seq)));
        SimRng::seed_from_u64(h).chance(self.drop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Payload;

    #[test]
    fn router_blocks_cover_all_nodes() {
        for (n, groups) in [(10, 3), (10, 4), (5, 8), (1, 1), (1_000, 7)] {
            let r = Router::new(n, groups);
            let mut covered = 0usize;
            for g in 0..r.groups() {
                let range = r.range(g);
                for v in range.clone() {
                    assert_eq!(r.group_of(v), g, "n={n} groups={groups} v={v}");
                }
                covered += range.len();
            }
            assert_eq!(covered, n);
            assert!(r.groups() <= n.max(1));
        }
    }

    #[test]
    fn drop_gate_is_deterministic_and_respects_extremes() {
        let env = |src, seq| Envelope {
            src,
            dst: 0,
            seq,
            time: 1.0,
            payload: Payload::Rumor,
        };
        let g = DropGate::new(0.5, 3, 11);
        let h = DropGate::new(0.5, 3, 11);
        let mut dropped = 0;
        for i in 0..2_000 {
            let e = env(i % 64, i);
            assert_eq!(g.drops(&e), h.drops(&e));
            dropped += u32::from(g.drops(&e));
        }
        // A fair-ish half: the verdicts are i.i.d. coins across (src, seq).
        assert!((600..1_400).contains(&dropped), "{dropped}");
        assert!(!DropGate::new(0.0, 3, 11).is_active());
        assert!(!DropGate::new(0.0, 3, 11).drops(&env(1, 1)));
        assert!(DropGate::new(1.0, 3, 11).drops(&env(1, 1)));
    }

    #[test]
    fn local_exchange_routes_and_reduces() {
        let router = Router::new(8, 2);
        let mut eps = LocalDelivery::fabric(router);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let mk = |src, dst| Envelope {
            src,
            dst,
            seq: 0,
            time: 0.5,
            payload: Payload::Rumor,
        };
        let ha = std::thread::spawn(move || {
            let mut a = a;
            a.exchange(EpochFlush {
                outbound: vec![mk(0, 5), mk(1, 2)],
                next_candidate: 0.7,
                informed: 3,
                live_informed: 2,
                rumor_in_flight: 2,
            })
            .unwrap()
        });
        let hb = std::thread::spawn(move || {
            let mut b = b;
            b.exchange(EpochFlush {
                outbound: vec![mk(6, 1)],
                next_candidate: 0.9,
                informed: 1,
                live_informed: 1,
                rumor_in_flight: 1,
            })
            .unwrap()
        });
        let ua = ha.join().unwrap();
        let ub = hb.join().unwrap();
        // Group 0 owns nodes 0..4, group 1 owns 4..8.
        assert_eq!(ua.inbound.len(), 2); // its own 1→2 plus b's 6→1
        assert_eq!(ub.inbound.len(), 1); // a's 0→5
        for u in [&ua, &ub] {
            assert!((u.next_time - 0.7).abs() < 1e-12);
            assert_eq!(u.informed_total, 4);
            assert_eq!(u.live_informed_total, 3);
            assert_eq!(u.rumor_in_flight_total, 3);
        }
    }
}
